"""Specification of the 4-tier integrated network architecture.

Paper Section 3 describes four tiers:

* **Mobile Host Tier** — laptops, PDAs, mobile phones, mobile video phones.
* **Wireless Access Network Tier** — wireless LANs, cellular networks and
  satellite networks; their access points / base stations / satellites are
  abstracted as *Access Proxies* (APs).
* **Intra-AS Network Tier** — individual autonomous systems; wireless access
  networks attach to ASes through *Access Gateways* (AGs).
* **Inter-AS Network Tier** — border routers (BRs) interconnecting ASes via
  BGP.

The classes in this module describe *what to generate*; the actual node/link
graph is produced by :class:`repro.topology.generator.TopologyGenerator`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class AccessNetworkKind(enum.Enum):
    """Kinds of wireless access networks named in the paper."""

    WIRELESS_LAN = "wireless-lan"
    CELLULAR = "cellular"
    SATELLITE = "satellite"


#: Mobile host device classes named in Figure 1.
MOBILE_HOST_CLASSES: Tuple[str, ...] = (
    "laptop",
    "pda",
    "mobile-phone",
    "mobile-video-phone",
)


@dataclass(frozen=True)
class TierSpec:
    """How many entities of one tier to generate and how they are grouped.

    ``fanout`` is the number of children each entity of this tier has in the
    tier below (e.g. APs per AG).  The topmost tier has no parent so its
    ``count`` is explicit; lower tiers are sized by the fanout chain.
    """

    name: str
    fanout: int

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError(f"tier {self.name!r} fanout must be >= 1, got {self.fanout}")


@dataclass(frozen=True)
class TopologySpec:
    """Full specification of a generated 4-tier topology.

    Parameters
    ----------
    num_border_routers:
        Entities in the Inter-AS tier.  The paper's Figure 2 shows a single
        topmost ring of BRs.
    ags_per_br:
        Access gateways attached to each border router (one AS per BR in the
        generated topology — a simplification that keeps the hierarchy regular,
        matching the full/worst-case hierarchy the analysis assumes).
    aps_per_ag:
        Access proxies attached to each access gateway.
    hosts_per_ap:
        Mobile hosts initially attached per access proxy (hosts may later move
        or join/leave through the mobility model).
    access_network_mix:
        Fraction of APs drawn from each access-network kind; must sum to 1.
    """

    num_border_routers: int = 3
    ags_per_br: int = 3
    aps_per_ag: int = 5
    hosts_per_ap: int = 4
    access_network_mix: Dict[AccessNetworkKind, float] = field(
        default_factory=lambda: {
            AccessNetworkKind.WIRELESS_LAN: 0.6,
            AccessNetworkKind.CELLULAR: 0.3,
            AccessNetworkKind.SATELLITE: 0.1,
        }
    )

    def __post_init__(self) -> None:
        for name, value in (
            ("num_border_routers", self.num_border_routers),
            ("ags_per_br", self.ags_per_br),
            ("aps_per_ag", self.aps_per_ag),
        ):
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if self.hosts_per_ap < 0:
            raise ValueError(f"hosts_per_ap must be >= 0, got {self.hosts_per_ap}")
        total = sum(self.access_network_mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"access_network_mix must sum to 1, got {total}")

    # -- derived sizes ------------------------------------------------------

    @property
    def num_access_gateways(self) -> int:
        return self.num_border_routers * self.ags_per_br

    @property
    def num_access_proxies(self) -> int:
        return self.num_access_gateways * self.aps_per_ag

    @property
    def num_mobile_hosts(self) -> int:
        return self.num_access_proxies * self.hosts_per_ap

    @staticmethod
    def regular(ring_size: int, height: int, hosts_per_ap: int = 0) -> "TopologySpec":
        """The regular (full) topology used by the paper's analysis.

        The analysis assumes a ring-based hierarchy of height ``h`` where every
        ring contains exactly ``r`` nodes, giving ``n = r**h`` access proxies.
        Height 2 means BR ring over AP rings; height 3 adds the AG tier.  For
        ``height > 3`` the extra levels are modelled as sub-tiers of AGs by the
        hierarchy builder; the physical topology generated here always has the
        three network-entity tiers of Figure 1.
        """
        if ring_size < 2:
            raise ValueError(f"ring_size must be >= 2, got {ring_size}")
        if height < 2:
            raise ValueError(f"height must be >= 2, got {height}")
        if height == 2:
            return TopologySpec(
                num_border_routers=ring_size,
                ags_per_br=1,
                aps_per_ag=ring_size,
                hosts_per_ap=hosts_per_ap,
            )
        # height >= 3: r BRs, r AGs per BR, r**(h-2) APs per AG.
        aps_per_ag = ring_size ** (height - 2)
        return TopologySpec(
            num_border_routers=ring_size,
            ags_per_br=ring_size,
            aps_per_ag=aps_per_ag,
            hosts_per_ap=hosts_per_ap,
        )


@dataclass
class FourTierArchitecture:
    """Structural description of one generated architecture instance.

    Holds the identifiers of every entity per tier and the attachment maps
    (AP → AG, AG → BR, MH → AP).  The generator fills this in alongside the
    simulated :class:`repro.sim.network.Network`.

    The parent/attachment maps are treated as **frozen after generation**:
    the children lookups (:meth:`aps_of_ag` and friends) serve from a lazily
    built reverse index, so anything that mutates ``ap_parent`` /
    ``ag_parent`` / ``host_attachment`` directly afterwards must call
    :meth:`invalidate_indexes` or the lookups serve stale children.
    (Dynamic attachment during simulations lives in the protocol state, not
    here — no shipped code mutates these maps post-generate.)
    """

    spec: TopologySpec
    border_routers: List[str] = field(default_factory=list)
    access_gateways: List[str] = field(default_factory=list)
    access_proxies: List[str] = field(default_factory=list)
    mobile_hosts: List[str] = field(default_factory=list)
    ap_parent: Dict[str, str] = field(default_factory=dict)
    ag_parent: Dict[str, str] = field(default_factory=dict)
    host_attachment: Dict[str, str] = field(default_factory=dict)
    ap_access_network: Dict[str, AccessNetworkKind] = field(default_factory=dict)
    host_device_class: Dict[str, str] = field(default_factory=dict)
    #: Version counter for the parent/attachment maps above; bump (or call
    #: :meth:`invalidate_indexes`) after mutating them so the lazily built
    #: children indexes below stay correct.
    _index_version: int = field(default=0, repr=False, compare=False)
    _children_cache: Optional[Tuple[int, Dict[str, Dict[str, List[str]]]]] = field(
        default=None, repr=False, compare=False
    )

    def invalidate_indexes(self) -> None:
        """Drop the cached children indexes after mutating the parent maps."""
        self._index_version += 1
        self._children_cache = None

    def _children(self, relation: str) -> Dict[str, List[str]]:
        """Lazily built parent → children index for one of the parent maps.

        The per-call scans this replaces (``[ap for ap, ag in ... if ...]``)
        made ``HierarchyBuilder.from_topology`` quadratic in the proxy count;
        one pass over each map amortises every subsequent lookup to O(1).
        """
        cached = self._children_cache
        if cached is None or cached[0] != self._index_version:
            indexes: Dict[str, Dict[str, List[str]]] = {"ag": {}, "br": {}, "ap": {}}
            for ap, ag in self.ap_parent.items():
                indexes["ag"].setdefault(ag, []).append(ap)
            for ag, br in self.ag_parent.items():
                indexes["br"].setdefault(br, []).append(ag)
            for mh, ap in self.host_attachment.items():
                indexes["ap"].setdefault(ap, []).append(mh)
            cached = (self._index_version, indexes)
            self._children_cache = cached
        return cached[1][relation]

    def aps_of_ag(self, ag_id: str) -> List[str]:
        """Access proxies whose parent gateway is ``ag_id``."""
        return list(self._children("ag").get(ag_id, ()))

    def ags_of_br(self, br_id: str) -> List[str]:
        """Access gateways whose parent border router is ``br_id``."""
        return list(self._children("br").get(br_id, ()))

    def hosts_of_ap(self, ap_id: str) -> List[str]:
        """Mobile hosts currently attached to ``ap_id``."""
        return list(self._children("ap").get(ap_id, ()))

    def ap_neighbors(self) -> Dict[str, List[str]]:
        """Neighbourhood map for the mobility model: APs under the same AG."""
        by_ag = self._children("ag")
        neighbors: Dict[str, List[str]] = {}
        for ap in self.access_proxies:
            siblings = by_ag.get(self.ap_parent[ap], ())
            neighbors[ap] = [other for other in siblings if other != ap]
        return neighbors

    def tier_counts(self) -> Dict[str, int]:
        return {
            "border_routers": len(self.border_routers),
            "access_gateways": len(self.access_gateways),
            "access_proxies": len(self.access_proxies),
            "mobile_hosts": len(self.mobile_hosts),
        }

    def validate(self) -> None:
        """Internal consistency checks used by property tests."""
        for ap, ag in self.ap_parent.items():
            if ag not in self.access_gateways:
                raise ValueError(f"AP {ap!r} attached to unknown AG {ag!r}")
        for ag, br in self.ag_parent.items():
            if br not in self.border_routers:
                raise ValueError(f"AG {ag!r} attached to unknown BR {br!r}")
        for mh, ap in self.host_attachment.items():
            if ap not in self.access_proxies:
                raise ValueError(f"MH {mh!r} attached to unknown AP {ap!r}")
        if set(self.ap_parent) != set(self.access_proxies):
            raise ValueError("every access proxy must have exactly one parent gateway")
        if set(self.ag_parent) != set(self.access_gateways):
            raise ValueError("every access gateway must have exactly one parent border router")
