"""Topology generation: build a simulated network from a :class:`TopologySpec`.

The generated graph mirrors Figure 1 of the paper:

* border routers form a full mesh (the Inter-AS tier — BGP peers);
* each access gateway links to its border router (Intra-AS tier);
* access gateways under the same border router also link to each other
  directly (they sit in the same or peered ASes), which gives the ring layer
  usable physical paths;
* each access proxy links to its access gateway and to the other APs of the
  same gateway (they share the wired side of the access network);
* each mobile host links to its current access proxy over a wireless edge
  whose latency model depends on the access-network kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sim.network import INTER_AS, INTRA_AS, LatencyModel, Network, NetworkNode
from repro.sim.rng import RandomStreams
from repro.topology.architecture import (
    MOBILE_HOST_CLASSES,
    AccessNetworkKind,
    FourTierArchitecture,
    TopologySpec,
)
from repro.topology.wireless import access_network_profile


@dataclass
class GeneratedTopology:
    """Result of :meth:`TopologyGenerator.generate`."""

    network: Network
    architecture: FourTierArchitecture

    @property
    def access_proxies(self) -> List[str]:
        return list(self.architecture.access_proxies)

    @property
    def access_gateways(self) -> List[str]:
        return list(self.architecture.access_gateways)

    @property
    def border_routers(self) -> List[str]:
        return list(self.architecture.border_routers)

    @property
    def mobile_hosts(self) -> List[str]:
        return list(self.architecture.mobile_hosts)


class TopologyGenerator:
    """Builds :class:`GeneratedTopology` instances from a spec.

    The generator is deterministic given ``streams``: access-network kinds and
    device classes are sampled from the ``"topology"`` stream.
    """

    def __init__(self, spec: TopologySpec, streams: Optional[RandomStreams] = None) -> None:
        self.spec = spec
        self.streams = streams if streams is not None else RandomStreams(0)
        self._rng = self.streams.stream("topology")

    # -- naming helpers ------------------------------------------------------

    @staticmethod
    def br_id(index: int) -> str:
        return f"br-{index:03d}"

    @staticmethod
    def ag_id(br_index: int, index: int) -> str:
        return f"ag-{br_index:03d}-{index:03d}"

    @staticmethod
    def ap_id(br_index: int, ag_index: int, index: int) -> str:
        return f"ap-{br_index:03d}-{ag_index:03d}-{index:03d}"

    @staticmethod
    def mh_id(index: int) -> str:
        return f"mh-{index:05d}"

    # -- generation -----------------------------------------------------------

    def generate(self) -> GeneratedTopology:
        """Build the network and architecture metadata.

        Whole tiers are assembled as lists and installed through the
        network's batch endpoints (:meth:`repro.sim.network.Network.add_nodes`
        / ``add_links``) with the stochastic attributes drawn as one vector
        per tier — per-node ``add_node``/``choice`` calls made generation the
        dominant cost of large generated topologies.
        """
        spec = self.spec
        network = Network()
        arch = FourTierArchitecture(spec=spec)

        kinds = list(spec.access_network_mix.keys())
        kind_weights = np.array([spec.access_network_mix[k] for k in kinds], dtype=float)
        kind_weights = kind_weights / kind_weights.sum()

        # Inter-AS tier: border routers, full mesh.
        arch.border_routers.extend(self.br_id(b) for b in range(spec.num_border_routers))
        brs = arch.border_routers
        network.add_nodes(NetworkNode(node_id=br, kind="BR", tier=3) for br in brs)
        network.add_links(
            (a, b, INTER_AS) for i, a in enumerate(brs) for b in brs[i + 1 :]
        )

        # Intra-AS tier: access gateways.
        ag_nodes: List[NetworkNode] = []
        ag_links: List[tuple] = []
        for b in range(spec.num_border_routers):
            br = self.br_id(b)
            ags_here = [self.ag_id(b, g) for g in range(spec.ags_per_br)]
            for ag in ags_here:
                ag_nodes.append(NetworkNode(node_id=ag, kind="AG", tier=2))
                arch.ag_parent[ag] = br
                ag_links.append((ag, br, INTRA_AS))
            arch.access_gateways.extend(ags_here)
            # Gateways of the same AS can reach each other directly.
            ag_links.extend(
                (a, other, INTRA_AS)
                for i, a in enumerate(ags_here)
                for other in ags_here[i + 1 :]
            )
        network.add_nodes(ag_nodes)
        network.add_links(ag_links)

        # Wireless access network tier: access proxies.  One vectorised draw
        # decides every AP's access-network kind.
        num_aps = spec.num_border_routers * spec.ags_per_br * spec.aps_per_ag
        kind_draws = self._rng.choice(len(kinds), size=num_aps, p=kind_weights)
        ap_nodes: List[NetworkNode] = []
        ap_links: List[tuple] = []
        draw_index = 0
        for b in range(spec.num_border_routers):
            for g in range(spec.ags_per_br):
                ag = self.ag_id(b, g)
                aps_here = [self.ap_id(b, g, p) for p in range(spec.aps_per_ag)]
                for ap in aps_here:
                    kind = kinds[int(kind_draws[draw_index])]
                    draw_index += 1
                    ap_nodes.append(
                        NetworkNode(
                            node_id=ap,
                            kind="AP",
                            tier=1,
                            metadata={"access_network": kind.value},
                        )
                    )
                    arch.ap_parent[ap] = ag
                    arch.ap_access_network[ap] = kind
                    ap_links.append((ap, ag, INTRA_AS))
                arch.access_proxies.extend(aps_here)
                # APs under one gateway share the access network's wired side.
                ap_links.extend(
                    (a, other, INTRA_AS)
                    for i, a in enumerate(aps_here)
                    for other in aps_here[i + 1 :]
                )
        network.add_nodes(ap_nodes)
        network.add_links(ap_links)

        # Mobile host tier: one vectorised draw for every host's device class.
        num_hosts = len(arch.access_proxies) * spec.hosts_per_ap
        device_draws = (
            self._rng.integers(len(MOBILE_HOST_CLASSES), size=num_hosts)
            if num_hosts
            else ()
        )
        mh_nodes: List[NetworkNode] = []
        mh_links: List[tuple] = []
        host_index = 0
        for ap in arch.access_proxies:
            profile = access_network_profile(arch.ap_access_network[ap])
            for _ in range(spec.hosts_per_ap):
                mh = self.mh_id(host_index)
                device = MOBILE_HOST_CLASSES[int(device_draws[host_index])]
                host_index += 1
                mh_nodes.append(
                    NetworkNode(
                        node_id=mh,
                        kind="MH",
                        tier=0,
                        metadata={"device": device},
                    )
                )
                arch.mobile_hosts.append(mh)
                arch.host_attachment[mh] = ap
                arch.host_device_class[mh] = device
                mh_links.append((mh, ap, profile.edge_latency))
        network.add_nodes(mh_nodes)
        network.add_links(mh_links)

        arch.invalidate_indexes()
        arch.validate()
        return GeneratedTopology(network=network, architecture=arch)


def generate_regular_topology(
    ring_size: int,
    height: int,
    hosts_per_ap: int = 0,
    seed: int = 0,
) -> GeneratedTopology:
    """Convenience wrapper: the regular full hierarchy of the paper's analysis."""
    spec = TopologySpec.regular(ring_size=ring_size, height=height, hosts_per_ap=hosts_per_ap)
    return TopologyGenerator(spec, RandomStreams(seed)).generate()
