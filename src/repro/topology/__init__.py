"""The 4-tier integrated mobile Internet architecture (paper Section 3).

The topology package generates instances of the architecture in Figure 1 —
Mobile Host Tier, Wireless Access Network Tier (access proxies), Intra-AS
Tier (access gateways) and Inter-AS Tier (border routers) — as a
:class:`repro.sim.network.Network` plus structural metadata that the RGB
hierarchy builder and the baselines consume.
"""

from repro.topology.architecture import (
    AccessNetworkKind,
    FourTierArchitecture,
    TierSpec,
    TopologySpec,
)
from repro.topology.generator import TopologyGenerator, GeneratedTopology
from repro.topology.wireless import AccessNetwork, access_network_profile
from repro.topology.rendering import render_architecture, render_hierarchy, render_tier_counts

__all__ = [
    "AccessNetworkKind",
    "FourTierArchitecture",
    "TierSpec",
    "TopologySpec",
    "TopologyGenerator",
    "GeneratedTopology",
    "AccessNetwork",
    "access_network_profile",
    "render_architecture",
    "render_hierarchy",
    "render_tier_counts",
]
