"""Textual rendering of the architecture (Figure 1) and hierarchy (Figure 2).

The paper's Figures 1 and 2 are diagrams rather than measured results; the
reproduction regenerates them as structured text so the benchmark harness can
show that the generated topology and the constructed ring hierarchy have the
shape the figures describe (tier counts, rings per tier, one leader per ring,
logical links to parents).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.topology.architecture import FourTierArchitecture

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.hierarchy import RingHierarchy


def render_tier_counts(architecture: FourTierArchitecture) -> str:
    """One-line-per-tier summary of an architecture instance."""
    counts = architecture.tier_counts()
    lines = [
        "4-Tier Integrated Network Architecture",
        f"  Inter-AS Network Tier   : {counts['border_routers']:5d} border routers",
        f"  Intra-AS Network Tier   : {counts['access_gateways']:5d} access gateways",
        f"  Wireless Access Tier    : {counts['access_proxies']:5d} access proxies",
        f"  Mobile Host Tier        : {counts['mobile_hosts']:5d} mobile hosts",
    ]
    return "\n".join(lines)


def render_architecture(architecture: FourTierArchitecture, max_children: int = 4) -> str:
    """Indented tree rendering of BR → AG → AP → MH attachment (Figure 1)."""
    lines: List[str] = [render_tier_counts(architecture), ""]
    for br in architecture.border_routers:
        lines.append(f"{br}  [Inter-AS]")
        ags = architecture.ags_of_br(br)
        for ag in _truncate(ags, max_children, lines, indent="  "):
            lines.append(f"  {ag}  [Intra-AS]")
            aps = architecture.aps_of_ag(ag)
            for ap in _truncate(aps, max_children, lines, indent="    "):
                kind = architecture.ap_access_network.get(ap)
                kind_name = kind.value if kind is not None else "unknown"
                hosts = architecture.hosts_of_ap(ap)
                lines.append(f"    {ap}  [{kind_name}]  ({len(hosts)} mobile hosts)")
    return "\n".join(lines)


def _truncate(items: List[str], limit: int, lines: List[str], indent: str) -> List[str]:
    """Return the first ``limit`` items, appending an ellipsis line if cut."""
    if len(items) <= limit:
        return items
    shown = items[:limit]
    lines.append(f"{indent}... ({len(items) - limit} more)")
    return shown


def render_hierarchy(hierarchy: "RingHierarchy", max_rings_per_tier: int = 6) -> str:
    """Rendering of the ring-based hierarchy (Figure 2).

    Shows each tier from the Border Router Tier down, the rings in that tier,
    the ring members in ring order and the ring leader (marked with ``*``), and
    the logical link from each leader to its parent node.
    """
    lines: List[str] = ["Ring-based Hierarchy for Group Membership Management"]
    for tier_index in sorted(hierarchy.tiers(), reverse=True):
        rings = hierarchy.rings_in_tier(tier_index)
        tier_name = hierarchy.tier_name(tier_index)
        lines.append(f"  {tier_name} ({len(rings)} ring{'s' if len(rings) != 1 else ''})")
        shown = rings[:max_rings_per_tier]
        for ring in shown:
            member_bits = []
            for node_id in ring.members_in_order():
                marker = "*" if node_id == ring.leader else ""
                member_bits.append(f"{node_id}{marker}")
            parent = hierarchy.parent_of_ring(ring.ring_id)
            parent_note = f" -> parent {parent}" if parent else " (topmost)"
            lines.append(f"    ring {ring.ring_id}: {' -> '.join(member_bits)}{parent_note}")
        if len(rings) > max_rings_per_tier:
            lines.append(f"    ... ({len(rings) - max_rings_per_tier} more rings)")
    return "\n".join(lines)


def tier_count_dict(architecture: FourTierArchitecture) -> Dict[str, int]:
    """Dictionary form of the Figure 1 tier counts (used by benchmarks)."""
    return architecture.tier_counts()
