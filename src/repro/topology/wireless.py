"""Wireless access network profiles.

The Wireless Access Network Tier comprises wireless LANs, cellular networks
and satellite networks (paper Section 3).  Access proxies abstract the access
points / base stations / satellites of those networks; what differs between
the kinds, from the protocol's point of view, is the latency and loss of the
MH ⇄ AP edge and the expected cell residency time (satellite "cells" are huge,
WLAN cells are small — the paper's motivation for frequent handoff is the
trend towards smaller cells).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.network import LatencyModel
from repro.topology.architecture import AccessNetworkKind


@dataclass(frozen=True)
class AccessNetwork:
    """Edge characteristics of one access-network kind."""

    kind: AccessNetworkKind
    edge_latency: LatencyModel
    mean_cell_residency: float
    display_name: str

    def __post_init__(self) -> None:
        if self.mean_cell_residency <= 0:
            raise ValueError(
                f"mean cell residency must be positive, got {self.mean_cell_residency}"
            )


_PROFILES = {
    AccessNetworkKind.WIRELESS_LAN: AccessNetwork(
        kind=AccessNetworkKind.WIRELESS_LAN,
        edge_latency=LatencyModel(mean=5.0, std=2.0, loss=0.0),
        mean_cell_residency=120.0,
        display_name="Wireless LAN",
    ),
    AccessNetworkKind.CELLULAR: AccessNetwork(
        kind=AccessNetworkKind.CELLULAR,
        edge_latency=LatencyModel(mean=40.0, std=15.0, loss=0.0),
        mean_cell_residency=600.0,
        display_name="Cellular network",
    ),
    AccessNetworkKind.SATELLITE: AccessNetwork(
        kind=AccessNetworkKind.SATELLITE,
        edge_latency=LatencyModel(mean=270.0, std=30.0, loss=0.0),
        mean_cell_residency=3600.0,
        display_name="Satellite network",
    ),
}


def access_network_profile(kind: AccessNetworkKind) -> AccessNetwork:
    """Return the built-in profile for an access-network kind."""
    try:
        return _PROFILES[kind]
    except KeyError:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown access network kind {kind!r}") from None


def all_profiles() -> dict[AccessNetworkKind, AccessNetwork]:
    """All built-in profiles, keyed by kind."""
    return dict(_PROFILES)
