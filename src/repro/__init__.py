"""repro — reproduction of the RGB group membership protocol (ICPP 2004).

The package is organised as:

``repro.sim``
    Discrete-event simulation substrate: event engine, virtual clock,
    message transport with latency and loss, fault injection, mobility.
``repro.topology``
    The 4-tier integrated mobile Internet architecture of Section 3
    (Mobile Hosts, Access Proxies, Access Gateways, Border Routers) and
    generators / renderers for Figures 1 and 2.
``repro.core``
    The paper's primary contribution: the RGB ring-based hierarchy, the
    One-Round Token Passing Membership algorithm, the Membership-Query
    algorithm (TMS/BMS/IMS), handoff, failure detection and repair, and
    the partition/merge extension.
``repro.baselines``
    Comparators: CONGRESS-style tree hierarchy (with and without
    representatives), Moshe-style one-round tree membership, a flat
    Totem-style token ring, and a SWIM-style gossip protocol.
``repro.analysis``
    Closed-form scalability (Table I) and reliability (Table II) models,
    Monte-Carlo validation, and table regeneration.
``repro.workloads``
    Churn, handoff and query workload generators.

Quickstart::

    from repro import RGBSimulation, SimulationConfig

    sim = RGBSimulation(SimulationConfig(num_aps=25, ring_size=5, seed=7))
    sim.build()
    member = sim.join_member(ap_index=0)
    sim.run_until_quiescent()
    assert member.guid in sim.global_membership()
"""

from repro.core.config import ProtocolConfig, SimulationConfig
from repro.core.simulation import RGBSimulation
from repro.core.membership import MembershipEvent, MembershipEventType, MembershipView
from repro.analysis.scalability import hcn_ring, hcn_tree, table1_rows
from repro.analysis.reliability import (
    ring_function_well_probability,
    hierarchy_function_well_probability,
    table2_rows,
)

__version__ = "1.0.0"

__all__ = [
    "RGBSimulation",
    "SimulationConfig",
    "ProtocolConfig",
    "MembershipEvent",
    "MembershipEventType",
    "MembershipView",
    "hcn_ring",
    "hcn_tree",
    "table1_rows",
    "ring_function_well_probability",
    "hierarchy_function_well_probability",
    "table2_rows",
    "__version__",
]
