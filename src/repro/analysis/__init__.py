"""Analytical models and experiment regeneration for the paper's evaluation.

* :mod:`repro.analysis.scalability` — formulas (1)–(6): normalised hop counts
  of the tree-based and ring-based hierarchies, and the rows of **Table I**.
* :mod:`repro.analysis.reliability` — formulas (7)–(8): Function-Well
  probability of a logical ring and of the whole hierarchy, and the rows of
  **Table II**.
* :mod:`repro.analysis.hopcount_sim` — measured hop counts from the
  implemented protocol, validating that the closed forms describe the code.
* :mod:`repro.analysis.montecarlo` — Monte-Carlo fault trials validating the
  reliability model and comparing the ring hierarchy against the tree-based
  baseline.
* :mod:`repro.analysis.tables` — text renderings of Tables I and II plus the
  ``rgb-tables`` console entry point.
"""

from repro.analysis.scalability import (
    ScalabilityRow,
    hcn_ring,
    hcn_tree,
    hcn_tree_without_representatives,
    hopcount_ring,
    hopcount_tree,
    table1_rows,
)
from repro.analysis.reliability import (
    ReliabilityRow,
    hierarchy_function_well_probability,
    ring_function_well_probability,
    table2_rows,
    tree_function_well_probability,
)
from repro.analysis.hopcount_sim import measure_ring_hopcount, HopCountMeasurement
from repro.analysis.montecarlo import (
    MonteCarloResult,
    simulate_hierarchy_function_well,
    simulate_tree_function_well,
)

__all__ = [
    "ScalabilityRow",
    "hcn_ring",
    "hcn_tree",
    "hcn_tree_without_representatives",
    "hopcount_ring",
    "hopcount_tree",
    "table1_rows",
    "ReliabilityRow",
    "hierarchy_function_well_probability",
    "ring_function_well_probability",
    "tree_function_well_probability",
    "table2_rows",
    "measure_ring_hopcount",
    "HopCountMeasurement",
    "MonteCarloResult",
    "simulate_hierarchy_function_well",
    "simulate_tree_function_well",
]
