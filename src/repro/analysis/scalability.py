"""Scalability model — paper Section 5.1, formulas (1)–(6) and Table I.

The paper measures scalability as the total number of message hops
(*HopCount*) needed to propagate one membership change with the one-round
algorithm, in the fault-free case, and normalises by the number ``n`` of
LMSs/access proxies:

* Tree-based hierarchy (CONGRESS-style) *without* representatives, height
  ``h >= 3`` and branching ``r >= 2``: formula (1).
* Hops that disappear when representatives are used (the same physical server
  plays the parent roles up the tree): formula (2); the tree *with*
  representatives is formula (3) and its normalised form is formula (4),
  written ``HCN_Tree``.
* Ring-based hierarchy, height ``h >= 2`` with every ring exactly ``r``
  nodes: formulas (5) and (6), written ``HCN_Ring``.

Table I tabulates ``HCN_Tree`` and ``HCN_Ring`` for six configurations each;
:func:`table1_rows` regenerates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


def _validate_tree_params(height: int, branching: int) -> None:
    if height < 3:
        raise ValueError(f"tree-based hierarchy requires height >= 3, got {height}")
    if branching < 2:
        raise ValueError(f"tree-based hierarchy requires branching >= 2, got {branching}")


def _validate_ring_params(height: int, ring_size: int) -> None:
    if height < 2:
        raise ValueError(f"ring-based hierarchy requires height >= 2, got {height}")
    if ring_size < 2:
        raise ValueError(f"ring-based hierarchy requires ring size >= 2, got {ring_size}")


# ---------------------------------------------------------------------------
# Tree-based hierarchy
# ---------------------------------------------------------------------------


def tree_leaf_count(height: int, branching: int) -> int:
    """Number of leaf servers (LMSs) in the tree: ``n = r**(h-1)``."""
    _validate_tree_params(height, branching)
    return branching ** (height - 1)


def hopcount_tree_without_representatives(height: int, branching: int) -> int:
    """Formula (1): total HopCount of the tree without representatives."""
    _validate_tree_params(height, branching)
    n = tree_leaf_count(height, branching)
    return n * sum(branching ** (i + 1) for i in range(height - 1))


def hcn_tree_without_representatives(height: int, branching: int) -> int:
    """Normalised form of formula (1) (divided by ``n``)."""
    _validate_tree_params(height, branching)
    return sum(branching ** (i + 1) for i in range(height - 1))


def _removed_hops_per_change(height: int, branching: int) -> int:
    """The per-change hops removed by representatives (formula (2) / n)."""
    h, r = height, branching
    total = 0
    for i in range(h - 2):  # i = 0 .. h-3
        inner = sum(r**j for j in range(i))  # sum_{j=0}^{i-1} r^j (empty sum = 0)
        total += (h - i - 2) * (r**i - inner)
    return total


def hopcount_removed_tree(height: int, branching: int) -> int:
    """Formula (2): hops removed from (1) when representatives are used."""
    _validate_tree_params(height, branching)
    n = tree_leaf_count(height, branching)
    return n * _removed_hops_per_change(height, branching)


def hopcount_tree(height: int, branching: int) -> int:
    """Formula (3): total HopCount of the tree-based hierarchy with representatives."""
    _validate_tree_params(height, branching)
    n = tree_leaf_count(height, branching)
    return n * hcn_tree(height, branching)


def hcn_tree(height: int, branching: int) -> int:
    """Formula (4): normalised HopCount ``HCN_Tree`` of the tree with representatives."""
    _validate_tree_params(height, branching)
    return hcn_tree_without_representatives(height, branching) - _removed_hops_per_change(
        height, branching
    )


# ---------------------------------------------------------------------------
# Ring-based hierarchy
# ---------------------------------------------------------------------------


def ring_access_proxy_count(height: int, ring_size: int) -> int:
    """Number of access proxies in the bottommost rings: ``n = r**h``."""
    _validate_ring_params(height, ring_size)
    return ring_size**height


def ring_total_rings(height: int, ring_size: int) -> int:
    """Total number of logical rings: ``tn = sum_{i=0}^{h-1} r**i``."""
    _validate_ring_params(height, ring_size)
    return sum(ring_size**i for i in range(height))


def hopcount_ring(height: int, ring_size: int) -> int:
    """Formula (5): total HopCount of the ring-based hierarchy."""
    _validate_ring_params(height, ring_size)
    n = ring_access_proxy_count(height, ring_size)
    return n * hcn_ring(height, ring_size)


def hcn_ring(height: int, ring_size: int) -> int:
    """Formula (6): normalised HopCount ``HCN_Ring`` of the ring-based hierarchy."""
    _validate_ring_params(height, ring_size)
    return (ring_size + 1) * ring_total_rings(height, ring_size) - 1


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalabilityRow:
    """One row of Table I: a tree configuration paired with a ring configuration."""

    n: int
    tree_height: int
    tree_branching: int
    hcn_tree: int
    ring_height: int
    ring_size: int
    hcn_ring: int

    @property
    def ring_to_tree_ratio(self) -> float:
        """How much more expensive the ring hierarchy is (paper: "comparable")."""
        return self.hcn_ring / self.hcn_tree


#: The (n, h, r) configurations of Table I.  Tree and ring columns share the
#: same n and r; the ring hierarchy needs one less level because its leaves
#: are grouped into rings rather than hanging off a parent.
TABLE1_CONFIGURATIONS: Tuple[Tuple[int, int, int, int], ...] = (
    # (n, tree_height, ring_height, r)
    (25, 3, 2, 5),
    (125, 4, 3, 5),
    (625, 5, 4, 5),
    (100, 3, 2, 10),
    (1000, 4, 3, 10),
    (10000, 5, 4, 10),
)

#: The HCN values printed in the paper's Table I, used by tests/benchmarks to
#: assert the reproduction matches the publication exactly.
TABLE1_PAPER_VALUES: Tuple[Tuple[int, int, int], ...] = (
    # (n, HCN_Tree, HCN_Ring)
    (25, 29, 35),
    (125, 149, 185),
    (625, 750, 935),
    (100, 109, 120),
    (1000, 1099, 1220),
    (10000, 11000, 12220),
)


def table1_rows(
    configurations: Sequence[Tuple[int, int, int, int]] = TABLE1_CONFIGURATIONS,
) -> List[ScalabilityRow]:
    """Regenerate Table I (optionally for a custom set of configurations)."""
    rows: List[ScalabilityRow] = []
    for n, tree_h, ring_h, r in configurations:
        expected_tree_n = tree_leaf_count(tree_h, r)
        expected_ring_n = ring_access_proxy_count(ring_h, r)
        if expected_tree_n != n or expected_ring_n != n:
            raise ValueError(
                f"inconsistent Table I configuration: n={n}, tree gives {expected_tree_n}, "
                f"ring gives {expected_ring_n}"
            )
        rows.append(
            ScalabilityRow(
                n=n,
                tree_height=tree_h,
                tree_branching=r,
                hcn_tree=hcn_tree(tree_h, r),
                ring_height=ring_h,
                ring_size=r,
                hcn_ring=hcn_ring(ring_h, r),
            )
        )
    return rows


def max_ring_to_tree_ratio(rows: Sequence[ScalabilityRow] | None = None) -> float:
    """The largest HCN_Ring / HCN_Tree ratio across Table I.

    The paper's claim is that the two hierarchies are "comparable"; across its
    table the ratio never exceeds ~1.25.
    """
    rows = list(rows) if rows is not None else table1_rows()
    return max(row.ring_to_tree_ratio for row in rows)
