"""Text regeneration of the paper's tables (and the ``rgb-tables`` CLI).

``python -m repro.analysis.tables table1`` prints Table I, ``table2`` prints
Table II, ``claims`` prints the abstract's headline numbers, and ``all``
prints everything.  The same render functions are used by the benchmark
harness and by EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.analysis.reliability import (
    TABLE2_PAPER_VALUES,
    ReliabilityRow,
    headline_claims,
    table2_rows,
)
from repro.analysis.scalability import (
    TABLE1_PAPER_VALUES,
    ScalabilityRow,
    table1_rows,
)
from repro.sim.stats import RunRecord


def _paper_hcn(n: int) -> Dict[str, int]:
    for paper_n, tree, ring in TABLE1_PAPER_VALUES:
        if paper_n == n:
            return {"tree": tree, "ring": ring}
    raise KeyError(f"no paper value for n={n}")


def _paper_fw(n: int, f_percent: float, k: int) -> Optional[float]:
    for paper_n, paper_f, paper_k, value in TABLE2_PAPER_VALUES:
        if paper_n == n and abs(paper_f - f_percent) < 1e-9 and paper_k == k:
            return value
    return None


def render_table1(rows: Optional[Sequence[ScalabilityRow]] = None) -> str:
    """Table I: scalability comparison between the tree and ring hierarchies."""
    rows = list(rows) if rows is not None else table1_rows()
    lines = [
        "Table I. Comparison on Scalability between the Tree-based and the Ring-based Hierarchy",
        f"{'n':>7} {'h_tree':>6} {'r':>4} {'HCN_Tree':>9} {'paper':>7} | "
        f"{'h_ring':>6} {'HCN_Ring':>9} {'paper':>7} {'ring/tree':>9}",
    ]
    for row in rows:
        try:
            paper = _paper_hcn(row.n)
        except KeyError:
            paper = {"tree": -1, "ring": -1}
        lines.append(
            f"{row.n:>7} {row.tree_height:>6} {row.tree_branching:>4} "
            f"{row.hcn_tree:>9} {paper['tree']:>7} | "
            f"{row.ring_height:>6} {row.hcn_ring:>9} {paper['ring']:>7} "
            f"{row.ring_to_tree_ratio:>9.3f}"
        )
    return "\n".join(lines)


def render_table2(rows: Optional[Sequence[ReliabilityRow]] = None) -> str:
    """Table II: Function-Well probability of the ring-based hierarchy."""
    rows = list(rows) if rows is not None else table2_rows()
    lines = [
        "Table II. Function-Well Probability of the Ring-based Hierarchy",
        f"{'n':>6} {'h':>3} {'r':>4} {'f(%)':>6} {'k':>3} {'fw(%) computed':>15} {'fw(%) paper':>12}",
    ]
    for row in rows:
        f_percent = 100.0 * row.fault_probability
        paper = _paper_fw(row.n, f_percent, row.max_partitions)
        paper_text = f"{paper:12.3f}" if paper is not None else " " * 12
        lines.append(
            f"{row.n:>6} {row.height:>3} {row.ring_size:>4} {f_percent:>6.1f} "
            f"{row.max_partitions:>3} {row.function_well_percent:>15.3f} {paper_text}"
        )
    return "\n".join(lines)


def render_claims() -> str:
    """The two abstract claims: 99.500% (k=1) and 99.999% (k=3) at n=1000, f=0.1%."""
    claims = headline_claims()
    return "\n".join(
        [
            "Headline claims (n=1000 access proxies, node fault probability 0.1%)",
            f"  no partition (k=1)        : {100 * claims['no_partition_probability']:.3f}%  (paper: 99.500%)",
            f"  at most 3 partitions (k=3): {100 * claims['at_most_3_partitions_probability']:.3f}%  (paper: 99.999%)",
        ]
    )


def render_matrix(records: Sequence["RunRecord"]) -> str:
    """Scenario-matrix table from per-run :class:`repro.sim.stats.RunRecord`\\ s.

    One row per cell of the harness sweep (scenario × proxies × loss), with
    throughput and the convergence / ring-agreement verdict.  Accepts the
    records emitted by :func:`repro.workloads.matrix.run_matrix_cell`.
    """
    lines = [
        "Scenario matrix (event-driven harness over the lossy sim stack)",
        f"{'scenario':<16} {'proxies':>8} {'loss%':>6} {'wl-ev':>6} {'rounds':>7} "
        f"{'delivered':>9} {'dropped':>8} {'members':>8} {'wall s':>8} {'ev/s':>9} {'status':>10}",
    ]
    for record in records:
        scenario = str(record.params.get("scenario", record.name))
        loss = float(record.params.get("loss", 0.0))
        ok = record.value("converged") >= 1.0 and record.value("ring_agreement") >= 1.0
        lines.append(
            f"{scenario:<16} {int(record.params.get('proxies', 0)):>8} {100.0 * loss:>6.1f} "
            f"{int(record.value('workload_events')):>6} {record.counter('harness.rounds'):>7} "
            f"{record.counter('transport.delivered'):>9} {record.counter('transport.dropped'):>8} "
            f"{int(record.value('membership')):>8} {record.value('wall_seconds'):>8.2f} "
            f"{record.value('events_per_second'):>9.0f} {'ok' if ok else 'INCOMPLETE':>10}"
        )
    return "\n".join(lines)


def render_family_head_to_head(records: Sequence["RunRecord"]) -> str:
    """Per-family head-to-head table for the adversarial scenario families.

    Consumes the records of :func:`repro.workloads.matrix.run_ablation_cell`
    for family cells (one per protocol) and renders, per family, the honest
    cost accounting: applied changes, counted-not-dropped injections and
    skipped events, per-change hop/message cost, final membership and the
    convergence verdict.  Membership disagreement across protocols is the
    *finding*, not an error — the golden suite pins which families disagree
    and why (stale-replay resurrection, annihilated-ring ghosts).
    """
    by_family: Dict[str, list] = {}
    for record in records:
        by_family.setdefault(str(record.params.get("scenario", record.name)), []).append(record)
    lines = ["Adversarial families: protocol head-to-head (same compiled fault script)"]
    for family, rows in by_family.items():
        lines.append("")
        lines.append(
            f"{family}  "
            f"(proxies={int(rows[0].params.get('proxies', 0))}, "
            f"loss={float(rows[0].params.get('loss', 0.0)):g}, "
            f"seed={int(rows[0].params.get('seed', 0))})"
        )
        lines.append(
            f"{'protocol':<10} {'changes':>8} {'inject':>7} {'skipped':>8} "
            f"{'hops/chg':>9} {'msgs/chg':>9} {'members':>8} {'status':>9}"
        )
        memberships = {r.value("membership") for r in rows}
        for record in rows:
            ok = record.value("converged") >= 1.0
            lines.append(
                f"{str(record.params.get('protocol', '?')):<10} "
                f"{int(record.value('changes')):>8} "
                f"{int(record.value('injections')):>7} "
                f"{int(record.value('skipped_events')):>8} "
                f"{record.value('hops_per_change'):>9.1f} "
                f"{record.value('messages_per_change'):>9.1f} "
                f"{int(record.value('membership')):>8} "
                f"{'ok' if ok else 'DISAGREE':>9}"
            )
        if len(memberships) > 1:
            lines.append(
                "  membership DISAGREE across protocols — see the pinned "
                "conformance verdicts in tests/golden/families_small.json"
            )
    return "\n".join(lines)


def render_serving(cells: Sequence[Dict]) -> str:
    """Queries-under-churn table from serving-cell result dicts.

    Consumes the dicts emitted by
    :func:`repro.workloads.query_load.run_serving_cell` (one per
    size × serving mode) and renders per-scheme throughput and tail
    latency plus the snapshot cache health of the batched mode — the
    README/PERF trajectory table for the serving layer.
    """
    lines = [
        "Membership queries under churn (batched serving layer vs per-query object path)",
        f"{'proxies':>8} {'mode':>8} {'scheme':>7} {'queries':>8} {'qps':>11} "
        f"{'p50 ms':>8} {'p99 ms':>8} {'snap c/h/i':>12}",
    ]
    for cell in cells:
        snapshots = cell.get("snapshots")
        snap_text = (
            f"{snapshots['captures']}/{snapshots['hits']}/{snapshots['invalidations']}"
            if snapshots
            else "-"
        )
        for index, (name, stats) in enumerate(cell["schemes"].items()):
            lines.append(
                f"{int(cell['num_proxies']):>8} {str(cell['mode']):>8} {name:>7} "
                f"{int(stats['queries']):>8} {stats['qps']:>11.1f} "
                f"{stats['p50_ms']:>8.3f} {stats['p99_ms']:>8.3f} "
                f"{snap_text if index == 0 else '':>12}"
            )
    return "\n".join(lines)


def render_ablation(records: Sequence["RunRecord"]) -> str:
    """Head-to-head protocol ablation table, plus the Section 5.1 closed forms.

    Consumes the :class:`repro.sim.stats.RunRecord`\\ s emitted by
    :func:`repro.workloads.matrix.run_ablation_cell` (one per
    protocol × scenario × scale × loss cell) and renders

    * the measured per-change cost of each protocol (hops, on-the-wire
      messages, convergence rounds), and
    * the paper's closed-form normalised hop counts — ``HCN_Ring``
      (formula (6)), ``HCN_Tree`` (formula (4)) and the flat ring's trivial
      ``HCN = n`` — next to the lossless measured values, which validates
      formulas (1)–(6) against the simulated protocols.
    """
    from repro.analysis.scalability import hcn_ring, hcn_tree
    from repro.baselines.driver import ring_shape_for_proxies, tree_shape_for_leaves

    lines = [
        "Protocol ablation (same seeded workload replayed through every driver)",
        f"{'protocol':<10} {'scenario':<16} {'proxies':>8} {'loss%':>6} {'changes':>8} "
        f"{'hops/chg':>9} {'msgs/chg':>9} {'rounds/chg':>10} {'wall s':>8} {'status':>9}",
    ]
    for record in records:
        protocol = str(record.params.get("protocol", "?"))
        scenario = str(record.params.get("scenario", record.name))
        loss = float(record.params.get("loss", 0.0))
        ok = record.value("converged") >= 1.0
        lines.append(
            f"{protocol:<10} {scenario:<16} {int(record.params.get('proxies', 0)):>8} "
            f"{100.0 * loss:>6.1f} {int(record.value('changes')):>8} "
            f"{record.value('hops_per_change'):>9.1f} {record.value('messages_per_change'):>9.1f} "
            f"{record.value('rounds_per_change'):>10.2f} {record.value('wall_seconds'):>8.2f} "
            f"{'ok' if ok else 'DISAGREE':>9}"
        )

    # Closed-form validation: lossless measured hops per change next to the
    # paper's HCN formulas at each population scale present in the sweep.
    # Only one scenario feeds this table (churn when present — its changes
    # are plain one-change propagations, the regime the formulas model);
    # mixing scenarios would silently overwrite the measured column.
    scenarios = [str(r.params.get("scenario", r.name)) for r in records]
    validation_scenario = "churn" if "churn" in scenarios else (scenarios[0] if scenarios else "")
    sizes = sorted({int(r.params.get("proxies", 0)) for r in records})
    measured: Dict[int, Dict[str, float]] = {n: {} for n in sizes}
    for record in records:
        if float(record.params.get("loss", 0.0)) != 0.0:
            continue
        if str(record.params.get("scenario", record.name)) != validation_scenario:
            continue
        n = int(record.params.get("proxies", 0))
        protocol = str(record.params.get("protocol", "?"))
        measured[n][protocol] = record.value("hops_per_change")
    lines.append("")
    lines.append(
        "Closed-form HCN (Section 5.1, formulas (1)-(6)) vs lossless measured "
        f"hops/change ({validation_scenario or 'no'} scenario)"
    )
    lines.append(
        f"{'n':>8} {'HCN_Ring':>9} {'rgb':>9} {'HCN_Tree':>9} {'tree':>9} "
        f"{'HCN_Flat':>9} {'flat_ring':>9}"
    )
    for n in sizes:
        try:
            r, h = ring_shape_for_proxies(n)
            ring_formula = f"{hcn_ring(h, r):>9}"
        except ValueError:
            ring_formula = f"{'-':>9}"
        try:
            branching, tree_h = tree_shape_for_leaves(n)
            tree_formula = f"{hcn_tree(tree_h, branching):>9}"
        except ValueError:
            tree_formula = f"{'-':>9}"

        def cell(protocol: str) -> str:
            value = measured[n].get(protocol)
            return f"{value:>9.1f}" if value is not None else f"{'-':>9}"

        lines.append(
            f"{n:>8} {ring_formula} {cell('rgb')} {tree_formula} {cell('tree')} "
            f"{n:>9} {cell('flat_ring')}"
        )
    lines.append(
        "(tree measured < formula (4): a real representative assignment saves every"
    )
    lines.append(
        " same-server edge, the paper only credits per-interior-node chains once;"
    )
    lines.append(
        " gossip counts messages, not token hops, so it has no HCN column)"
    )
    return "\n".join(lines)


def render_all() -> str:
    return "\n\n".join([render_table1(), render_table2(), render_claims()])


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point: ``rgb-tables [table1|table2|claims|all]``."""
    parser = argparse.ArgumentParser(description="Regenerate the RGB paper's tables")
    parser.add_argument(
        "table",
        choices=["table1", "table2", "claims", "matrix", "ablation", "all"],
        nargs="?",
        default="all",
        help="which artefact to print ('matrix'/'ablation' run small smoke sweeps)",
    )
    args = parser.parse_args(argv)
    if args.table == "matrix":
        # Imported lazily: workloads.matrix imports this module for rendering.
        from repro.workloads.matrix import ScenarioMatrix

        results = ScenarioMatrix(sizes=(16,), events_per_cell=12).run()
        print(render_matrix([r.record for r in results]))
        return 0
    if args.table == "ablation":
        from repro.workloads.matrix import AblationSweep

        results = AblationSweep(
            sizes=(16,), losses=(0.0, 0.01), events_per_cell=12
        ).run()
        print(render_ablation([r.record for r in results]))
        return 0
    renderers = {
        "table1": render_table1,
        "table2": render_table2,
        "claims": render_claims,
        "all": render_all,
    }
    print(renderers[args.table]())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
