"""Monte-Carlo validation of the reliability model.

The closed forms of :mod:`repro.analysis.reliability` assume the structural
fault model of Section 5.2.  The Monte-Carlo drivers here sample that fault
model directly over materialised hierarchies and count partitions with the
same machinery the protocol uses (:mod:`repro.core.partition`), so they
validate both the formulas and the partition-detection implementation:

* :func:`simulate_hierarchy_function_well` — the ring-based hierarchy.
* :func:`simulate_tree_function_well` — the CONGRESS-style tree-based
  hierarchy *with representatives* (the baseline of the paper's qualitative
  reliability comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.tree_hierarchy import TreeHierarchy
from repro.core.hierarchy import HierarchyBuilder
from repro.core.partition import detect_partitions
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of a Monte-Carlo Function-Well estimation."""

    trials: int
    successes: int
    fault_probability: float
    max_partitions: int
    analytical: Optional[float] = None

    @property
    def estimate(self) -> float:
        return self.successes / self.trials if self.trials else float("nan")

    @property
    def stderr(self) -> float:
        """Binomial standard error of the estimate."""
        p = self.estimate
        return float(np.sqrt(max(p * (1.0 - p), 1e-12) / self.trials)) if self.trials else float("nan")

    def within(self, sigmas: float = 4.0, floor: float = 0.005) -> bool:
        """True when the estimate is within ``sigmas`` standard errors of the
        analytical value (with an absolute floor for near-degenerate cases)."""
        if self.analytical is None:
            return True
        tolerance = max(sigmas * self.stderr, floor)
        return abs(self.estimate - self.analytical) <= tolerance


def simulate_hierarchy_function_well(
    height: int,
    ring_size: int,
    fault_probability: float,
    max_partitions: int = 1,
    trials: int = 2000,
    seed: int = 0,
    analytical: Optional[float] = None,
    criterion: str = "partitions",
) -> MonteCarloResult:
    """Estimate the ring hierarchy's Function-Well probability by simulation.

    Each trial faults every network entity of a regular ``(height, ring_size)``
    hierarchy independently with probability ``fault_probability``.

    ``criterion`` selects what a successful trial means:

    * ``"partitions"`` (default) — the systems view: the hierarchy splits into
      at most ``max_partitions`` partitions according to
      :func:`repro.core.partition.detect_partitions` (adjacent faults that do
      not actually split a ring count as one partition).
    * ``"rings"`` — the paper's analytical criterion behind formula (8): at
      most ``max_partitions - 1`` rings have two or more faulty members.
      This is slightly conservative compared with ``"partitions"``, so the
      measured systems-level probability is never lower than the formula.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if criterion not in ("partitions", "rings"):
        raise ValueError(f"criterion must be 'partitions' or 'rings', got {criterion!r}")
    hierarchy = HierarchyBuilder("mc-group").regular(ring_size=ring_size, height=height)
    nodes = list(hierarchy.ring_of_node.keys())
    rng = RandomStreams(seed).stream("montecarlo-ring")
    successes = 0
    for _ in range(trials):
        draws = rng.random(len(nodes))
        failed = {node for node, draw in zip(nodes, draws) if draw < fault_probability}
        if criterion == "rings":
            bad_rings = sum(
                1
                for ring in hierarchy.rings.values()
                if sum(1 for member in ring.members if member in failed) >= 2
            )
            if bad_rings <= max_partitions - 1:
                successes += 1
            continue
        operational = [node for node in nodes if node not in failed]
        report = detect_partitions(hierarchy, operational)
        if 1 <= report.count <= max_partitions:
            successes += 1
    return MonteCarloResult(
        trials=trials,
        successes=successes,
        fault_probability=fault_probability,
        max_partitions=max_partitions,
        analytical=analytical,
    )


def simulate_tree_function_well(
    height: int,
    branching: int,
    fault_probability: float,
    max_partitions: int = 1,
    trials: int = 2000,
    seed: int = 0,
    analytical: Optional[float] = None,
) -> MonteCarloResult:
    """Estimate the tree-with-representatives Function-Well probability.

    Each trial faults every *physical server* independently; because interior
    levels are played by representative servers, one physical fault can remove
    several logical nodes.  The trial succeeds when the surviving logical tree
    splits into at most ``max_partitions`` connected components.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    tree = TreeHierarchy.regular(height=height, branching=branching, with_representatives=True)
    servers = tree.physical_servers()
    rng = RandomStreams(seed).stream("montecarlo-tree")
    successes = 0
    for _ in range(trials):
        draws = rng.random(len(servers))
        failed = {server for server, draw in zip(servers, draws) if draw < fault_probability}
        components = tree.partition_count(failed)
        if 1 <= components <= max_partitions:
            successes += 1
    return MonteCarloResult(
        trials=trials,
        successes=successes,
        fault_probability=fault_probability,
        max_partitions=max_partitions,
        analytical=analytical,
    )
