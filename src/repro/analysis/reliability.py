"""Reliability model — paper Section 5.2, formulas (7)–(8) and Table II.

The model assumes node faults that are uniform and independent with
probability ``f`` (link faults are folded into node faults).  A logical ring
*functions well* when at most one of its ``r`` members is faulty — a single
fault is detected by token retransmission and locally repaired by excluding
the node, while two or more simultaneous faults partition the ring.  The full
hierarchy (the worst case: maximal number of tiers, every ring full) contains
``tn = sum_{i=0}^{h-1} r**i`` rings and functions well when fewer than ``k``
of them are partitioned.

* Formula (7): ``t = Prob_fw-ring(r, f) = (1 - f + r f) (1 - f)**(r-1)``.
* Formula (8): ``Prob_fw-hierarchy(n, h, r, f, k) =
  sum_{i=0}^{k-1} C(tn, i) t**(tn-i) (1-t)**i``.

Table II evaluates the hierarchy probability for ``h = 3`` with ``r = 5``
(n = 125) and ``r = 10`` (n = 1000), fault probabilities 0.1%, 0.5% and 2.0%
and ``k`` in {1, 2, 3}; :func:`table2_rows` regenerates it.

For the paper's qualitative claim that the ring hierarchy is more reliable
than the tree-based hierarchy *with representatives*, the module also provides
an analytical Function-Well probability for that baseline
(:func:`tree_function_well_probability`): a representative failure severs all
of its children, so the tree stays unpartitioned only when every interior
(representative) server survives, while leaf failures — like single ring
faults — are locally absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from scipy.stats import binom

from repro.analysis.scalability import ring_access_proxy_count, ring_total_rings


def _validate_probability(f: float, name: str = "fault probability") -> None:
    if not 0.0 <= f <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {f}")


def ring_function_well_probability(ring_size: int, fault_probability: float) -> float:
    """Formula (7): probability that one logical ring functions well.

    The ring functions well when zero or one of its ``r`` members is faulty.
    """
    if ring_size < 1:
        raise ValueError(f"ring size must be >= 1, got {ring_size}")
    _validate_probability(fault_probability)
    f, r = fault_probability, ring_size
    value = (1.0 - f + r * f) * (1.0 - f) ** (r - 1)
    # Guard against floating-point overshoot just above 1.0 for tiny f.
    return min(1.0, max(0.0, value))


def hierarchy_function_well_probability(
    height: int,
    ring_size: int,
    fault_probability: float,
    max_partitions: int = 1,
) -> float:
    """Formula (8): probability the full hierarchy functions well.

    ``max_partitions`` is the paper's ``k``: the hierarchy is considered
    Function-Well when fewer than ``k`` rings fail to function well (i.e. at
    most ``k - 1`` rings are partitioned — which yields at most ``k``
    partitions of the hierarchy overall, since each partitioned ring splits
    one component off the main hierarchy).
    """
    if max_partitions < 1:
        raise ValueError(f"max_partitions must be >= 1, got {max_partitions}")
    _validate_probability(fault_probability)
    t = ring_function_well_probability(ring_size, fault_probability)
    tn = ring_total_rings(height, ring_size)
    # Binomial tail: at most (k-1) of the tn rings fail to function well.
    return float(binom.cdf(max_partitions - 1, tn, 1.0 - t))


def tree_function_well_probability(
    height: int,
    branching: int,
    fault_probability: float,
    max_partitions: int = 1,
) -> float:
    """Function-Well probability of the tree-based hierarchy with representatives.

    In the CONGRESS-style tree, the servers of levels above the leaves are
    *representatives* — physically the same machines as (a subset of) the leaf
    servers.  A representative failure disconnects the whole subtree below it,
    so, unlike a ring, there is no single-fault repair margin at interior
    positions: the hierarchy stays whole only while every representative
    survives.  Allowing up to ``k`` partitions tolerates up to ``k - 1``
    failed representatives (each failed representative detaches at least one
    additional component).

    The number of representative servers is the number of interior nodes,
    ``sum_{i=0}^{h-2} r**i``.
    """
    if height < 3:
        raise ValueError(f"tree-based hierarchy requires height >= 3, got {height}")
    if branching < 2:
        raise ValueError(f"branching must be >= 2, got {branching}")
    if max_partitions < 1:
        raise ValueError(f"max_partitions must be >= 1, got {max_partitions}")
    _validate_probability(fault_probability)
    representatives = sum(branching**i for i in range(height - 1))
    return float(binom.cdf(max_partitions - 1, representatives, fault_probability))


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReliabilityRow:
    """One row of Table II."""

    n: int
    height: int
    ring_size: int
    fault_probability: float
    max_partitions: int
    function_well: float

    @property
    def function_well_percent(self) -> float:
        return 100.0 * self.function_well


#: (height, ring_size, fault probability, k) for every row of Table II.
TABLE2_CONFIGURATIONS: Tuple[Tuple[int, int, float, int], ...] = tuple(
    (3, r, f, k)
    for r in (5, 10)
    for f in (0.001, 0.005, 0.02)
    for k in (1, 2, 3)
)

#: The Function-Well percentages printed in the paper's Table II
#: (left block r=5 / n=125, right block r=10 / n=1000), keyed by
#: (n, fault probability in percent, k).
TABLE2_PAPER_VALUES: Tuple[Tuple[int, float, int, float], ...] = (
    (125, 0.1, 1, 99.968),
    (125, 0.1, 2, 99.999),
    (125, 0.1, 3, 99.999),
    (125, 0.5, 1, 99.211),
    (125, 0.5, 2, 99.972),
    (125, 0.5, 3, 99.975),
    (125, 2.0, 1, 88.409),
    (125, 2.0, 2, 98.981),
    (125, 2.0, 3, 99.592),
    (1000, 0.1, 1, 99.500),
    (1000, 0.1, 2, 99.994),
    (1000, 0.1, 3, 99.996),
    (1000, 0.5, 1, 88.448),
    (1000, 0.5, 2, 99.215),
    (1000, 0.5, 3, 99.864),
    (1000, 2.0, 1, 16.094),
    (1000, 2.0, 2, 45.470),
    (1000, 2.0, 3, 72.038),
)


def table2_rows(
    configurations: Sequence[Tuple[int, int, float, int]] = TABLE2_CONFIGURATIONS,
) -> List[ReliabilityRow]:
    """Regenerate Table II (optionally for a custom set of configurations)."""
    rows: List[ReliabilityRow] = []
    for height, ring_size, fault_probability, k in configurations:
        rows.append(
            ReliabilityRow(
                n=ring_access_proxy_count(height, ring_size),
                height=height,
                ring_size=ring_size,
                fault_probability=fault_probability,
                max_partitions=k,
                function_well=hierarchy_function_well_probability(
                    height, ring_size, fault_probability, k
                ),
            )
        )
    return rows


def headline_claims() -> dict:
    """The two numbers quoted in the paper's abstract (n=1000, f=0.1%)."""
    return {
        "no_partition_probability": hierarchy_function_well_probability(3, 10, 0.001, 1),
        "at_most_3_partitions_probability": hierarchy_function_well_probability(3, 10, 0.001, 3),
    }
