"""Measured hop counts from the implemented protocol.

The closed-form ``HCN_Ring`` of :mod:`repro.analysis.scalability` counts, per
membership change, one full token round in every logical ring plus one
notification message per ring-to-parent link.  This module measures the same
quantity by actually running the One-Round Token Passing engine on a regular
hierarchy and counting the hops the implementation generates, which validates
that the formula describes the code (and therefore that Table I describes the
protocol, not just the algebra).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.scalability import hcn_ring, ring_access_proxy_count
from repro.core.config import ProtocolConfig
from repro.core.hierarchy import HierarchyBuilder
from repro.core.one_round import OneRoundEngine


@dataclass(frozen=True)
class HopCountMeasurement:
    """Measured vs analytical hop count for one configuration."""

    height: int
    ring_size: int
    n: int
    changes: int
    measured_hops_per_change: float
    analytical_hcn: int
    token_hops: int
    notify_hops: int
    ack_hops: int

    @property
    def relative_error(self) -> float:
        """|measured - analytical| / analytical."""
        if self.analytical_hcn == 0:
            return 0.0
        return abs(self.measured_hops_per_change - self.analytical_hcn) / self.analytical_hcn


def measure_ring_hopcount(
    height: int,
    ring_size: int,
    changes: int = 1,
    config: Optional[ProtocolConfig] = None,
    distinct_origins: bool = True,
) -> HopCountMeasurement:
    """Measure hops per membership change on a regular ring hierarchy.

    ``changes`` membership joins are injected one at a time (each propagated
    to quiescence before the next, matching the paper's "one membership change
    message per ring at a time" regime) and the average hop count per change
    is reported.  ``distinct_origins`` spreads the joins over different access
    proxies; the hop count is origin-independent, which the tests assert.
    """
    if changes < 1:
        raise ValueError(f"changes must be >= 1, got {changes}")
    protocol_config = config if config is not None else ProtocolConfig(
        aggregation_delay=0.0, disseminate_downward=True
    )
    hierarchy = HierarchyBuilder("hopcount-group").regular(ring_size=ring_size, height=height)
    engine = OneRoundEngine(hierarchy, config=protocol_config)
    aps = hierarchy.access_proxies()

    total_token = 0
    total_notify = 0
    total_ack = 0
    for index in range(changes):
        ap = aps[index % len(aps)] if distinct_origins else aps[0]
        engine.member_join(ap, f"probe-{index:05d}", now=float(index))
        report = engine.propagate(now=float(index))
        total_token += report.token_hops
        total_notify += report.notify_hops
        total_ack += report.ack_hops

    measured = (total_token + total_notify) / changes
    return HopCountMeasurement(
        height=height,
        ring_size=ring_size,
        n=ring_access_proxy_count(height, ring_size),
        changes=changes,
        measured_hops_per_change=measured,
        analytical_hcn=hcn_ring(height, ring_size),
        token_hops=total_token,
        notify_hops=total_notify,
        ack_hops=total_ack,
    )


def measure_series(
    configurations: List[tuple],
    changes: int = 1,
) -> List[HopCountMeasurement]:
    """Measure several (height, ring_size) configurations."""
    return [measure_ring_hopcount(h, r, changes=changes) for h, r in configurations]
