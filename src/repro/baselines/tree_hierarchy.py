"""The tree-based hierarchy of membership servers (CONGRESS-style baseline).

The paper's Section 5 compares the RGB ring-based hierarchy against the
CONGRESS hierarchy [Anker et al. 1998]: local membership servers (LMSs) at the
leaves and global membership servers (GMSs) arranged in a tree above them,
where *representatives* means the higher-level logical GMSs are physically the
same machines as lowest-level servers.

The baseline here supports both variants:

* ``with_representatives=True`` — the physical population is just the ``n``
  leaf servers; every interior position is played by one of them (the
  left-most descendant leaf, matching the usual construction).  One physical
  fault therefore removes a leaf *and* every interior position it plays.
* ``with_representatives=False`` — the "transformation hierarchy" of
  Section 5.2: interior nodes are physically distinct machines.

Reliability is evaluated by :meth:`TreeHierarchy.partition_count` (connected
components of the surviving logical tree) and scalability by
:mod:`repro.baselines.tree_membership`, which runs a one-round proposal over
the tree and counts hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass
class TreeNode:
    """One logical node of the tree hierarchy."""

    node_id: str
    level: int  # 0 = root, height-1 = leaves
    server: str  # the physical server playing this logical node
    parent: Optional[str] = None
    children: List[str] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None


class TreeHierarchy:
    """A complete ``branching``-ary tree of membership servers."""

    def __init__(self, nodes: Dict[str, TreeNode], height: int, branching: int, with_representatives: bool) -> None:
        self.nodes = nodes
        self.height = height
        self.branching = branching
        self.with_representatives = with_representatives
        self._root_id = next(nid for nid, node in nodes.items() if node.is_root)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def regular(cls, height: int, branching: int, with_representatives: bool = True) -> "TreeHierarchy":
        """Build the complete tree: ``height`` levels, ``branching`` children per interior node.

        Leaves sit at level ``height - 1``; there are ``branching**(height-1)``
        of them, matching the paper's ``n = r**(h-1)``.
        """
        if height < 3:
            raise ValueError(f"tree-based hierarchy requires height >= 3, got {height}")
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        nodes: Dict[str, TreeNode] = {}

        def build(level: int, path: Tuple[int, ...], parent: Optional[str]) -> str:
            node_id = "t-" + "-".join(f"{p}" for p in path) if path else "t-root"
            node = TreeNode(node_id=node_id, level=level, server="", parent=parent)
            nodes[node_id] = node
            if level < height - 1:
                for child_index in range(branching):
                    child_id = build(level + 1, path + (child_index,), node_id)
                    node.children.append(child_id)
            return node_id

        build(0, (), None)

        # Assign physical servers.  Leaves are servers themselves; interior
        # nodes are either distinct machines or the left-most descendant leaf.
        for node in nodes.values():
            if node.is_leaf:
                node.server = f"srv-{node.node_id}"
        for node in nodes.values():
            if node.is_leaf:
                continue
            if with_representatives:
                leftmost = node
                while not leftmost.is_leaf:
                    leftmost = nodes[leftmost.children[0]]
                node.server = leftmost.server
            else:
                node.server = f"srv-{node.node_id}"
        return cls(nodes, height, branching, with_representatives)

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------

    @property
    def root(self) -> TreeNode:
        return self.nodes[self._root_id]

    def leaves(self) -> List[TreeNode]:
        return sorted((n for n in self.nodes.values() if n.is_leaf), key=lambda n: n.node_id)

    def leaf_count(self) -> int:
        return len(self.leaves())

    def interior_nodes(self) -> List[TreeNode]:
        return sorted((n for n in self.nodes.values() if not n.is_leaf), key=lambda n: n.node_id)

    def physical_servers(self) -> List[str]:
        """Distinct physical machines in the hierarchy."""
        return sorted({node.server for node in self.nodes.values()})

    def logical_nodes_of_server(self, server: str) -> List[TreeNode]:
        return [n for n in self.nodes.values() if n.server == server]

    def representatives(self) -> List[str]:
        """Physical servers that play at least one interior position."""
        return sorted({n.server for n in self.nodes.values() if not n.is_leaf})

    def edge_count(self) -> int:
        """Logical parent-child edges (``n`` interior edges of the tree)."""
        return sum(len(node.children) for node in self.nodes.values())

    def physical_edge_count(self) -> int:
        """Edges with physically distinct endpoints (what messages actually cross)."""
        count = 0
        for node in self.nodes.values():
            for child_id in node.children:
                if self.nodes[child_id].server != node.server:
                    count += 1
        return count

    def path_to_root(self, node_id: str) -> List[str]:
        """Node ids from ``node_id`` (exclusive) up to the root (inclusive)."""
        chain: List[str] = []
        current = self.nodes[node_id]
        while current.parent is not None:
            chain.append(current.parent)
            current = self.nodes[current.parent]
        return chain

    # ------------------------------------------------------------------
    # reliability
    # ------------------------------------------------------------------

    def surviving_nodes(self, failed_servers: Iterable[str]) -> Set[str]:
        """Logical nodes whose physical server is still operational."""
        failed = set(failed_servers)
        return {nid for nid, node in self.nodes.items() if node.server not in failed}

    def partition_count(self, failed_servers: Iterable[str]) -> int:
        """Connected components of the surviving logical tree.

        A failed interior server severs its subtree from the rest; the
        components of the forest that remains are the partitions of the
        membership service.  Components are counted over surviving nodes only.
        """
        alive = self.surviving_nodes(failed_servers)
        if not alive:
            return 0
        seen: Set[str] = set()
        components = 0
        for node_id in alive:
            if node_id in seen:
                continue
            components += 1
            stack = [node_id]
            seen.add(node_id)
            while stack:
                current = self.nodes[stack.pop()]
                neighbours = list(current.children)
                if current.parent is not None:
                    neighbours.append(current.parent)
                for neighbour in neighbours:
                    if neighbour in alive and neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
        return components

    def functions_well(self, failed_servers: Iterable[str], max_partitions: int = 1) -> bool:
        count = self.partition_count(failed_servers)
        return 1 <= count <= max_partitions
