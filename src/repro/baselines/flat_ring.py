"""Flat single-ring token membership (Totem / Cristian-Schmuck style baseline).

Section 2 of the paper reviews one-round algorithms where "all the group
members form one logical ring and a token is used to reach agreement", and
notes they are "inefficient in case of large group" — which is the motivation
for the hierarchy.  This baseline implements exactly that flat scheme over the
access proxies so the ablation benchmark can show the crossover: for small
``n`` a flat ring is cheaper (no inter-ring notifications), but its per-change
hop count grows linearly with ``n`` while RGB's grows with the much smaller
``(r+1)·tn − 1``.

Cost model (aligned with the kernel's token-retransmission accounting,
paper §5.2):

* a **hop** is one successful token transmission from the current holder to
  the next operational proxy — including the closing transmission that
  returns the token to the origin once it has left it;
* a transmission towards a **failed** proxy is never delivered: the holder
  retries ``token_retry_limit`` times, declares the proxy faulty and excludes
  it.  Those wasted attempts (the initial send plus every retry,
  ``token_retry_limit + 1`` in total) are charged to ``retransmissions``, not
  to the hop count, and the skip transmission to the successor *is* a hop —
  the seed implementation charged a phantom hop to the dead proxy instead and
  never charged the skip, and it dropped the closing hop whenever repairs
  left ``reached <= 1``;
* with per-link ``loss``, a lost token transmission to a live proxy is
  re-sent until it lands; every lost attempt counts one retransmission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.sim.rng import RandomStreams


@dataclass
class FlatRingReport:
    """Hop accounting for one membership change on the flat ring."""

    origin: str
    hops: int
    members_reached: int
    retransmissions: int = 0
    repaired: List[str] = field(default_factory=list)

    @property
    def messages(self) -> int:
        """Total transmissions on the wire: delivered hops + wasted sends."""
        return self.hops + self.retransmissions


class FlatRingMembership:
    """All access proxies in one token ring; one full revolution per change.

    Parameters
    ----------
    proxies:
        The access proxies, in ring order.
    token_retry_limit:
        Retries before a silent proxy is declared faulty and excluded
        (mirrors :class:`repro.core.config.ProtocolConfig.token_retry_limit`).
    loss:
        Per-transmission loss probability towards *live* proxies; lost
        transmissions are retried (and counted as retransmissions) until they
        land, masking the loss exactly like the kernel's reliable dispatch.
    seed:
        Seed for the ``"flat-ring.loss"`` random stream.
    """

    def __init__(
        self,
        proxies: Sequence[str],
        token_retry_limit: int = 2,
        loss: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not proxies:
            raise ValueError("flat ring needs at least one access proxy")
        if len(set(proxies)) != len(proxies):
            raise ValueError("duplicate access proxies in flat ring")
        if token_retry_limit < 0:
            raise ValueError(f"token_retry_limit must be >= 0, got {token_retry_limit}")
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {loss}")
        self.ring: List[str] = list(proxies)
        self.views: Dict[str, Set[str]] = {p: set() for p in proxies}
        self.token_retry_limit = token_retry_limit
        self.loss = loss
        self._rng = RandomStreams(seed).stream("flat-ring.loss")
        self._failed: Set[str] = set()
        self.reports: List[FlatRingReport] = []
        self.total_retransmissions = 0

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def fail_proxy(self, proxy: str) -> None:
        if proxy not in self.views:
            raise KeyError(f"unknown access proxy {proxy!r}")
        self._failed.add(proxy)

    def operational(self) -> List[str]:
        return [p for p in self.ring if p not in self._failed]

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------

    def _lossy_delivery_retries(self) -> int:
        """Extra attempts a transmission to a live proxy needed before landing."""
        if self.loss <= 0.0:
            return 0
        retries = 0
        while float(self._rng.random()) < self.loss:
            retries += 1
        return retries

    def propagate_change(self, origin: str, member: str, join: bool = True) -> FlatRingReport:
        """Circulate the change once around the ring starting at ``origin``."""
        if origin not in self.views:
            raise KeyError(f"unknown access proxy {origin!r}")
        if origin in self._failed:
            raise ValueError(f"origin {origin!r} has failed")
        start = self.ring.index(origin)
        order = self.ring[start:] + self.ring[:start]
        hops = 0
        retransmissions = 0
        reached = 0
        repaired: List[str] = []
        # Explicit token walk: ``holder`` is wherever the token currently sits;
        # it transmits to each subsequent ring position in order, skipping
        # (and excluding) proxies that never acknowledge.
        holder = origin
        for proxy in order:
            if proxy == origin:
                if join:
                    self.views[proxy].add(member)
                else:
                    self.views[proxy].discard(member)
                reached += 1
                continue
            if proxy in self._failed:
                # The holder's send and its token_retry_limit retries are all
                # wasted transmissions; the token stays with the holder, which
                # then skips to the successor (charged as that hop).
                retransmissions += self.token_retry_limit + 1
                repaired.append(proxy)
                continue
            retransmissions += self._lossy_delivery_retries()
            hops += 1
            if join:
                self.views[proxy].add(member)
            else:
                self.views[proxy].discard(member)
            reached += 1
            holder = proxy
        # Closing hop: once the token has left the origin it must be handed
        # back to complete the revolution, regardless of how many proxies were
        # repaired away along the arc.
        if holder != origin:
            retransmissions += self._lossy_delivery_retries()
            hops += 1
        for proxy in repaired:
            self.ring.remove(proxy)
            del self.views[proxy]
            self._failed.discard(proxy)
        self.total_retransmissions += retransmissions
        report = FlatRingReport(
            origin=origin,
            hops=hops,
            members_reached=reached,
            retransmissions=retransmissions,
            repaired=repaired,
        )
        self.reports.append(report)
        return report

    def join(self, origin: str, member: str) -> FlatRingReport:
        return self.propagate_change(origin, member, join=True)

    def leave(self, origin: str, member: str) -> FlatRingReport:
        return self.propagate_change(origin, member, join=False)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def membership_at(self, proxy: str) -> Set[str]:
        return set(self.views[proxy])

    def global_agreement(self) -> bool:
        views = [frozenset(self.views[p]) for p in self.operational()]
        return len(set(views)) <= 1

    def average_hops(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.hops for r in self.reports) / len(self.reports)

    def ring_size(self) -> int:
        return len(self.ring)
