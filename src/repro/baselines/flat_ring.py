"""Flat single-ring token membership (Totem / Cristian-Schmuck style baseline).

Section 2 of the paper reviews one-round algorithms where "all the group
members form one logical ring and a token is used to reach agreement", and
notes they are "inefficient in case of large group" — which is the motivation
for the hierarchy.  This baseline implements exactly that flat scheme over the
access proxies so the ablation benchmark can show the crossover: for small
``n`` a flat ring is cheaper (no inter-ring notifications), but its per-change
hop count grows linearly with ``n`` while RGB's grows with the much smaller
``(r+1)·tn − 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set


@dataclass
class FlatRingReport:
    """Hop accounting for one membership change on the flat ring."""

    origin: str
    hops: int
    members_reached: int
    repaired: List[str] = field(default_factory=list)


class FlatRingMembership:
    """All access proxies in one token ring; one full revolution per change."""

    def __init__(self, proxies: Sequence[str]) -> None:
        if not proxies:
            raise ValueError("flat ring needs at least one access proxy")
        if len(set(proxies)) != len(proxies):
            raise ValueError("duplicate access proxies in flat ring")
        self.ring: List[str] = list(proxies)
        self.views: Dict[str, Set[str]] = {p: set() for p in proxies}
        self._failed: Set[str] = set()
        self.reports: List[FlatRingReport] = []
        self.total_retransmissions = 0

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def fail_proxy(self, proxy: str) -> None:
        if proxy not in self.views:
            raise KeyError(f"unknown access proxy {proxy!r}")
        self._failed.add(proxy)

    def operational(self) -> List[str]:
        return [p for p in self.ring if p not in self._failed]

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------

    def propagate_change(self, origin: str, member: str, join: bool = True) -> FlatRingReport:
        """Circulate the change once around the ring starting at ``origin``."""
        if origin not in self.views:
            raise KeyError(f"unknown access proxy {origin!r}")
        if origin in self._failed:
            raise ValueError(f"origin {origin!r} has failed")
        start = self.ring.index(origin)
        order = self.ring[start:] + self.ring[:start]
        hops = 0
        reached = 0
        repaired: List[str] = []
        for position, proxy in enumerate(order):
            if position > 0:
                hops += 1
            if proxy in self._failed:
                # Token retransmission detects the fault; the node is excluded.
                self.total_retransmissions += 1
                repaired.append(proxy)
                continue
            if join:
                self.views[proxy].add(member)
            else:
                self.views[proxy].discard(member)
            reached += 1
        # Closing hop back to the origin completes the revolution.
        if reached > 1:
            hops += 1
        for proxy in repaired:
            self.ring.remove(proxy)
            del self.views[proxy]
            self._failed.discard(proxy)
        report = FlatRingReport(origin=origin, hops=hops, members_reached=reached, repaired=repaired)
        self.reports.append(report)
        return report

    def join(self, origin: str, member: str) -> FlatRingReport:
        return self.propagate_change(origin, member, join=True)

    def leave(self, origin: str, member: str) -> FlatRingReport:
        return self.propagate_change(origin, member, join=False)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def membership_at(self, proxy: str) -> Set[str]:
        return set(self.views[proxy])

    def global_agreement(self) -> bool:
        views = [frozenset(self.views[p]) for p in self.operational()]
        return len(set(views)) <= 1

    def average_hops(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.hops for r in self.reports) / len(self.reports)

    def ring_size(self) -> int:
        return len(self.ring)
