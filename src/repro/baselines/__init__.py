"""Baseline membership schemes the paper compares against (or that supersede it).

* :mod:`repro.baselines.tree_hierarchy` — the CONGRESS-style tree-based
  hierarchy of membership servers, with and without representatives
  (Section 2 related work and the Section 5 comparison target).
* :mod:`repro.baselines.tree_membership` — the Moshe/Keidar-style one-round
  proposal algorithm running over the tree hierarchy; used to measure tree
  hop counts the same way the ring hop counts are measured.
* :mod:`repro.baselines.flat_ring` — a single flat token ring over all
  access proxies (Totem / Cristian-Schmuck style), the non-hierarchical
  comparator that motivates the hierarchy.
* :mod:`repro.baselines.gossip` — a SWIM-style gossip membership protocol,
  the modern comparator used in the ablation benchmarks.
* :mod:`repro.baselines.driver` — the :class:`MembershipProtocol` driver seam
  that puts the RGB kernel and all three baselines behind one propagate /
  fail / converge-check / cost-report interface for the ablation matrix.
"""

from repro.baselines.tree_hierarchy import TreeHierarchy, TreeNode
from repro.baselines.tree_membership import TreeMembershipProtocol, TreePropagationReport
from repro.baselines.flat_ring import FlatRingMembership, FlatRingReport
from repro.baselines.gossip import GossipMembership, GossipReport
from repro.baselines.driver import (
    PROTOCOL_NAMES,
    BaseProtocolDriver,
    ChangeReport,
    CostTotals,
    FlatRingProtocol,
    GossipProtocol,
    RGBRingProtocol,
    TreeProtocol,
    build_protocol,
    ring_shape_for_proxies,
    tree_shape_for_leaves,
)

__all__ = [
    "TreeHierarchy",
    "TreeNode",
    "TreeMembershipProtocol",
    "TreePropagationReport",
    "FlatRingMembership",
    "FlatRingReport",
    "GossipMembership",
    "GossipReport",
    "PROTOCOL_NAMES",
    "BaseProtocolDriver",
    "ChangeReport",
    "CostTotals",
    "FlatRingProtocol",
    "GossipProtocol",
    "RGBRingProtocol",
    "TreeProtocol",
    "build_protocol",
    "ring_shape_for_proxies",
    "tree_shape_for_leaves",
]
