"""The protocol-agnostic membership driver interface (the ablation seam).

The paper's headline claim (Section 5, Table I) is comparative: the ring-based
hierarchy against a flat token ring and a tree hierarchy, with SWIM-style
gossip as the modern comparator.  Before this module each baseline was a
standalone toy with its own accounting; :class:`MembershipProtocol` is the
single driver seam the scenario matrix (:mod:`repro.workloads.matrix`) and the
ablation benchmark (``benchmarks/run_bench.py --ablation``) use to drive *any*
of the four protocols through the *same* workload trace:

* **propagate** — ``join`` / ``leave`` / ``handoff`` apply one membership
  change and return a :class:`ChangeReport` with the paper's cost quantities
  (hops, on-the-wire messages, rounds, retransmissions);
* **fail** — ``fail_site`` crashes a capture site: the site is excluded and
  the members attached there are failure-propagated, exactly like the RGB
  kernel's ring-repair failure operations, so every protocol converges to the
  same surviving membership;
* **converge-check** — ``global_agreement`` asks whether every operational
  site holds the same view, and ``members`` returns the agreed membership;
* **cost report** — :class:`CostTotals` accumulates the per-change reports
  for the head-to-head tables.

All event gating (duplicate joins, departures of unknown members, captures at
crashed sites) lives in :class:`BaseProtocolDriver`, **not** in the adapters:
every protocol skips exactly the same workload events, which is what makes the
cross-protocol membership-equality property hold.

Adapters:

* :class:`RGBRingProtocol` — the event-driven
  :class:`repro.sim.harness.ScenarioHarness` (kernel rounds over the lossy
  transport); costs come from kernel/transport counter deltas.
* :class:`FlatRingProtocol` — :class:`repro.baselines.flat_ring.FlatRingMembership`.
* :class:`GossipProtocol` — :class:`repro.baselines.gossip.GossipMembership`.
* :class:`TreeProtocol` — :class:`repro.baselines.tree_membership.TreeMembershipProtocol`
  over a CONGRESS-style :class:`repro.baselines.tree_hierarchy.TreeHierarchy`
  with representatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baselines.flat_ring import FlatRingMembership
from repro.baselines.gossip import GossipMembership
from repro.baselines.tree_hierarchy import TreeHierarchy
from repro.baselines.tree_membership import TreeMembershipProtocol

#: Protocols the ablation matrix can drive.
PROTOCOL_NAMES: Tuple[str, ...] = ("rgb", "flat_ring", "gossip", "tree")


def ring_shape_for_proxies(num_proxies: int) -> Tuple[int, int]:
    """``(ring_size, height)`` of the regular RGB hierarchy with ``num_proxies`` APs.

    Prefers the shallowest hierarchy whose ring size stays within the paper's
    practical range (2–16): 1 000 → (10, 3), 10 000 → (10, 4),
    100 000 → (10, 5); small test sizes like 16 → (4, 2) also resolve.
    """
    for height in range(2, 7):
        base = round(num_proxies ** (1.0 / height))
        for ring_size in (base - 1, base, base + 1):
            if 2 <= ring_size <= 16 and ring_size**height == num_proxies:
                return ring_size, height
    raise ValueError(
        f"no regular hierarchy shape with 2 <= r <= 16 yields {num_proxies} proxies"
    )


def tree_shape_for_leaves(num_leaves: int) -> Tuple[int, int]:
    """``(branching, height)`` of the regular tree with ``num_leaves`` LMSs.

    The paper's tree has ``n = r**(h-1)`` leaves with ``h >= 3``:
    1 000 → (10, 4), 10 000 → (10, 5); 16 → (4, 3).
    """
    for height in range(3, 8):
        base = round(num_leaves ** (1.0 / (height - 1)))
        for branching in (base - 1, base, base + 1):
            if 2 <= branching <= 16 and branching ** (height - 1) == num_leaves:
                return branching, height
    raise ValueError(
        f"no regular tree shape with 2 <= r <= 16 yields {num_leaves} leaf servers"
    )


@dataclass(frozen=True)
class ChangeReport:
    """Per-change cost report, in the paper's Section 5.1 quantities."""

    protocol: str
    kind: str  # join / leave / handoff / fail_site / skipped
    hops: int = 0
    messages: int = 0
    rounds: int = 0
    retransmissions: int = 0
    applied: bool = True


@dataclass
class CostTotals:
    """Cumulative cost accounting across one driven scenario."""

    changes: int = 0
    skipped: int = 0
    hops: int = 0
    messages: int = 0
    rounds: int = 0
    retransmissions: int = 0
    site_failures: int = 0
    injections: int = 0

    def add(self, report: ChangeReport) -> None:
        if not report.applied:
            self.skipped += 1
            return
        if report.kind in ("inject_duplicate", "inject_stale"):
            # Replayed messages are adversarial wire traffic, not membership
            # changes: their cost accumulates (the protocol really pays it)
            # but they must not dilute the per-change denominators.
            self.injections += 1
        else:
            self.changes += 1
        self.hops += report.hops
        self.messages += report.messages
        self.rounds += report.rounds
        self.retransmissions += report.retransmissions
        if report.kind in ("fail_site", "fail_internal"):
            self.site_failures += 1

    def per_change(self, quantity: int) -> float:
        return quantity / self.changes if self.changes else 0.0

    def as_values(self) -> Dict[str, float]:
        """Flat value dict for :class:`repro.sim.stats.RunRecord`."""
        return {
            "changes": float(self.changes),
            "skipped_events": float(self.skipped),
            "hops": float(self.hops),
            "messages": float(self.messages),
            "rounds": float(self.rounds),
            "retransmissions": float(self.retransmissions),
            "site_failures": float(self.site_failures),
            "injections": float(self.injections),
            "hops_per_change": self.per_change(self.hops),
            "messages_per_change": self.per_change(self.messages),
            "rounds_per_change": self.per_change(self.rounds),
        }


class BaseProtocolDriver:
    """Shared gating, attachment tracking and cost accumulation.

    Subclasses implement only the ``_propagate_*`` / ``_crash_site`` hooks;
    every decision about *whether* an event applies is made here so all
    protocols replay a workload trace identically.
    """

    name: str = "abstract"

    def __init__(self, sites: Sequence[str]) -> None:
        if not sites:
            raise ValueError("a membership protocol needs at least one capture site")
        self._sites: List[str] = list(sites)
        self._attachment: Dict[str, str] = {}
        self._failed_sites: Set[str] = set()
        # First and most recent applied propagation per member, as
        # (site, join?) message records — what a replay adversary re-delivers.
        self._first_op: Dict[str, Tuple[str, bool]] = {}
        self._last_op: Dict[str, Tuple[str, bool]] = {}
        self.totals = CostTotals()

    # -- structure ----------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        """Capture sites (access proxies / leaf servers), in index order."""
        return list(self._sites)

    def operational_sites(self) -> List[str]:
        return [s for s in self._sites if s not in self._failed_sites]

    @property
    def attachment(self) -> Dict[str, str]:
        return dict(self._attachment)

    # -- the driver interface -----------------------------------------------

    def join(self, site: str, member: str) -> ChangeReport:
        if site in self._failed_sites or member in self._attachment:
            return self._skip("join")
        report = self._finish("join", self._propagate_join(site, member))
        self._attachment[member] = site
        self._record_op(member, site, True)
        return report

    def leave(self, member: str) -> ChangeReport:
        site = self._attachment.get(member)
        if site is None:
            return self._skip("leave")
        report = self._finish("leave", self._propagate_leave(site, member))
        del self._attachment[member]
        self._record_op(member, site, False)
        return report

    def handoff(self, member: str, to_site: str) -> ChangeReport:
        from_site = self._attachment.get(member)
        if from_site is None or to_site in self._failed_sites or to_site == from_site:
            return self._skip("handoff")
        report = self._finish("handoff", self._propagate_handoff(member, from_site, to_site))
        self._attachment[member] = to_site
        self._record_op(member, to_site, True)
        return report

    def fail_site(self, site: str) -> ChangeReport:
        if site not in self._sites or site in self._failed_sites:
            return self._skip("fail_site")
        if len(self._failed_sites) + 1 >= len(self._sites):
            return self._skip("fail_site")  # never crash the last site
        orphans = sorted(m for m, s in self._attachment.items() if s == site)
        self._failed_sites.add(site)
        report = self._finish("fail_site", self._crash_site(site, orphans))
        for member in orphans:
            del self._attachment[member]
        return report

    def fail_internal(self, site: str, tier: int) -> ChangeReport:
        """Crash the tier-``tier`` ancestor of capture site ``site``.

        Only protocols with an internal hierarchy (RGB's ring tiers, the
        tree's interior servers) can express this; the flat ring and gossip
        have no such node, so the base implementation *skips* — counted in
        the totals, never silently dropped — and the crash reaches those
        protocols only through the tier-1 (AP-level) events of the same
        fault script.
        """
        return self._skip("fail_internal")

    # -- adversarial message replay ------------------------------------------

    def inject_duplicate(self, member: str) -> ChangeReport:
        """Re-deliver the most recent propagated message about ``member``."""
        record = self._last_op.get(member)
        if record is None:
            return self._skip("inject_duplicate")
        site, join = record
        return self._finish(
            "inject_duplicate", self._replay_message(site, member, join, stale=False)
        )

    def inject_stale(self, member: str) -> ChangeReport:
        """Re-deliver the *first* propagated message about ``member``.

        For a member that has since departed this is its original join
        arriving late — the resurrection hazard the RGB kernel's sequence
        watermark absorbs and the toy baselines do not.
        """
        record = self._first_op.get(member)
        if record is None:
            return self._skip("inject_stale")
        site, join = record
        return self._finish(
            "inject_stale", self._replay_message(site, member, join, stale=True)
        )

    def _replay_message(
        self, site: str, member: str, join: bool, stale: bool
    ) -> Tuple[int, int, int, int]:
        """Deliver a replayed message, bypassing the workload gating.

        A replayed message is wire traffic, not a workload event: it must not
        touch the attachment bookkeeping, and it deliberately skips the
        duplicate/departed gating — that gating models the *capture* path,
        while a replay arrives on the *propagation* path.  The toy adapters
        re-run their propagation primitive (``_one``), which is exactly why a
        stale join of a departed member resurrects it in every toy; the RGB
        adapter overrides this to inject at the harness dispatch seam, where
        the kernel's watermark drops the replayed operation.
        """
        if site in self._failed_sites:
            site = self._survivor_site()
        return self._one(site, member, join)  # type: ignore[attr-defined]

    def _record_op(self, member: str, site: str, join: bool) -> None:
        self._first_op.setdefault(member, (site, join))
        self._last_op[member] = (site, join)

    # -- converge-check ------------------------------------------------------

    def members(self) -> Set[str]:
        """The agreed membership, read at the first operational site."""
        raise NotImplementedError

    def global_agreement(self) -> bool:
        """Every operational site holds the same membership view."""
        raise NotImplementedError

    # -- propagation hooks (cost tuples: hops, messages, rounds, retrans) ----

    def _propagate_join(self, site: str, member: str) -> Tuple[int, int, int, int]:
        raise NotImplementedError

    def _propagate_leave(self, site: str, member: str) -> Tuple[int, int, int, int]:
        raise NotImplementedError

    def _propagate_handoff(
        self, member: str, from_site: str, to_site: str
    ) -> Tuple[int, int, int, int]:
        raise NotImplementedError

    def _crash_site(self, site: str, orphans: List[str]) -> Tuple[int, int, int, int]:
        raise NotImplementedError

    # -- bookkeeping ---------------------------------------------------------

    def _skip(self, kind: str) -> ChangeReport:
        report = ChangeReport(protocol=self.name, kind=kind, applied=False)
        self.totals.add(report)
        return report

    def _finish(self, kind: str, cost: Tuple[int, int, int, int]) -> ChangeReport:
        hops, messages, rounds, retrans = cost
        report = ChangeReport(
            protocol=self.name,
            kind=kind,
            hops=hops,
            messages=messages,
            rounds=rounds,
            retransmissions=retrans,
        )
        self.totals.add(report)
        return report

    def _survivor_site(self) -> str:
        for site in self._sites:
            if site not in self._failed_sites:
                return site
        raise RuntimeError(f"{self.name}: no operational site left")


class FlatRingProtocol(BaseProtocolDriver):
    """All access proxies in one Totem-style token ring."""

    name = "flat_ring"

    def __init__(
        self, num_sites: int, loss: float = 0.0, seed: int = 0, token_retry_limit: int = 2
    ) -> None:
        sites = [f"site-{i:05d}" for i in range(num_sites)]
        super().__init__(sites)
        self.ring = FlatRingMembership(
            sites, token_retry_limit=token_retry_limit, loss=loss, seed=seed
        )

    def _one(self, site: str, member: str, join: bool) -> Tuple[int, int, int, int]:
        report = self.ring.propagate_change(site, member, join=join)
        return report.hops, report.messages, 1, report.retransmissions

    def _propagate_join(self, site, member):
        return self._one(site, member, True)

    def _propagate_leave(self, site, member):
        return self._one(site, member, False)

    def _propagate_handoff(self, member, from_site, to_site):
        # The member set does not change, but the new location must still be
        # disseminated to every proxy: one full revolution.
        return self._one(to_site, member, True)

    def _crash_site(self, site, orphans):
        self.ring.fail_proxy(site)
        hops = messages = rounds = retrans = 0
        origin = self._survivor_site()
        for member in orphans:
            h, m, r, x = self._one(origin, member, False)
            hops, messages, rounds, retrans = hops + h, messages + m, rounds + r, retrans + x
        return hops, messages, rounds, retrans

    def members(self) -> Set[str]:
        return self.ring.membership_at(self._survivor_site())

    def global_agreement(self) -> bool:
        return self.ring.global_agreement()


class GossipProtocol(BaseProtocolDriver):
    """SWIM-style push gossip over the same proxy population."""

    name = "gossip"

    def __init__(
        self,
        num_sites: int,
        loss: float = 0.0,
        seed: int = 0,
        fanout: int = 2,
        max_rounds: int = 200,
    ) -> None:
        sites = [f"site-{i:05d}" for i in range(num_sites)]
        super().__init__(sites)
        self.gossip = GossipMembership(
            sites, fanout=fanout, seed=seed, max_rounds=max_rounds, loss=loss
        )

    def _one(self, site: str, member: str, join: bool) -> Tuple[int, int, int, int]:
        report = self.gossip.propagate_change(site, member, join=join)
        return 0, report.messages, report.rounds, report.wasted_messages

    def _propagate_join(self, site, member):
        return self._one(site, member, True)

    def _propagate_leave(self, site, member):
        return self._one(site, member, False)

    def _propagate_handoff(self, member, from_site, to_site):
        return self._one(to_site, member, True)

    def _crash_site(self, site, orphans):
        self.gossip.fail_proxy(site)
        hops = messages = rounds = retrans = 0
        origin = self._survivor_site()
        for member in orphans:
            h, m, r, x = self._one(origin, member, False)
            hops, messages, rounds, retrans = hops + h, messages + m, rounds + r, retrans + x
        return hops, messages, rounds, retrans

    def members(self) -> Set[str]:
        return self.gossip.membership_at(self._survivor_site())

    def global_agreement(self) -> bool:
        return self.gossip.global_agreement()


class TreeProtocol(BaseProtocolDriver):
    """CONGRESS-style tree of membership servers (with representatives)."""

    name = "tree"

    def __init__(
        self,
        num_sites: int,
        loss: float = 0.0,
        seed: int = 0,
        with_representatives: bool = True,
    ) -> None:
        branching, height = tree_shape_for_leaves(num_sites)
        self.tree = TreeHierarchy.regular(
            height=height, branching=branching, with_representatives=with_representatives
        )
        leaves = [leaf.node_id for leaf in self.tree.leaves()]
        super().__init__(leaves)
        self.protocol = TreeMembershipProtocol(self.tree, loss=loss, seed=seed)

    def _one(self, site: str, member: str, join: bool) -> Tuple[int, int, int, int]:
        report = self.protocol.propagate_change(site, member, join=join)
        return report.physical_hops, report.messages, 1, report.retransmissions

    def _propagate_join(self, site, member):
        return self._one(site, member, True)

    def _propagate_leave(self, site, member):
        return self._one(site, member, False)

    def _propagate_handoff(self, member, from_site, to_site):
        return self._one(to_site, member, True)

    def _crash_site(self, site, orphans):
        self.protocol.fail_server(self.tree.nodes[site].server)
        hops = messages = rounds = retrans = 0
        origin = self._survivor_site()
        for member in orphans:
            h, m, r, x = self._one(origin, member, False)
            hops, messages, rounds, retrans = hops + h, messages + m, rounds + r, retrans + x
        return hops, messages, rounds, retrans

    def fail_internal(self, site: str, tier: int) -> ChangeReport:
        """Crash the interior server ``tier - 1`` levels above leaf ``site``.

        With representatives the interior node is *played by* a descendant
        leaf's physical server, so that leaf (and any other leaf on the same
        server) dies with it; its orphans are failure-propagated from a
        survivor.  Propagation then stalls below the dead interior server —
        the subtree keeps stale views and ``global_agreement`` goes false,
        the tree-hierarchy weakness the paper's Section 5.2 exploits.
        """
        if site not in self._sites or site in self._failed_sites:
            return self._skip("fail_internal")
        chain = self.tree.path_to_root(site)
        if tier < 2 or tier - 2 >= len(chain):
            return self._skip("fail_internal")
        server = self.tree.nodes[chain[tier - 2]].server
        if server in self.protocol._failed_servers:
            return self._skip("fail_internal")
        victims = {
            leaf.node_id
            for leaf in self.tree.leaves()
            if leaf.server == server and leaf.node_id not in self._failed_sites
        }
        if len(self._failed_sites) + len(victims) >= len(self._sites):
            return self._skip("fail_internal")  # never kill the last site
        self.protocol.fail_server(server)
        orphans = sorted(m for m, s in self._attachment.items() if s in victims)
        self._failed_sites.update(victims)
        hops = messages = rounds = retrans = 0
        origin = self._survivor_site()
        for member in orphans:
            h, m, r, x = self._one(origin, member, False)
            hops, messages, rounds, retrans = hops + h, messages + m, rounds + r, retrans + x
        for member in orphans:
            del self._attachment[member]
        return self._finish("fail_internal", (hops, messages, rounds, retrans))

    def _survivor_site(self) -> str:
        failed_servers = self.protocol._failed_servers
        for site in self._sites:
            if site not in self._failed_sites and self.tree.nodes[site].server not in failed_servers:
                return site
        raise RuntimeError("tree: no operational leaf left")

    def members(self) -> Set[str]:
        return self.protocol.membership_at(self.tree.nodes[self._survivor_site()].server)

    def global_agreement(self) -> bool:
        return self.protocol.global_agreement()


class RGBRingProtocol(BaseProtocolDriver):
    """The RGB kernel behind the driver seam, via the event-driven harness.

    Every change is captured at its simulated time and the engine runs to
    quiescence before the next one, so per-change costs are well-defined;
    they are measured as deltas of the kernel/transport counters
    (``hops.token`` + ``hops.notify`` for the paper's HopCount,
    ``transport.sent`` for on-the-wire messages, ``rounds.completed`` for
    token rounds).
    """

    name = "rgb"

    def __init__(self, num_sites: int, loss: float = 0.0, seed: int = 0) -> None:
        # Imported lazily so `import repro.baselines` does not require the
        # full sim stack at module-import time for the toy baselines.
        from repro.sim.harness import HarnessConfig, ScenarioHarness

        ring_size, height = ring_shape_for_proxies(num_sites)
        # record_sends lets the replay-injection scenarios re-deliver real
        # dispatched messages; recording alone never changes behaviour.
        self.harness = ScenarioHarness(
            HarnessConfig(
                ring_size=ring_size, height=height, seed=seed, loss=loss, record_sends=True
            )
        )
        super().__init__(self.harness.access_proxies())

    # -- counter-delta plumbing ---------------------------------------------

    def _snapshot(self) -> Dict[str, int]:
        return self.harness.counter_values()

    def _delta(self, before: Dict[str, int]) -> Tuple[int, int, int, int]:
        after = self.harness.counter_values()

        def diff(name: str) -> int:
            return after.get(name, 0) - before.get(name, 0)

        hops = diff("hops.token") + diff("hops.notify")
        messages = diff("transport.sent")
        rounds = diff("rounds.completed")
        retrans = diff("transport.retransmissions") + diff("harness.notify_resends")
        return hops, messages, rounds, retrans

    def _drive(self, schedule) -> Tuple[int, int, int, int]:
        before = self._snapshot()
        schedule(self.harness.engine.now)
        self.harness.run()
        return self._delta(before)

    # -- propagation hooks ---------------------------------------------------

    def _propagate_join(self, site, member):
        return self._drive(lambda now: self.harness.schedule_join(now, site, guid=member))

    def _propagate_leave(self, site, member):
        return self._drive(lambda now: self.harness.schedule_leave(now, member))

    def _propagate_handoff(self, member, from_site, to_site):
        return self._drive(lambda now: self.harness.schedule_handoff(now, member, to_site))

    def _crash_site(self, site, orphans):
        # The kernel's own repair discovers the crash, excises the entity and
        # failure-propagates the members attached there — no synthetic leaves.
        return self._drive(lambda now: self.harness.schedule_crash(now, site))

    def fail_internal(self, site: str, tier: int) -> ChangeReport:
        """Crash the tier-``tier`` ring ancestor of access proxy ``site``.

        The interior entity is a first-class ring member here, so the crash
        goes through the same fault injector as an AP crash and the kernel's
        repair surgery excises it, failure-propagates the members aggregated
        beneath it and re-attaches the orphaned subtree.
        """
        if site not in self._sites:
            return self._skip("fail_internal")
        chain = self.harness.hierarchy.ancestry(site)
        if tier < 2 or tier - 2 >= len(chain):
            return self._skip("fail_internal")
        node = chain[tier - 2]
        if node in self.harness.kernel.failed:
            return self._skip("fail_internal")
        return self._finish(
            "fail_internal",
            self._drive(lambda now: self.harness.schedule_crash(now, str(node))),
        )

    def _replay_message(self, site, member, join, stale):
        # Injected at the dispatch seam: the harness re-transmits the
        # recorded notification and the kernel's sequence watermark decides.
        kind = "stale" if stale else "duplicate"
        return self._drive(
            lambda now: self.harness.schedule_injection(now, kind, member)
        )

    def members(self) -> Set[str]:
        return set(self.harness.global_guids())

    def global_agreement(self) -> bool:
        return self.harness.converged() and self.harness.ring_agreement()


_BUILDERS = {
    "rgb": RGBRingProtocol,
    "flat_ring": FlatRingProtocol,
    "gossip": GossipProtocol,
    "tree": TreeProtocol,
}


def build_protocol(
    name: str, num_proxies: int, loss: float = 0.0, seed: int = 0, **kwargs
) -> BaseProtocolDriver:
    """Build the named protocol driver over ``num_proxies`` capture sites."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(f"unknown protocol {name!r} (have {PROTOCOL_NAMES})") from None
    return builder(num_proxies, loss=loss, seed=seed, **kwargs)
