"""One-round membership propagation over the tree-based hierarchy.

This is the Moshe/Keidar-style baseline the paper's Section 5.1 measures: a
membership change captured at a leaf server (LMS) is sent up the tree to the
root and disseminated down to every server, so that after one round every
server agrees on the new membership.  The hop count of that dissemination —
one message per logical tree edge, minus the transfers that are free because
both endpoints are played by the same physical representative server — is the
quantity formulas (1)–(4) model.

The measured count with the left-most-descendant representative assignment is
slightly *smaller* than the paper's formula (4): the paper only credits the
representative chains rooted at each interior node once, whereas a real
deployment saves every same-server edge.  The benchmark reports both numbers;
the comparison shape (tree ≲ ring, within ~25%) is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.baselines.tree_hierarchy import TreeHierarchy, TreeNode


@dataclass
class TreePropagationReport:
    """Hop accounting for one membership change propagated over the tree."""

    origin_leaf: str
    logical_hops: int
    physical_hops: int
    servers_reached: int

    @property
    def representative_savings(self) -> int:
        return self.logical_hops - self.physical_hops


class TreeMembershipProtocol:
    """Membership maintenance over a :class:`TreeHierarchy`.

    Every physical server keeps a set of member identifiers; a change is
    propagated with the one-round scheme (up to the root, down to every leaf)
    and the per-change hop counts are recorded.
    """

    def __init__(self, tree: TreeHierarchy) -> None:
        self.tree = tree
        self.views: Dict[str, Set[str]] = {server: set() for server in tree.physical_servers()}
        self.reports: List[TreePropagationReport] = []
        self._failed_servers: Set[str] = set()

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def fail_server(self, server: str) -> None:
        if server not in self.views:
            raise KeyError(f"unknown server {server!r}")
        self._failed_servers.add(server)

    def operational_servers(self) -> List[str]:
        return [s for s in self.views if s not in self._failed_servers]

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------

    def _apply(self, server: str, member: str, join: bool) -> None:
        if server in self._failed_servers:
            return
        if join:
            self.views[server].add(member)
        else:
            self.views[server].discard(member)

    def propagate_change(self, leaf_id: str, member: str, join: bool = True) -> TreePropagationReport:
        """Propagate one membership change from ``leaf_id`` to every server.

        The proposal travels up the tree to the root and is then disseminated
        down every branch that did not already see it, so each logical tree
        edge is crossed exactly once and the logical hop count per change
        equals the tree's edge count — the quantity formula (1) models.
        Edges whose endpoints are played by the same physical server cost no
        physical hop, which is the representative effect of formulas (2)–(4).
        """
        node = self.tree.nodes.get(leaf_id)
        if node is None or not node.is_leaf:
            raise KeyError(f"{leaf_id!r} is not a leaf of the tree")
        logical_hops = 0
        physical_hops = 0
        reached: Set[str] = set()

        self._apply(node.server, member, join)
        reached.add(node.server)

        # Up the tree: leaf -> ... -> root.
        upward_edges: Set[tuple] = set()
        current = node
        while current.parent is not None:
            parent = self.tree.nodes[current.parent]
            upward_edges.add((parent.node_id, current.node_id))
            logical_hops += 1
            if parent.server != current.server:
                physical_hops += 1
            self._apply(parent.server, member, join)
            reached.add(parent.server)
            current = parent

        # Down the tree from the root over every edge not already walked upward.
        stack = [self.tree.root]
        while stack:
            tree_node = stack.pop()
            for child_id in tree_node.children:
                child = self.tree.nodes[child_id]
                stack.append(child)
                if (tree_node.node_id, child_id) in upward_edges:
                    continue
                logical_hops += 1
                if child.server != tree_node.server:
                    physical_hops += 1
                self._apply(child.server, member, join)
                reached.add(child.server)

        report = TreePropagationReport(
            origin_leaf=leaf_id,
            logical_hops=logical_hops,
            physical_hops=physical_hops,
            servers_reached=len(reached),
        )
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def join(self, leaf_id: str, member: str) -> TreePropagationReport:
        return self.propagate_change(leaf_id, member, join=True)

    def leave(self, leaf_id: str, member: str) -> TreePropagationReport:
        return self.propagate_change(leaf_id, member, join=False)

    def membership_at(self, server: str) -> Set[str]:
        return set(self.views[server])

    def global_agreement(self) -> bool:
        """All operational servers hold identical views."""
        views = [frozenset(self.views[s]) for s in self.operational_servers()]
        return len(set(views)) <= 1

    def average_logical_hops(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.logical_hops for r in self.reports) / len(self.reports)

    def average_physical_hops(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.physical_hops for r in self.reports) / len(self.reports)
