"""One-round membership propagation over the tree-based hierarchy.

This is the Moshe/Keidar-style baseline the paper's Section 5.1 measures: a
membership change captured at a leaf server (LMS) is sent up the tree to the
root and disseminated down to every server, so that after one round every
server agrees on the new membership.  The hop count of that dissemination —
one message per logical tree edge, minus the transfers that are free because
both endpoints are played by the same physical representative server — is the
quantity formulas (1)–(4) model.

The measured count with the left-most-descendant representative assignment is
slightly *smaller* than the paper's formula (4): the paper only credits the
representative chains rooted at each interior node once, whereas a real
deployment saves every same-server edge.  The benchmark reports both numbers;
the comparison shape (tree ≲ ring, within ~25%) is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.baselines.tree_hierarchy import TreeHierarchy, TreeNode
from repro.sim.rng import RandomStreams


@dataclass
class TreePropagationReport:
    """Hop accounting for one membership change propagated over the tree."""

    origin_leaf: str
    logical_hops: int
    physical_hops: int
    servers_reached: int
    retransmissions: int = 0

    @property
    def representative_savings(self) -> int:
        return self.logical_hops - self.physical_hops

    @property
    def messages(self) -> int:
        """Total transmissions on the wire: delivered hops + lost sends."""
        return self.physical_hops + self.retransmissions


class TreeMembershipProtocol:
    """Membership maintenance over a :class:`TreeHierarchy`.

    Every physical server keeps a set of member identifiers; a change is
    propagated with the one-round scheme (up to the root, down to every leaf)
    and the per-change hop counts are recorded.

    With a nonzero per-link ``loss``, every physical hop is retried until it
    lands (the tree links are reliable-FIFO in the CONGRESS model); each lost
    transmission counts one retransmission, so the ablation benchmark compares
    honest on-the-wire message costs across protocols.
    """

    def __init__(self, tree: TreeHierarchy, loss: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {loss}")
        self.tree = tree
        self.loss = loss
        self._rng = RandomStreams(seed).stream("tree.loss")
        self.views: Dict[str, Set[str]] = {server: set() for server in tree.physical_servers()}
        self.reports: List[TreePropagationReport] = []
        self._failed_servers: Set[str] = set()

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def fail_server(self, server: str) -> None:
        if server not in self.views:
            raise KeyError(f"unknown server {server!r}")
        self._failed_servers.add(server)

    def operational_servers(self) -> List[str]:
        return [s for s in self.views if s not in self._failed_servers]

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------

    def _apply(self, server: str, member: str, join: bool) -> None:
        if server in self._failed_servers:
            return
        if join:
            self.views[server].add(member)
        else:
            self.views[server].discard(member)

    def propagate_change(self, leaf_id: str, member: str, join: bool = True) -> TreePropagationReport:
        """Propagate one membership change from ``leaf_id`` to every server.

        The proposal travels up the tree towards the root and is then
        disseminated down every branch that did not already see it, so in the
        fault-free case each logical tree edge is crossed exactly once and
        the logical hop count per change equals the tree's edge count — the
        quantity formula (1) models.  Edges whose endpoints are played by the
        same physical server cost no physical hop, which is the
        representative effect of formulas (2)–(4).

        Propagation is connectivity-aware: a transmission towards a crashed
        server is attempted once (charged as a retransmission, never a hop)
        and the edge is *not* crossed — the upward walk stalls below the dead
        ancestor and dissemination proceeds from the highest ancestor
        actually reached, and subtrees behind a dead interior server stay
        unreached.  A crashed representative therefore partitions the
        service and breaks :meth:`global_agreement`, which is exactly the
        tree-hierarchy weakness the paper's Section 5.2 exploits.
        """
        node = self.tree.nodes.get(leaf_id)
        if node is None or not node.is_leaf:
            raise KeyError(f"{leaf_id!r} is not a leaf of the tree")
        if node.server in self._failed_servers:
            raise ValueError(f"origin leaf {leaf_id!r} runs on a failed server")
        failed = self._failed_servers
        logical_hops = 0
        physical_hops = 0
        retransmissions = 0
        reached: Set[str] = set()

        def physical_hop() -> int:
            """One delivered physical hop, plus any loss-driven resends."""
            retries = 0
            if self.loss > 0.0:
                while float(self._rng.random()) < self.loss:
                    retries += 1
            return retries

        self._apply(node.server, member, join)
        reached.add(node.server)

        # Up the tree: leaf -> ... -> root, stalling below a dead ancestor.
        # (A node we reached is alive, so a same-server parent is alive too.)
        upward_edges: Set[tuple] = set()
        current = node
        while current.parent is not None:
            parent = self.tree.nodes[current.parent]
            logical_hops += 1
            if parent.server != current.server:
                if parent.server in failed:
                    retransmissions += 1  # attempted, never delivered
                    break
                physical_hops += 1
                retransmissions += physical_hop()
            upward_edges.add((parent.node_id, current.node_id))
            self._apply(parent.server, member, join)
            reached.add(parent.server)
            current = parent

        # Down the tree from the highest reached ancestor, over every edge not
        # already walked upward; branches behind a dead server stay unreached.
        stack = [current]
        while stack:
            tree_node = stack.pop()
            for child_id in tree_node.children:
                child = self.tree.nodes[child_id]
                if (tree_node.node_id, child_id) in upward_edges:
                    stack.append(child)
                    continue
                logical_hops += 1
                if child.server != tree_node.server:
                    if child.server in failed:
                        retransmissions += 1  # attempted, never delivered
                        continue
                    physical_hops += 1
                    retransmissions += physical_hop()
                self._apply(child.server, member, join)
                reached.add(child.server)
                stack.append(child)

        report = TreePropagationReport(
            origin_leaf=leaf_id,
            logical_hops=logical_hops,
            physical_hops=physical_hops,
            servers_reached=len(reached),
            retransmissions=retransmissions,
        )
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def join(self, leaf_id: str, member: str) -> TreePropagationReport:
        return self.propagate_change(leaf_id, member, join=True)

    def leave(self, leaf_id: str, member: str) -> TreePropagationReport:
        return self.propagate_change(leaf_id, member, join=False)

    def membership_at(self, server: str) -> Set[str]:
        return set(self.views[server])

    def global_agreement(self) -> bool:
        """All operational servers hold identical views."""
        views = [frozenset(self.views[s]) for s in self.operational_servers()]
        return len(set(views)) <= 1

    def average_logical_hops(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.logical_hops for r in self.reports) / len(self.reports)

    def average_physical_hops(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.physical_hops for r in self.reports) / len(self.reports)
