"""SWIM-style gossip membership (modern comparator, used in ablations).

RGB predates the gossip/SWIM family that later displaced ring- and tree-based
membership services.  To put the reproduction's numbers in context, this
baseline implements a round-based anti-entropy gossip protocol over the same
access-proxy population:

* every round, each operational proxy picks ``fanout`` random peers and sends
  them its full membership digest (a push round);
* a membership change therefore reaches the whole group in roughly
  ``log_fanout(n)`` rounds with ``n * fanout`` messages per round;
* failures are detected probabilistically by missed acknowledgements (modelled
  here as the faulty proxy simply never responding or gossiping).

The ablation benchmark compares convergence rounds and message counts against
RGB's deterministic one-round-per-ring propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.sim.rng import RandomStreams


@dataclass
class GossipReport:
    """Outcome of propagating one change until the group converges."""

    member: str
    rounds: int
    messages: int
    converged: bool
    infected_per_round: List[int] = field(default_factory=list)


class GossipMembership:
    """Push-gossip membership over a set of access proxies."""

    def __init__(
        self,
        proxies: Sequence[str],
        fanout: int = 2,
        seed: int = 0,
        max_rounds: int = 200,
    ) -> None:
        if not proxies:
            raise ValueError("gossip needs at least one access proxy")
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        self.proxies = list(proxies)
        self.fanout = fanout
        self.max_rounds = max_rounds
        self.views: Dict[str, Set[str]] = {p: set() for p in self.proxies}
        self._failed: Set[str] = set()
        self._rng = RandomStreams(seed).stream("gossip")
        self.reports: List[GossipReport] = []

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def fail_proxy(self, proxy: str) -> None:
        if proxy not in self.views:
            raise KeyError(f"unknown access proxy {proxy!r}")
        self._failed.add(proxy)

    def operational(self) -> List[str]:
        return [p for p in self.proxies if p not in self._failed]

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------

    def propagate_change(self, origin: str, member: str, join: bool = True) -> GossipReport:
        """Gossip one change from ``origin`` until every operational proxy has it."""
        if origin not in self.views:
            raise KeyError(f"unknown access proxy {origin!r}")
        if origin in self._failed:
            raise ValueError(f"origin {origin!r} has failed")
        operational = self.operational()
        infected: Set[str] = {origin}
        self._apply(origin, member, join)
        messages = 0
        rounds = 0
        infected_per_round: List[int] = [1]

        while rounds < self.max_rounds and len(infected) < len(operational):
            rounds += 1
            newly_infected: Set[str] = set()
            for proxy in sorted(infected):
                peers = [p for p in operational if p != proxy]
                if not peers:
                    continue
                k = min(self.fanout, len(peers))
                chosen = self._rng.choice(len(peers), size=k, replace=False)
                for idx in chosen:
                    peer = peers[int(idx)]
                    messages += 1
                    if peer not in infected:
                        newly_infected.add(peer)
                        self._apply(peer, member, join)
            infected |= newly_infected
            infected_per_round.append(len(infected))

        report = GossipReport(
            member=member,
            rounds=rounds,
            messages=messages,
            converged=len(infected) >= len(operational),
            infected_per_round=infected_per_round,
        )
        self.reports.append(report)
        return report

    def _apply(self, proxy: str, member: str, join: bool) -> None:
        if join:
            self.views[proxy].add(member)
        else:
            self.views[proxy].discard(member)

    def join(self, origin: str, member: str) -> GossipReport:
        return self.propagate_change(origin, member, join=True)

    def leave(self, origin: str, member: str) -> GossipReport:
        return self.propagate_change(origin, member, join=False)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def membership_at(self, proxy: str) -> Set[str]:
        return set(self.views[proxy])

    def global_agreement(self) -> bool:
        views = [frozenset(self.views[p]) for p in self.operational()]
        return len(set(views)) <= 1

    def average_messages(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.messages for r in self.reports) / len(self.reports)

    def average_rounds(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.rounds for r in self.reports) / len(self.reports)
