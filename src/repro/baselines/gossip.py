"""SWIM-style gossip membership (modern comparator, used in ablations).

RGB predates the gossip/SWIM family that later displaced ring- and tree-based
membership services.  To put the reproduction's numbers in context, this
baseline implements a round-based anti-entropy gossip protocol over the same
access-proxy population:

* every round, each infected operational proxy picks ``fanout`` random peers
  **from the whole population** and sends them its membership digest (a push
  round).  Gossip has no global failure oracle: a sender cannot know a peer
  is dead before probing it, so sends towards failed proxies happen, cost a
  message, and are wasted — the seed implementation silently excluded failed
  proxies from peer selection, which under-counted gossip's message cost
  under failures (``GossipReport.wasted_messages`` makes that cost explicit);
* with per-message ``loss``, a push towards a live peer may be dropped (also
  counted as a wasted message); gossip needs no retransmission because later
  rounds re-push naturally — loss stretches convergence instead;
* a membership change therefore reaches the whole group in roughly
  ``log_fanout(n)`` rounds with up to ``infected * fanout`` messages per
  round.

Peer selection is vectorised per round (one draw for every infected sender at
once) so ablation cells at 10k+ proxies stay fast; per-seed determinism is
preserved through the ``"gossip"`` random stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.sim.rng import RandomStreams


@dataclass
class GossipReport:
    """Outcome of propagating one change until the group converges."""

    member: str
    rounds: int
    messages: int
    converged: bool
    wasted_messages: int = 0
    infected_per_round: List[int] = field(default_factory=list)

    @property
    def delivered_messages(self) -> int:
        return self.messages - self.wasted_messages


class GossipMembership:
    """Push-gossip membership over a set of access proxies."""

    def __init__(
        self,
        proxies: Sequence[str],
        fanout: int = 2,
        seed: int = 0,
        max_rounds: int = 200,
        loss: float = 0.0,
    ) -> None:
        if not proxies:
            raise ValueError("gossip needs at least one access proxy")
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {loss}")
        self.proxies = list(proxies)
        self.fanout = fanout
        self.max_rounds = max_rounds
        self.loss = loss
        self.views: Dict[str, Set[str]] = {p: set() for p in self.proxies}
        self._index: Dict[str, int] = {p: i for i, p in enumerate(self.proxies)}
        self._failed: Set[str] = set()
        self._rng = RandomStreams(seed).stream("gossip")
        self.reports: List[GossipReport] = []

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def fail_proxy(self, proxy: str) -> None:
        if proxy not in self.views:
            raise KeyError(f"unknown access proxy {proxy!r}")
        self._failed.add(proxy)

    def operational(self) -> List[str]:
        return [p for p in self.proxies if p not in self._failed]

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------

    def propagate_change(self, origin: str, member: str, join: bool = True) -> GossipReport:
        """Gossip one change from ``origin`` until every operational proxy has it."""
        if origin not in self.views:
            raise KeyError(f"unknown access proxy {origin!r}")
        if origin in self._failed:
            raise ValueError(f"origin {origin!r} has failed")
        n = len(self.proxies)
        operational_count = len(self.operational())
        failed_idx = np.fromiter(
            (self._index[p] for p in self._failed), dtype=np.int64, count=len(self._failed)
        )
        infected: Set[int] = {self._index[origin]}
        self._apply(origin, member, join)
        messages = 0
        wasted = 0
        rounds = 0
        infected_per_round: List[int] = [1]

        while rounds < self.max_rounds and len(infected) < operational_count:
            rounds += 1
            senders = np.fromiter(sorted(infected), dtype=np.int64, count=len(infected))
            k = min(self.fanout, n - 1)
            if k < 1:
                break
            # One vectorised draw for every sender: k *distinct* peers uniform
            # over the whole population minus the sender itself (failed peers
            # are legitimate — and wasted — targets; nobody holds a failure
            # oracle).  Rows with duplicate targets are redrawn whole, which
            # is rejection sampling of a distinct k-tuple: uniform, and cheap
            # because the collision probability is ~k²/2n.
            targets = self._rng.integers(0, n - 1, size=(senders.size, k))
            if k > 1:
                while True:
                    ordered = np.sort(targets, axis=1)
                    dup_rows = (ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
                    if not dup_rows.any():
                        break
                    targets[dup_rows] = self._rng.integers(
                        0, n - 1, size=(int(dup_rows.sum()), k)
                    )
            targets = targets + (targets >= senders[:, None])
            messages += int(targets.size)
            delivered = targets.ravel()
            if self.loss > 0.0:
                kept = self._rng.random(delivered.size) >= self.loss
                wasted += int(delivered.size - int(kept.sum()))
                delivered = delivered[kept]
            if failed_idx.size:
                at_failed = np.isin(delivered, failed_idx)
                wasted += int(at_failed.sum())
                delivered = delivered[~at_failed]
            newly_infected: Set[int] = set()
            for idx in np.unique(delivered):
                idx = int(idx)
                if idx not in infected:
                    newly_infected.add(idx)
                    self._apply(self.proxies[idx], member, join)
            infected |= newly_infected
            infected_per_round.append(len(infected))

        report = GossipReport(
            member=member,
            rounds=rounds,
            messages=messages,
            converged=len(infected) >= operational_count,
            wasted_messages=wasted,
            infected_per_round=infected_per_round,
        )
        self.reports.append(report)
        return report

    def _apply(self, proxy: str, member: str, join: bool) -> None:
        if join:
            self.views[proxy].add(member)
        else:
            self.views[proxy].discard(member)

    def join(self, origin: str, member: str) -> GossipReport:
        return self.propagate_change(origin, member, join=True)

    def leave(self, origin: str, member: str) -> GossipReport:
        return self.propagate_change(origin, member, join=False)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def membership_at(self, proxy: str) -> Set[str]:
        return set(self.views[proxy])

    def global_agreement(self) -> bool:
        views = [frozenset(self.views[p]) for p in self.operational()]
        return len(set(views)) <= 1

    def average_messages(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.messages for r in self.reports) / len(self.reports)

    def average_rounds(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.rounds for r in self.reports) / len(self.reports)
