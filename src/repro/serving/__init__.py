"""Epoch-consistent membership serving layer.

The paper maintains membership (Section 4) in order to *answer queries*
(Section 4.4) — this package is the read side: a batched query engine that
serves TMS/BMS/IMS answers while churn rounds are in flight, built from

* :mod:`repro.serving.columnar_query` — fan-out routing derived by
  vectorised sweeps over the columnar store's structural columns, with the
  object hierarchy walk as the pinned fallback;
* :mod:`repro.serving.snapshots` — copy-on-write membership frames keyed on
  (topology epoch, ring versions, view versions), so a batch of queries
  reads one coherent frame with no torn reads mid-round;
* :mod:`repro.serving.frontend` — the batched submit/drain front-end with
  per-scheme routing and snapshot reuse across batches.
"""

from repro.serving.columnar_query import tier_leader_fanout, topmost_leader
from repro.serving.frontend import ServingFrontend
from repro.serving.snapshots import MembershipFrame, SnapshotCache

__all__ = [
    "MembershipFrame",
    "ServingFrontend",
    "SnapshotCache",
    "tier_leader_fanout",
    "topmost_leader",
]
