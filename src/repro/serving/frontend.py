"""Batched membership query front-end.

The serving API: callers :meth:`~ServingFrontend.submit` queries (scheme +
optional entry point) and :meth:`~ServingFrontend.drain` answers the whole
batch against **one** coherent membership frame per fan-out — acquired
through the :class:`~repro.serving.snapshots.SnapshotCache`, derived through
the columnar sweeps of :mod:`repro.serving.columnar_query`, and reused
across batches until a committed round actually changes the answer.

Answers are :class:`repro.core.query.QueryResult` records that match the
object path (:class:`~repro.core.query.MembershipQueryService`) bit for bit
— same member lists, same hop accounting, same contacted-entity order, same
intermediate-tier fallback — which is what lets the hypothesis suite pin
snapshot reads against stop-the-world object reads at the same epoch.

Wired to a :class:`~repro.sim.harness.ScenarioHarness` (via
``harness.serving_frontend()``), the frontend subscribes to round commits so
frame reuse between commits is a single integer compare; against a bare
engine it falls back to full version-key revalidation per acquire.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.core.identifiers import NodeId, coerce_node
from repro.core.query import MembershipScheme, QueryResult
from repro.serving.columnar_query import tier_leader_fanout, topmost_leader
from repro.serving.snapshots import MembershipFrame, SnapshotCache

__all__ = ["ServingFrontend"]


class ServingFrontend:
    """Epoch-consistent batched query service over a protocol engine.

    Parameters
    ----------
    engine:
        Anything exposing ``kernel`` and ``hierarchy`` (a
        :class:`ScenarioHarness` or :class:`OneRoundEngine`).  When it also
        exposes ``add_round_listener`` the frontend tracks round commits for
        the snapshot fast path.
    intermediate_tier:
        Default tier for IMS queries (same fallback rules as the object
        path when omitted).
    """

    def __init__(self, engine, intermediate_tier: Optional[int] = None) -> None:
        self.engine = engine
        self.kernel = engine.kernel
        self.hierarchy = engine.hierarchy
        self.intermediate_tier = intermediate_tier
        self.cache = SnapshotCache()
        self.default_entry = self.hierarchy.access_proxies()[0]
        self.queries = 0
        self.batches = 0
        self._pending: List[Tuple[MembershipScheme, NodeId]] = []
        self._generation: Optional[int] = None
        add_listener = getattr(engine, "add_round_listener", None)
        if add_listener is not None:
            self._generation = 0
            add_listener(self._on_round_commit)
        # Per-epoch routing caches (tiers list, entry tiers, fan-outs): all
        # of it is pure re-derivation until a repair bumps the epoch.
        self._routing_epoch: Optional[int] = None
        self._tiers: Optional[List[int]] = None
        self._entry_tiers: Dict[NodeId, int] = {}
        self._fanouts: Dict[int, object] = {}
        self._top: Optional[object] = None

    # -- round tracking -----------------------------------------------------

    def _on_round_commit(self, ring_id: str, now: float) -> None:
        # Any committed round may have changed views; frames validated
        # before this generation must re-check their version keys.
        self._generation += 1

    # -- routing (per topology epoch) ---------------------------------------

    def _epoch(self) -> int:
        epoch = getattr(self.kernel, "coverage_epoch", None)
        return -1 if epoch is None else epoch

    def _check_epoch(self) -> int:
        epoch = self._epoch()
        if epoch != self._routing_epoch:
            self._tiers = None
            self._entry_tiers.clear()
            self._fanouts.clear()
            self._top = None
            self._routing_epoch = epoch
        return epoch

    def _tiers_list(self) -> List[int]:
        if self._tiers is None:
            self._tiers = self.hierarchy.tiers()
        return self._tiers

    def _entry_tier(self, entry: NodeId) -> int:
        tier = self._entry_tiers.get(entry)
        if tier is None:
            tier = self.hierarchy.ring_of(entry).tier
            self._entry_tiers[entry] = tier
        return tier

    def _fanout_for(self, tier: int):
        fanout = self._fanouts.get(tier)
        if fanout is None:
            fanout = tier_leader_fanout(self.kernel, self.hierarchy, tier)
            self._fanouts[tier] = fanout
        return fanout

    def _top_fanout(self):
        if self._top is None:
            fanout = topmost_leader(self.kernel, self.hierarchy)
            if fanout is None:
                raise RuntimeError("topmost ring has no leader")
            self._top = fanout
        return self._top

    def _ims_tier(self) -> int:
        tiers = self._tiers_list()
        tier = self.intermediate_tier
        if len(tiers) < 3 and tier is None:
            tier = tiers[-1] if len(tiers) == 1 else tiers[-2]
        if tier is None:
            tier = tiers[len(tiers) // 2]
        if tier not in tiers:
            raise ValueError(f"tier {tier} does not exist in this hierarchy (tiers: {tiers})")
        return tier

    # -- frames -------------------------------------------------------------

    def _frame(self, slot: object, tier: int, epoch: int, resolve) -> MembershipFrame:
        return self.cache.acquire(slot, tier, epoch, self._generation, resolve)

    # -- the batched API ----------------------------------------------------

    def submit(self, scheme: MembershipScheme, entry_point: "NodeId | str | None" = None) -> None:
        """Queue one query for the next :meth:`drain`."""
        entry = self.default_entry if entry_point is None else coerce_node(entry_point)
        self._pending.append((scheme, entry))

    def drain(self, timings: Optional[List[float]] = None) -> List[QueryResult]:
        """Answer every pending query, in submit order, from coherent frames.

        ``timings`` (optional) receives one wall-clock duration per query;
        the query that triggers a frame capture pays for it, so tail
        latencies honestly include snapshot (re)builds.
        """
        pending, self._pending = self._pending, []
        results: List[QueryResult] = []
        for scheme, entry in pending:
            if timings is None:
                results.append(self._answer(scheme, entry))
            else:
                started = perf_counter()
                results.append(self._answer(scheme, entry))
                timings.append(perf_counter() - started)
        self.queries += len(pending)
        self.batches += 1
        return results

    def query(self, scheme: MembershipScheme, entry_point: "NodeId | str | None" = None) -> QueryResult:
        """One-off convenience: a batch of a single query."""
        self.submit(scheme, entry_point)
        return self.drain()[0]

    # -- per-scheme answers -------------------------------------------------

    def _answer(self, scheme: MembershipScheme, entry: NodeId) -> QueryResult:
        epoch = self._check_epoch()
        if scheme is MembershipScheme.TMS:
            return self._answer_topmost(entry, epoch)
        if scheme is MembershipScheme.BMS:
            tier = self.hierarchy.bottom_tier()
            return self._answer_fanout(scheme, tier, entry, epoch, up_bias=1)
        return self._answer_fanout(scheme, self._ims_tier(), entry, epoch, up_bias=0)

    def _answer_topmost(self, entry: NodeId, epoch: int) -> QueryResult:
        frame = self._frame("tms", -1, epoch, self._top_fanout)
        top_tier = frame.rings[0].tier
        hops = 2 * abs(top_tier - self._entry_tier(entry))
        return QueryResult(
            scheme=MembershipScheme.TMS,
            members=frame.members(),
            message_hops=hops if hops > 0 else 2,
            entities_contacted=list(frame.leaders),
            answered_by_tier=top_tier,
        )

    def _answer_fanout(
        self, scheme: MembershipScheme, tier: int, entry: NodeId, epoch: int, up_bias: int
    ) -> QueryResult:
        frame = self._frame(("tier", tier), tier, epoch, lambda: self._fanout_for(tier))
        # All fan-out targets sit in one tier, so the object path's
        # per-leader hop loop collapses to one multiply (BMS adds the extra
        # leader-to-local hop the paper charges: ``up_bias``).
        per_leader = 2 * max(1, abs(tier - self._entry_tier(entry)) + up_bias)
        return QueryResult(
            scheme=scheme,
            members=frame.members(),
            message_hops=per_leader * len(frame.leaders),
            entities_contacted=list(frame.leaders),
            answered_by_tier=tier,
        )

    # -- stats --------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Serving counters: query/batch totals and snapshot cache health."""
        out = {"queries": self.queries, "batches": self.batches}
        out.update(self.cache.stats())
        return out
