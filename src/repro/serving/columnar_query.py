"""Fan-out routing over the columnar store's structural columns.

The object query path (:mod:`repro.core.query`) derives a tier's fan-out
set by scanning the full rings dict, filtering by tier and sorting by ring
id — at 100k proxies that is a 10k-ring scan *per query*.  When the kernel
is columnar and no hierarchy surgery has happened, the same set falls out of
one vectorised sweep: ``ring_tier == tier`` selects the rings, the CSR
offsets plus ``ring_leader_pos`` turn into dense leader rows, and each
leader entity is gathered positionally (:meth:`ColumnarKernel.
tier_leader_views`).  Store order is hierarchy build order, which for the
regular builds every benchmark uses matches the object path's ring-id sort —
the gather re-sorts by ring id anyway, so the fan-out order (and therefore
the last-writer-wins merge result and hop accounting) is identical by
construction, not by coincidence.

Every helper returns the object-path derivation whenever the columns cannot
be trusted (object backend, ``structure_dirty`` after surgery, misaligned
entity rows) — the columnar sweep is an accelerator for the pinned
reference semantics, never a second source of truth.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.hierarchy import RingHierarchy
from repro.core.identifiers import NodeId
from repro.core.membership import MembershipView

__all__ = ["tier_leader_fanout", "topmost_leader"]

Fanout = Tuple[List[NodeId], List[object], List[MembershipView]]


def tier_leader_fanout(kernel, hierarchy: RingHierarchy, tier: int) -> Fanout:
    """(leaders, rings, views) of ``tier`` in the object path's fan-out order.

    Columnar sweep when the kernel supports it and its structural columns
    are clean; hierarchy walk otherwise.  Both produce the same triple.
    """
    gather = getattr(kernel, "tier_leader_views", None)
    if gather is not None:
        pairs = gather(tier)
        if pairs is not None:
            leaders: List[NodeId] = []
            rings: List[object] = []
            views: List[MembershipView] = []
            for ring, entity in pairs:
                leader = ring.leader
                if leader is None:
                    continue
                leaders.append(leader)
                rings.append(ring)
                views.append(entity.ring_members)
            return leaders, rings, views
    return _object_fanout(kernel, hierarchy, tier)


def _object_fanout(kernel, hierarchy: RingHierarchy, tier: int) -> Fanout:
    """The pinned reference derivation: rings_in_tier walk + entity probes."""
    leaders: List[NodeId] = []
    rings: List[object] = []
    views: List[MembershipView] = []
    entity = kernel.entity
    for ring in hierarchy.rings_in_tier(tier):
        leader = ring.leader
        if leader is None:
            continue
        leaders.append(leader)
        rings.append(ring)
        views.append(entity(leader).ring_members)
    return leaders, rings, views


def topmost_leader(kernel, hierarchy: RingHierarchy) -> Optional[Fanout]:
    """The TMS fan-out: the topmost ring's leader alone (None if leaderless)."""
    top_ring = hierarchy.topmost_ring()
    leader = top_ring.leader
    if leader is None:
        return None
    return [leader], [top_ring], [kernel.entity(leader).ring_members]
