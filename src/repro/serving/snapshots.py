"""Epoch-consistent read snapshots of membership state.

A query batch must read one coherent membership frame: the one-round
algorithm commits view changes ring by ring, so two queries answered a round
apart — or one BMS fan-out merging leader views captured on both sides of a
commit — would observe a membership that never existed (a torn read).

A :class:`MembershipFrame` is a copy-on-write capture of the merged leader
views for one fan-out set, keyed on everything that can change the answer:

* the kernel's **coverage epoch** — bumped by every hierarchy surgery or
  repair, so leader re-elections and ring excisions invalidate the frame
  (and the routing that produced it);
* the **ring versions** of the fan-out rings — belt-and-braces for
  structural change at ring granularity;
* the **view versions** of the leader membership views — the precise
  applied-operation high-water mark: any committed round that changed a
  leader's view bumps its version counter.

Frames are immutable after capture: the record map is copied out of the
leader views (records themselves are immutable), so later rounds mutate the
live views without disturbing results already served from the frame.

:class:`SnapshotCache` reuses frames across batches.  Revalidation is
two-speed: a round-commit **generation** counter (fed by the harness's
round listener) lets a batch that arrives before any new commit reuse the
frame with a single integer compare, and after a commit the full version
key is recomputed — a round that provably did not touch this fan-out's
views revalidates the frame instead of recapturing it.  Hit, revalidation,
invalidation, and capture counters are exposed for the serving stats.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.identifiers import NodeId
from repro.core.member import MemberInfo
from repro.core.membership import MembershipView

__all__ = ["MembershipFrame", "SnapshotCache"]

#: A fan-out resolution: (leader nodes, their rings, their membership views),
#: index-aligned, in the object query path's fan-out order.
Fanout = Tuple[List[NodeId], List[object], List[MembershipView]]


class MembershipFrame:
    """One coherent, immutable capture of a fan-out's merged membership."""

    __slots__ = (
        "tier",
        "leaders",
        "rings",
        "views",
        "epoch",
        "ring_versions",
        "view_versions",
        "generation",
        "records",
        "_members_sorted",
    )

    def __init__(self, tier: int, fanout: Fanout, epoch: int, generation: int) -> None:
        leaders, rings, views = fanout
        self.tier = tier
        self.leaders = leaders
        self.rings = rings
        self.views = views
        self.epoch = epoch
        self.ring_versions = tuple(ring.version for ring in rings)
        self.view_versions = tuple(view.version for view in views)
        self.generation = generation
        # The copy-on-write capture: one C-level dict.update per leader view,
        # in fan-out order — identical last-writer-wins semantics to the
        # object path's per-leader ``merge_from`` chain.  Values are
        # immutable records, so the shallow copy is a full isolation
        # boundary against later rounds.
        records: Dict[str, MemberInfo] = {}
        for view in views:
            records.update(view.raw_records())
        self.records = records
        self._members_sorted: Optional[List[MemberInfo]] = None

    def members(self) -> List[MemberInfo]:
        """Members sorted by GUID — the object path's answer order.

        Sorted once per frame and shared by every query answered from it;
        the per-query cost of a snapshot read is O(1) past the first.
        """
        if self._members_sorted is None:
            records = self.records
            self._members_sorted = [records[k] for k in sorted(records)]
        return self._members_sorted

    def __len__(self) -> int:
        return len(self.records)

    def is_current(self, epoch: int) -> bool:
        """Full key revalidation against the live rings and views."""
        if epoch != self.epoch:
            return False
        if self.ring_versions != tuple(ring.version for ring in self.rings):
            return False
        return self.view_versions == tuple(view.version for view in self.views)


class SnapshotCache:
    """Frame store with two-speed revalidation and serving counters."""

    __slots__ = ("_frames", "captures", "hits", "revalidations", "invalidations")

    def __init__(self) -> None:
        self._frames: Dict[object, MembershipFrame] = {}
        self.captures = 0
        self.hits = 0
        self.revalidations = 0
        self.invalidations = 0

    def acquire(
        self,
        slot: object,
        tier: int,
        epoch: int,
        generation: Optional[int],
        resolve: Callable[[], Fanout],
    ) -> MembershipFrame:
        """The frame for ``slot``, reused / revalidated / recaptured.

        ``generation`` is the frontend's round-commit counter (``None``
        disables the fast path when no round listener is wired): a frame
        whose generation matches was validated since the last commit and is
        reused with no version reads at all.  Otherwise the full version key
        is recomputed; a match revalidates the frame, a mismatch counts an
        invalidation and recaptures from a fresh fan-out resolution.
        """
        frame = self._frames.get(slot)
        if frame is not None:
            if generation is not None and frame.generation == generation:
                self.hits += 1
                return frame
            if frame.is_current(epoch):
                if generation is not None:
                    frame.generation = generation
                self.revalidations += 1
                return frame
            self.invalidations += 1
        frame = MembershipFrame(
            tier, resolve(), epoch, -1 if generation is None else generation
        )
        self.captures += 1
        self._frames[slot] = frame
        return frame

    def clear(self) -> None:
        self._frames.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "captures": self.captures,
            "hits": self.hits,
            "revalidations": self.revalidations,
            "invalidations": self.invalidations,
        }
