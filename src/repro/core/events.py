"""Membership change events delivered to applications.

Applications using the membership service observe a stream of
:class:`repro.core.membership.MembershipEvent` records.  This module holds the
event bus that protocol entities publish into and that examples/tests
subscribe to; the event/record types themselves live in
:mod:`repro.core.membership` next to the view they update.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.membership import MembershipEvent

MembershipListener = Callable[[MembershipEvent], None]


class MembershipEventBus:
    """Simple synchronous publish/subscribe bus for membership events."""

    def __init__(self) -> None:
        self._listeners: List[MembershipListener] = []
        self._history: List[MembershipEvent] = []

    def subscribe(self, listener: MembershipListener) -> Callable[[], None]:
        """Register ``listener``; returns an unsubscribe callable."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, event: MembershipEvent) -> None:
        """Record ``event`` and deliver it to every subscriber."""
        self._history.append(event)
        for listener in list(self._listeners):
            listener(event)

    @property
    def history(self) -> List[MembershipEvent]:
        """All events published so far, in publication order."""
        return list(self._history)

    def events_for(self, guid: str) -> List[MembershipEvent]:
        """Events about one member."""
        return [e for e in self._history if e.member is not None and str(e.member.guid) == guid]

    def clear(self) -> None:
        self._history.clear()
