"""Logical rings (paper Section 4.1).

A logical ring is an ordered cycle of network entities of the same tier.  The
ring knows its members in ring order, its leader and the tier it belongs to.
Local repair (Section 5.2: "any single node fault in a logical ring can be
detected quickly ... and be locally repaired by excluding the faulty node from
the ring") is a :meth:`LogicalRing.remove_member` that splices the previous
and next neighbours of the excluded node together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.core.identifiers import NodeId


class RingError(RuntimeError):
    """Raised for invalid ring operations (unknown member, empty ring, ...)."""


@dataclass(slots=True)
class LogicalRing:
    """An ordered ring of network entities.

    Parameters
    ----------
    ring_id:
        Unique identity of the ring within its hierarchy.
    tier:
        Tier index (larger is higher; the topmost ring of Figure 2 is the
        border-router tier).
    members:
        Initial members in ring order.  Token circulation follows this order:
        ``members[i]`` hands the token to ``members[(i+1) % len(members)]``.
    leader:
        The ring leader.  Defaults to the first member; the deterministic
        re-election rule after a leader fault is "smallest node id", which
        every surviving member can compute locally from its ring view.
    """

    ring_id: str
    tier: int
    members: List[NodeId] = field(default_factory=list)
    leader: Optional[NodeId] = None
    #: Mutation counter: lets callers (e.g. the kernel's per-round member
    #: set cache) cheaply detect that a ring changed shape.
    version: int = field(default=0, repr=False, compare=False)
    _index: Dict[NodeId, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Position index: member -> slot in circulation order.  Successor /
        # predecessor / members_from were O(ring) ``list.index`` scans per
        # token hop; the index makes them O(1) lookups, which matters both in
        # the kernel's round loop and for the large flat-ring baseline.
        self._reindex()
        if len(self._index) != len(self.members):
            raise RingError(f"ring {self.ring_id!r} has duplicate members")
        if self.members and self.leader is None:
            self.leader = self.members[0]
        if self.leader is not None and self.leader not in self._index:
            raise RingError(
                f"leader {self.leader} of ring {self.ring_id!r} is not a ring member"
            )

    def _reindex(self) -> None:
        # dict(zip(...)) runs the insert loop in C; the dict-comprehension
        # equivalent pays Python bytecode per member, which at a million
        # proxies (111k rings) is a measurable slice of hierarchy builds.
        self._index = dict(zip(self.members, range(len(self.members))))
        self.version += 1

    @classmethod
    def bulk(cls, ring_id: str, tier: int, members: List[NodeId]) -> "LogicalRing":
        """Trusted bulk constructor for builder-generated rings.

        Skips the constructor's duplicate/leader checks (the caller generates
        unique, sorted member ids) and defers the position index — it
        materialises through ``__getattr__`` on first successor/predecessor
        use, so a million-proxy build never pays for the 111k ring indexes it
        has not touched yet.  The leader is the first member, which for
        sorted ids equals deterministic minimal-id election.
        """
        self = object.__new__(cls)
        self.ring_id = ring_id
        self.tier = tier
        self.members = members
        self.leader = members[0] if members else None
        # Mirror the checked constructor's post-_reindex counter so cached
        # derivations (kernel ring-set cache) behave identically.
        self.version = 1
        return self

    def __getattr__(self, name: str):
        if name == "_index":
            # Deferred position index (see :meth:`bulk`): build without
            # bumping ``version`` — materialisation is not a mutation.
            index = dict(zip(self.members, range(len(self.members))))
            self._index = index
            return index
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __getstate__(self):
        # The position index is derived state: dropping it keeps topology
        # snapshots lean and lets every rehydrated ring defer it, exactly
        # like a freshly bulk-built one.
        return {
            "ring_id": self.ring_id,
            "tier": self.tier,
            "members": self.members,
            "leader": self.leader,
            "version": self.version,
        }

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # -- basic accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, node: object) -> bool:
        try:
            return node in self._index
        except TypeError:  # unhashable probe: fall back to the list semantics
            return node in self.members

    @property
    def is_empty(self) -> bool:
        return not self.members

    def members_in_order(self) -> List[NodeId]:
        """Members in token-circulation order starting from the stored order."""
        return list(self.members)

    def members_from(self, start: NodeId) -> List[NodeId]:
        """Members in circulation order beginning at ``start``."""
        idx = self._index_of(start)
        return self.members[idx:] + self.members[:idx]

    def _index_of(self, node: NodeId) -> int:
        idx = self._index.get(node)
        if idx is None:
            raise RingError(f"node {node} is not a member of ring {self.ring_id!r}")
        return idx

    def successor(self, node: NodeId) -> NodeId:
        """The next node after ``node`` in circulation order."""
        members = self.members
        if not members:
            raise RingError(f"ring {self.ring_id!r} is empty")
        idx = self._index_of(node) + 1
        return members[idx if idx < len(members) else 0]

    def predecessor(self, node: NodeId) -> NodeId:
        """The node before ``node`` in circulation order."""
        if not self.members:
            raise RingError(f"ring {self.ring_id!r} is empty")
        return self.members[self._index_of(node) - 1]

    # -- membership changes ---------------------------------------------------------

    def insert_member(self, node: NodeId, after: Optional[NodeId] = None) -> None:
        """Insert ``node`` into the ring (NE-Join).

        With ``after`` the node is spliced immediately after that member,
        which is what happens when a new access proxy joins the ring of a
        nearby proxy; otherwise it is appended at the end of the order.
        """
        if node in self._index:
            raise RingError(f"node {node} is already a member of ring {self.ring_id!r}")
        if after is None:
            self.members.append(node)
            self._index[node] = len(self.members) - 1
            self.version += 1
        else:
            idx = self._index_of(after)
            self.members.insert(idx + 1, node)
            self._reindex()
        if self.leader is None:
            self.leader = node

    def remove_member(self, node: NodeId) -> bool:
        """Exclude ``node`` from the ring (local repair / NE-Leave).

        Returns True when the removed node was the leader, in which case the
        caller must trigger leader re-election (:meth:`elect_leader`).
        """
        idx = self._index_of(node)
        was_leader = self.leader == node
        del self.members[idx]
        self._reindex()
        if was_leader:
            self.leader = None
        return was_leader

    def elect_leader(self) -> Optional[NodeId]:
        """Deterministic leader election: the smallest surviving node id."""
        if not self.members:
            self.leader = None
            return None
        self.leader = min(self.members, key=lambda n: n.value)
        return self.leader

    # -- health / structure -------------------------------------------------------------

    def edge_count(self) -> int:
        """Number of logical edges a full token round traverses.

        A ring of one node has zero edges (the token never leaves the node);
        otherwise a round crosses exactly ``len(members)`` edges.
        """
        return 0 if len(self.members) <= 1 else len(self.members)

    @staticmethod
    def _live_values(operational: Iterable["NodeId | str"]) -> set:
        return {n.value if isinstance(n, NodeId) else str(n) for n in operational}

    def functions_well(self, operational: Iterable["NodeId | str"]) -> bool:
        """Paper Section 5.2 ring-level Function-Well predicate.

        A ring functions well when at most one of its members is faulty —
        a single fault is detected by token retransmission and locally
        repaired; two or more simultaneous faults partition the ring.
        """
        live = self._live_values(operational)
        faulty = sum(1 for member in self.members if member.value not in live)
        return faulty <= 1

    def partition_count(self, operational: Iterable["NodeId | str"]) -> int:
        """Number of contiguous alive segments the ring splits into.

        With zero or one faulty member the ring stays one segment (one
        partition).  With ``k >= 2`` faulty members the alive members split
        into at most ``k`` contiguous arcs; empty arcs (adjacent faults) do
        not count.
        """
        live = self._live_values(operational)
        flags = [member.value in live for member in self.members]
        if not flags:
            return 0
        if all(flags):
            return 1
        if not any(flags):
            return 0
        faulty_count = sum(1 for f in flags if not f)
        if faulty_count == 1:
            return 1
        # Count alive segments in the circular order.
        segments = 0
        n = len(flags)
        for i in range(n):
            if flags[i] and not flags[(i - 1) % n]:
                segments += 1
        return segments

    def validate(self) -> None:
        """Internal consistency checks used by property tests."""
        if len(set(self.members)) != len(self.members):
            raise RingError(f"ring {self.ring_id!r} has duplicate members")
        if self.leader is not None and self.leader not in self.members:
            raise RingError(f"ring {self.ring_id!r} leader is not a member")
        if self._index != {node: i for i, node in enumerate(self.members)}:
            raise RingError(f"ring {self.ring_id!r} position index is out of sync")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"LogicalRing({self.ring_id!r}, tier={self.tier}, "
            f"size={len(self.members)}, leader={self.leader})"
        )
