"""RGB core: the paper's primary contribution.

The subpackage implements Section 4 of the paper:

* :mod:`repro.core.identifiers` / :mod:`repro.core.member` /
  :mod:`repro.core.entity` / :mod:`repro.core.token` /
  :mod:`repro.core.message_queue` — the data structures of mobile hosts,
  network entities and tokens (Section 4.2).
* :mod:`repro.core.ring` / :mod:`repro.core.hierarchy` — the ring-based
  hierarchy of access proxies, access gateways and border routers
  (Section 4.1, Figure 2).
* :mod:`repro.core.kernel` / :mod:`repro.core.deltas` — the unified,
  transport-agnostic token-round state machine (round orchestration,
  notification/acknowledgement routing, seen-set dedup) and the batched
  membership deltas it applies in a single pass.
* :mod:`repro.core.one_round` / :mod:`repro.core.protocol` — the two thin
  drivers of the kernel: deterministic structural stepping vs. message
  scheduling on the discrete-event transport (Section 4.3, Figure 3).
* :mod:`repro.core.query` — the Membership-Query algorithm with the TMS, BMS
  and IMS maintenance schemes (Section 4.4).
* :mod:`repro.core.handoff` — Member-Handoff fast path using neighbour member
  lists.
* :mod:`repro.core.failure_detector` / :mod:`repro.core.repair` — token
  retransmission based fault detection and local ring repair (Section 5.2
  assumptions).
* :mod:`repro.core.partition` — the Membership-Partition/Merge extension the
  paper lists as future work.
* :mod:`repro.core.simulation` — the :class:`RGBSimulation` facade assembling
  topology, hierarchy, protocol nodes and workloads into one runnable system.
"""

from repro.core.config import ProtocolConfig, SimulationConfig
from repro.core.deltas import DeltaBuilder, DeltaEntry, MembershipDelta
from repro.core.kernel import PropagationReport, RoundResult, TokenRoundKernel
from repro.core.identifiers import GroupId, NodeId, GloballyUniqueId, LocallyUniqueId
from repro.core.member import MemberInfo, MemberStatus, MobileHostState
from repro.core.entity import EntityRole, NetworkEntityState
from repro.core.token import Token, TokenOperation, TokenOperationType
from repro.core.message_queue import MessageQueue, QueuedMessage
from repro.core.membership import MembershipEvent, MembershipEventType, MembershipView
from repro.core.ring import LogicalRing, RingError
from repro.core.hierarchy import RingHierarchy, HierarchyBuilder
from repro.core.query import MembershipQueryService, MembershipScheme, QueryResult
from repro.core.simulation import RGBSimulation

__all__ = [
    "ProtocolConfig",
    "SimulationConfig",
    "DeltaBuilder",
    "DeltaEntry",
    "MembershipDelta",
    "TokenRoundKernel",
    "RoundResult",
    "PropagationReport",
    "GroupId",
    "NodeId",
    "GloballyUniqueId",
    "LocallyUniqueId",
    "MemberInfo",
    "MemberStatus",
    "MobileHostState",
    "EntityRole",
    "NetworkEntityState",
    "Token",
    "TokenOperation",
    "TokenOperationType",
    "MessageQueue",
    "QueuedMessage",
    "MembershipEvent",
    "MembershipEventType",
    "MembershipView",
    "LogicalRing",
    "RingError",
    "RingHierarchy",
    "HierarchyBuilder",
    "MembershipQueryService",
    "MembershipScheme",
    "QueryResult",
    "RGBSimulation",
]
