"""Identifier types used throughout the protocol (paper Section 4.2).

The paper names four identifier spaces:

* ``GID`` — group identity, e.g. an IP multicast Class D address;
* ``NodeID`` — identity of a network entity (AP/AG/BR), e.g. its IP address;
* ``GUID`` — globally unique identity of a mobile host, e.g. its Mobile IP
  home address;
* ``LUID`` — locally unique identity of a mobile host, e.g. its Mobile IP
  care-of address, which changes on every handoff.

The reproduction models all of them as thin, validated ``str`` wrappers so
that type confusion (passing a node id where a member GUID is expected) is
caught early in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, eq=False)
class _Identifier:
    """Base class for validated string identifiers.

    Equality, ordering and hashing are hand-written rather than
    dataclass-generated: the generated methods allocate a field tuple per
    comparison, and identifiers are compared and hashed millions of times on
    the kernel's token path.  Semantics are unchanged — same-class
    comparison by ``value``, cross-class comparisons refused.
    """

    value: str

    def __post_init__(self) -> None:
        if not isinstance(self.value, str) or not self.value:
            raise ValueError(
                f"{type(self).__name__} requires a non-empty string, got {self.value!r}"
            )
        # Identifiers are dict keys on every hot path of the protocol kernel;
        # precomputing the string hash once saves the hash() indirection on
        # each of the millions of probes a large propagation performs.
        object.__setattr__(self, "_hash", hash(self.value))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if other.__class__ is self.__class__:
            return self.value == other.value
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if other is self:
            return False
        if other.__class__ is self.__class__:
            return self.value != other.value
        return NotImplemented

    def __lt__(self, other: "_Identifier") -> bool:
        if other.__class__ is self.__class__:
            return self.value < other.value
        return NotImplemented

    def __le__(self, other: "_Identifier") -> bool:
        if other.__class__ is self.__class__:
            return self.value <= other.value
        return NotImplemented

    def __gt__(self, other: "_Identifier") -> bool:
        if other.__class__ is self.__class__:
            return self.value > other.value
        return NotImplemented

    def __ge__(self, other: "_Identifier") -> bool:
        if other.__class__ is self.__class__:
            return self.value >= other.value
        return NotImplemented

    def __str__(self) -> str:
        return self.value

    def __format__(self, spec: str) -> str:
        return format(self.value, spec)


class GroupId(_Identifier):
    """A communication group identity (``GID``)."""


class NodeId(_Identifier):
    """A network entity identity (``NodeID``) — an AP, AG or BR."""


class GloballyUniqueId(_Identifier):
    """A mobile host's globally unique identity (``GUID``).

    Stable across handoffs; analogous to a Mobile IP home address.
    """


class LocallyUniqueId(_Identifier):
    """A mobile host's locally unique identity (``LUID``).

    Scoped to the current access proxy; analogous to a Mobile IP care-of
    address and re-issued on every handoff.
    """


def make_luid(ap_id: "NodeId | str", guid: "GloballyUniqueId | str", epoch: int) -> LocallyUniqueId:
    """Derive a care-of-address-like LUID for a host attached to an AP.

    ``epoch`` distinguishes successive attachments of the same host to the
    same access proxy (e.g. re-attachment after a transient disconnection).
    """
    if epoch < 0:
        raise ValueError(f"epoch must be non-negative, got {epoch}")
    ap_value = ap_id.value if isinstance(ap_id, NodeId) else str(ap_id)
    guid_value = guid.value if isinstance(guid, GloballyUniqueId) else str(guid)
    return LocallyUniqueId(f"{ap_value}/{guid_value}#{epoch}")


def coerce_group(value: "GroupId | str") -> GroupId:
    """Accept either a :class:`GroupId` or a plain string group name."""
    return value if isinstance(value, GroupId) else GroupId(str(value))


def coerce_node(value: "NodeId | str") -> NodeId:
    """Accept either a :class:`NodeId` or a plain string node name."""
    return value if isinstance(value, NodeId) else NodeId(str(value))


def coerce_guid(value: "GloballyUniqueId | str") -> GloballyUniqueId:
    """Accept either a :class:`GloballyUniqueId` or a plain string."""
    return value if isinstance(value, GloballyUniqueId) else GloballyUniqueId(str(value))


def is_identifier(obj: Any) -> bool:
    """True for any of the identifier wrapper types."""
    return isinstance(obj, _Identifier)
