"""Identifier types used throughout the protocol (paper Section 4.2).

The paper names four identifier spaces:

* ``GID`` — group identity, e.g. an IP multicast Class D address;
* ``NodeID`` — identity of a network entity (AP/AG/BR), e.g. its IP address;
* ``GUID`` — globally unique identity of a mobile host, e.g. its Mobile IP
  home address;
* ``LUID`` — locally unique identity of a mobile host, e.g. its Mobile IP
  care-of address, which changes on every handoff.

The reproduction models all of them as thin, validated ``str`` wrappers so
that type confusion (passing a node id where a member GUID is expected) is
caught early in tests.
"""

from __future__ import annotations

from typing import Any, Dict


class _Identifier:
    """Base class for validated, interned string identifiers.

    Equality, ordering and hashing are hand-written rather than
    dataclass-generated: the generated methods allocate a field tuple per
    comparison, and identifiers are compared and hashed millions of times on
    the kernel's token path.  Semantics are unchanged — same-class
    comparison by ``value``, cross-class comparisons refused.

    Instances are **interned per subclass**: constructing the same identifier
    value twice yields the same (immutable, ``__slots__``-compact) object, so
    a million-proxy hierarchy stores each id string exactly once no matter how
    many rings, views and queues reference it.  The tables are plain dicts
    (CPython-style: interned ids live for the process) because the weak
    variant costs ~3x on the bulk-construction path; id populations are
    bounded by the largest configuration built in-process, and repeated
    matrix cells re-derive the *same* strings, so the steady-state footprint
    is one table of small strings.  :func:`clear_intern_tables` exists for
    long-running processes that switch workloads.  Pickling round-trips
    through the constructor (``__reduce__``), which both re-interns on load
    and keeps the cached hash correct across processes with different
    string-hash seeds.
    """

    __slots__ = ("value", "_hash")

    value: str
    _intern: Dict[str, "_Identifier"]

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        # Each concrete identifier class gets its own intern table, so equal
        # strings of *different* identifier types stay distinct objects.
        cls._intern = {}

    def __new__(cls, value: str) -> "_Identifier":
        cached = cls._intern.get(value) if type(value) is str else None
        if cached is not None:
            return cached
        if not isinstance(value, str) or not value:
            raise ValueError(
                f"{cls.__name__} requires a non-empty string, got {value!r}"
            )
        self = object.__new__(cls)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(value))
        cls._intern[value] = self
        return self

    @classmethod
    def make_interned(cls, values: "Any", prefix: str = "") -> list:
        """Vectorised construction: one interned instance per input string.

        The bulk-build path for million-proxy hierarchies.  Skips the
        per-instance validation re-run (callers generate the strings, so
        emptiness/type are guaranteed by construction) and hoists the intern
        table and allocation callables out of the loop.  With ``prefix`` the
        concatenation happens inside the loop, so callers building
        ``prefix + suffix`` id families avoid a generator per call site.
        """
        table = cls._intern
        table_get = table.get
        alloc = object.__new__
        setattr_ = object.__setattr__
        out = []
        append = out.append
        if prefix:
            for suffix in values:
                value = prefix + suffix
                ident = table_get(value)
                if ident is None:
                    ident = alloc(cls)
                    setattr_(ident, "value", value)
                    setattr_(ident, "_hash", hash(value))
                    table[value] = ident
                append(ident)
            return out
        for value in values:
            ident = table_get(value)
            if ident is None:
                ident = alloc(cls)
                setattr_(ident, "value", value)
                setattr_(ident, "_hash", hash(value))
                table[value] = ident
            append(ident)
        return out

    def __setattr__(self, name: str, _value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __reduce__(self):
        return (type(self), (self.value,))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(value={self.value!r})"

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if other.__class__ is self.__class__:
            return self.value == other.value
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if other is self:
            return False
        if other.__class__ is self.__class__:
            return self.value != other.value
        return NotImplemented

    def __lt__(self, other: "_Identifier") -> bool:
        if other.__class__ is self.__class__:
            return self.value < other.value
        return NotImplemented

    def __le__(self, other: "_Identifier") -> bool:
        if other.__class__ is self.__class__:
            return self.value <= other.value
        return NotImplemented

    def __gt__(self, other: "_Identifier") -> bool:
        if other.__class__ is self.__class__:
            return self.value > other.value
        return NotImplemented

    def __ge__(self, other: "_Identifier") -> bool:
        if other.__class__ is self.__class__:
            return self.value >= other.value
        return NotImplemented

    def __str__(self) -> str:
        return self.value

    def __format__(self, spec: str) -> str:
        return format(self.value, spec)


# The base class is occasionally instantiated directly in tests; give it its
# own table (subclasses get theirs from ``__init_subclass__``).
_Identifier._intern = {}


def clear_intern_tables() -> None:
    """Drop every interned identifier instance (they remain valid objects).

    Intended for long-running processes that move between unrelated
    workloads; subsequently constructed identifiers re-intern as usual.
    """
    for cls in [_Identifier, *_all_subclasses(_Identifier)]:
        cls._intern.clear()


def _all_subclasses(cls: type) -> list:
    out = []
    for sub in cls.__subclasses__():
        out.append(sub)
        out.extend(_all_subclasses(sub))
    return out


class GroupId(_Identifier):
    """A communication group identity (``GID``)."""

    __slots__ = ()


class NodeId(_Identifier):
    """A network entity identity (``NodeID``) — an AP, AG or BR."""

    __slots__ = ()


class GloballyUniqueId(_Identifier):
    """A mobile host's globally unique identity (``GUID``).

    Stable across handoffs; analogous to a Mobile IP home address.
    """

    __slots__ = ()


class LocallyUniqueId(_Identifier):
    """A mobile host's locally unique identity (``LUID``).

    Scoped to the current access proxy; analogous to a Mobile IP care-of
    address and re-issued on every handoff.
    """

    __slots__ = ()


def make_luid(ap_id: "NodeId | str", guid: "GloballyUniqueId | str", epoch: int) -> LocallyUniqueId:
    """Derive a care-of-address-like LUID for a host attached to an AP.

    ``epoch`` distinguishes successive attachments of the same host to the
    same access proxy (e.g. re-attachment after a transient disconnection).
    """
    if epoch < 0:
        raise ValueError(f"epoch must be non-negative, got {epoch}")
    ap_value = ap_id.value if isinstance(ap_id, NodeId) else str(ap_id)
    guid_value = guid.value if isinstance(guid, GloballyUniqueId) else str(guid)
    return LocallyUniqueId(f"{ap_value}/{guid_value}#{epoch}")


def coerce_group(value: "GroupId | str") -> GroupId:
    """Accept either a :class:`GroupId` or a plain string group name."""
    return value if isinstance(value, GroupId) else GroupId(str(value))


def coerce_node(value: "NodeId | str") -> NodeId:
    """Accept either a :class:`NodeId` or a plain string node name."""
    return value if isinstance(value, NodeId) else NodeId(str(value))


def coerce_guid(value: "GloballyUniqueId | str") -> GloballyUniqueId:
    """Accept either a :class:`GloballyUniqueId` or a plain string."""
    return value if isinstance(value, GloballyUniqueId) else GloballyUniqueId(str(value))


def is_identifier(obj: Any) -> bool:
    """True for any of the identifier wrapper types."""
    return isinstance(obj, _Identifier)
