"""Token data structure and aggregated token operations (paper Section 4.2).

A token circulates around each logical ring.  It carries the group id, the
identity of its *holder* (the network entity that started the current round)
and an aggregated operation list: the membership change messages collected by
the holder's message queue when the round began.

The paper enumerates the operation types: Member-Join/Leave/Handoff/Failure,
NE-Join/Leave/Failure, Notification-to-Parent/Child and
Holder-Acknowledgement.  The first seven travel inside tokens as
:class:`TokenOperation` records; the notifications and acknowledgements are
inter-ring messages generated while the token executes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.identifiers import GroupId, NodeId
from repro.core.member import MemberInfo


class TokenOperationType(enum.Enum):
    """Type of an aggregated token operation."""

    MEMBER_JOIN = "member-join"
    MEMBER_LEAVE = "member-leave"
    MEMBER_HANDOFF = "member-handoff"
    MEMBER_FAILURE = "member-failure"
    NE_JOIN = "ne-join"
    NE_LEAVE = "ne-leave"
    NE_FAILURE = "ne-failure"

    @property
    def concerns_member(self) -> bool:
        """True for operations about mobile hosts (vs. network entities)."""
        return self in (
            TokenOperationType.MEMBER_JOIN,
            TokenOperationType.MEMBER_LEAVE,
            TokenOperationType.MEMBER_HANDOFF,
            TokenOperationType.MEMBER_FAILURE,
        )


@dataclass(frozen=True, slots=True)
class TokenOperation:
    """One membership change carried by a token.

    ``member`` is present for member operations; ``entity`` for NE operations.
    ``origin`` is the network entity that first captured the change (the AP a
    member joined at, or the node that detected an NE failure) and is where
    Holder-Acknowledgements are eventually routed back to.
    ``previous_ap`` is only set for handoffs.
    """

    op_type: TokenOperationType
    origin: NodeId
    member: Optional[MemberInfo] = None
    entity: Optional[NodeId] = None
    previous_ap: Optional[NodeId] = None
    sequence: int = 0

    def __post_init__(self) -> None:
        if self.op_type.concerns_member:
            if self.member is None:
                raise ValueError(f"{self.op_type.value} operation requires a member record")
        else:
            if self.entity is None:
                raise ValueError(f"{self.op_type.value} operation requires an entity id")
        if self.op_type is TokenOperationType.MEMBER_HANDOFF and self.previous_ap is None:
            raise ValueError("member-handoff operation requires previous_ap")

    def describe(self) -> str:
        """Short human-readable description used in traces."""
        if self.member is not None:
            subject = str(self.member.guid)
        else:
            subject = str(self.entity)
        return f"{self.op_type.value}({subject})"


@dataclass(slots=True)
class Token:
    """A token circulating in one logical ring.

    Attributes
    ----------
    group:
        The group the ring serves (``GID``).
    holder:
        The entity that started the current round; the round completes when
        the token has travelled from the holder all the way around back to it.
    operations:
        Aggregated membership changes executed by every node the token visits.
    ring_id:
        Identity of the logical ring the token belongs to.
    round_number:
        Incremented each time control transfers to the next holder.
    visited:
        Node ids visited so far in the current round (holder first); used by
        tests and by the failure detector to know where a round stalled.
    """

    group: GroupId
    holder: NodeId
    ring_id: str
    operations: Tuple[TokenOperation, ...] = ()
    round_number: int = 0
    #: Assigned by the owning kernel from its *per-kernel* counter.  This used
    #: to default to a module-level ``itertools.count``, which was
    #: process-global mutable state: forked pool workers inherited whatever
    #: the parent had consumed, so the same seeded cell produced different
    #: token ids depending on which worker ran it.  0 means "unassigned".
    token_id: int = 0
    visited: Tuple[NodeId, ...] = ()

    def with_operations(self, operations: Sequence[TokenOperation]) -> "Token":
        """Copy of this token carrying ``operations``."""
        return Token(
            group=self.group,
            holder=self.holder,
            ring_id=self.ring_id,
            operations=tuple(operations),
            round_number=self.round_number,
            token_id=self.token_id,
            visited=self.visited,
        )

    def record_visit(self, node: NodeId) -> "Token":
        """Copy of this token with ``node`` appended to the visit log."""
        return Token(
            group=self.group,
            holder=self.holder,
            ring_id=self.ring_id,
            operations=self.operations,
            round_number=self.round_number,
            token_id=self.token_id,
            visited=self.visited + (node,),
        )

    def fresh(
        self,
        new_holder: NodeId,
        operations: Iterable[TokenOperation] = (),
        token_id: int = 0,
    ) -> "Token":
        """The fresh token prepared when control transfers to the next holder.

        Figure 3, lines 21–23: when the token returns to ``Holder.Next`` a
        fresh token is prepared and control transfers to that node.  The
        caller (the kernel) supplies the new ``token_id`` from its per-kernel
        counter.
        """
        return Token(
            group=self.group,
            holder=new_holder,
            ring_id=self.ring_id,
            operations=tuple(operations),
            round_number=self.round_number + 1,
            token_id=token_id,
            visited=(),
        )

    @property
    def is_empty(self) -> bool:
        """True when the token carries no membership changes."""
        return not self.operations

    def member_guids(self) -> List[str]:
        """GUIDs of all members referenced by the carried operations."""
        return [str(op.member.guid) for op in self.operations if op.member is not None]

    def describe(self) -> str:
        ops = ", ".join(op.describe() for op in self.operations) or "empty"
        return (
            f"Token#{self.token_id} ring={self.ring_id} holder={self.holder} "
            f"round={self.round_number} [{ops}]"
        )
