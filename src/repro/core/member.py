"""Mobile host (group member) data structures (paper Section 4.2).

A mobile host participating in a group records its group id, the access proxy
it is attached to, its globally and locally unique identities and its status.
Network entities keep :class:`MemberInfo` records — the per-member entry that
appears in ``ListOfLocalMembers``, ``ListOfRingMembers`` and
``ListOfNeighborMembers``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.identifiers import (
    GloballyUniqueId,
    GroupId,
    LocallyUniqueId,
    NodeId,
    make_luid,
)


class MemberStatus(enum.Enum):
    """Status of a mobile host as seen by the membership service.

    The paper lists "typical status like operational, disconnected, and
    failed"; ``LEFT`` is added to distinguish voluntary departure from faulty
    disconnection in membership views.
    """

    OPERATIONAL = "operational"
    DISCONNECTED = "disconnected"
    FAILED = "failed"
    LEFT = "left"

    @property
    def is_operational(self) -> bool:
        return self is MemberStatus.OPERATIONAL


class MemberInfo:
    """Per-member record stored by network entities.

    Immutable: state changes produce a new record (see :meth:`with_status`
    and :meth:`handed_off_to`), which keeps membership views safe to share
    between entities without defensive copies.

    The LUID is derived **lazily**: a record constructed with ``epoch``
    instead of an explicit ``luid`` synthesises the care-of-address string
    (``make_luid(ap, guid, epoch)``) only when :attr:`luid` is first read and
    caches it.  Records are replicated into the ring view of every entity a
    propagation visits, so at large scales most copies never materialise
    their LUID string at all.  Equality and hashing are unaffected: two
    records compare equal iff their (guid, group, ap, status, derived luid)
    tuples do, and lazily derived LUIDs compare by epoch without forcing
    derivation.
    """

    __slots__ = ("guid", "group", "ap", "status", "epoch", "_luid")

    def __init__(
        self,
        guid: GloballyUniqueId,
        group: GroupId,
        ap: NodeId,
        luid: Optional[LocallyUniqueId] = None,
        status: MemberStatus = MemberStatus.OPERATIONAL,
        epoch: int = 0,
    ) -> None:
        if luid is None and epoch < 1:
            raise ValueError(
                f"member {guid} requires an explicit luid or a positive epoch"
            )
        object.__setattr__(self, "guid", guid)
        object.__setattr__(self, "group", group)
        object.__setattr__(self, "ap", ap)
        object.__setattr__(self, "status", status)
        object.__setattr__(self, "epoch", epoch)
        object.__setattr__(self, "_luid", luid)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("MemberInfo is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("MemberInfo is immutable")

    @property
    def luid(self) -> LocallyUniqueId:
        """The member's locally unique identity, derived on first access."""
        cached = self._luid
        if cached is None:
            cached = make_luid(self.ap, self.guid, self.epoch)
            object.__setattr__(self, "_luid", cached)
        return cached

    def _luid_token(self) -> object:
        """Comparison token for the LUID that avoids forcing derivation."""
        if self._luid is None:
            # Derivation is deterministic in (ap, guid, epoch); ap and guid
            # are already compared separately, so the epoch stands in.
            return ("epoch", self.epoch)
        return ("luid", self._luid.value)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, MemberInfo):
            return NotImplemented
        if (
            self.guid != other.guid
            or self.group != other.group
            or self.ap != other.ap
            or self.status is not other.status
        ):
            return False
        mine, theirs = self._luid_token(), other._luid_token()
        if mine == theirs:
            return True
        if mine[0] == theirs[0]:
            # Same token kind and unequal: two lazy records with different
            # epochs (derivation is injective in epoch for fixed ap/guid) or
            # two distinct explicit LUID strings — unequal either way,
            # without forcing derivation.
            return False
        # Mixed lazy/explicit records: fall back to the derived strings.
        return self.luid == other.luid

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        # LUID is deliberately excluded: records that differ only in LUID are
        # rare transients, and including it would force derivation.
        return hash((self.guid, self.group, self.ap, self.status))

    def __repr__(self) -> str:
        return (
            f"MemberInfo(guid={self.guid!r}, group={self.group!r}, ap={self.ap!r}, "
            f"luid={self._luid!r}, status={self.status!r}, epoch={self.epoch!r})"
        )

    def __reduce__(self):
        return (
            MemberInfo,
            (self.guid, self.group, self.ap, self._luid, self.status, self.epoch),
        )

    def with_status(self, status: MemberStatus) -> "MemberInfo":
        """Copy of this record with a different status."""
        if status is self.status:
            return self
        return MemberInfo(
            guid=self.guid,
            group=self.group,
            ap=self.ap,
            luid=self._luid,
            status=status,
            epoch=self.epoch,
        )

    def handed_off_to(self, new_ap: NodeId, epoch: int) -> "MemberInfo":
        """Copy of this record after a handoff to ``new_ap``.

        The GUID is stable; the attachment point and the LUID change (the
        new LUID is derived lazily from the new attachment and epoch).
        """
        return MemberInfo(
            guid=self.guid,
            group=self.group,
            ap=new_ap,
            status=self.status,
            epoch=epoch,
        )

    @property
    def is_operational(self) -> bool:
        return self.status.is_operational


@dataclass(slots=True)
class MobileHostState:
    """The state a mobile host itself maintains (paper Section 4.2).

    This mirrors the MH data structure: GID, attached AP, GUID, LUID, status.
    ``attachment_epoch`` counts attachments (initial join plus every handoff
    or re-attachment) and feeds LUID derivation.
    """

    guid: GloballyUniqueId
    group: GroupId
    ap: Optional[NodeId] = None
    luid: Optional[LocallyUniqueId] = None
    status: MemberStatus = MemberStatus.DISCONNECTED
    attachment_epoch: int = 0

    def attach(self, ap: NodeId) -> MemberInfo:
        """Attach to ``ap``; returns the member record to register at the AP."""
        self.ap = ap
        self.attachment_epoch += 1
        self.luid = make_luid(ap, self.guid, self.attachment_epoch)
        self.status = MemberStatus.OPERATIONAL
        return self.to_member_info()

    def handoff(self, new_ap: NodeId) -> MemberInfo:
        """Move to ``new_ap``; returns the updated member record."""
        if self.ap is None:
            raise ValueError(f"host {self.guid} cannot hand off before attaching")
        if self.status is not MemberStatus.OPERATIONAL:
            raise ValueError(
                f"host {self.guid} cannot hand off while {self.status.value}"
            )
        return_record = self.attach(new_ap)
        return return_record

    def disconnect(self, faulty: bool = False) -> None:
        """Mark the host disconnected (transient) or failed (faulty)."""
        self.status = MemberStatus.FAILED if faulty else MemberStatus.DISCONNECTED

    def leave(self) -> None:
        """Voluntary departure from the group."""
        self.status = MemberStatus.LEFT
        self.ap = None
        self.luid = None

    def to_member_info(self) -> MemberInfo:
        """Snapshot of this host as a :class:`MemberInfo` record."""
        if self.ap is None or self.luid is None:
            raise ValueError(f"host {self.guid} is not attached to any access proxy")
        return MemberInfo(
            guid=self.guid,
            group=self.group,
            ap=self.ap,
            luid=self.luid,
            status=self.status,
        )
