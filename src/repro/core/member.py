"""Mobile host (group member) data structures (paper Section 4.2).

A mobile host participating in a group records its group id, the access proxy
it is attached to, its globally and locally unique identities and its status.
Network entities keep :class:`MemberInfo` records — the per-member entry that
appears in ``ListOfLocalMembers``, ``ListOfRingMembers`` and
``ListOfNeighborMembers``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.identifiers import (
    GloballyUniqueId,
    GroupId,
    LocallyUniqueId,
    NodeId,
    make_luid,
)


class MemberStatus(enum.Enum):
    """Status of a mobile host as seen by the membership service.

    The paper lists "typical status like operational, disconnected, and
    failed"; ``LEFT`` is added to distinguish voluntary departure from faulty
    disconnection in membership views.
    """

    OPERATIONAL = "operational"
    DISCONNECTED = "disconnected"
    FAILED = "failed"
    LEFT = "left"

    @property
    def is_operational(self) -> bool:
        return self is MemberStatus.OPERATIONAL


@dataclass(frozen=True)
class MemberInfo:
    """Per-member record stored by network entities.

    Immutable: state changes produce a new record (see :meth:`with_status`
    and :meth:`handed_off_to`), which keeps membership views safe to share
    between entities without defensive copies.
    """

    guid: GloballyUniqueId
    group: GroupId
    ap: NodeId
    luid: LocallyUniqueId
    status: MemberStatus = MemberStatus.OPERATIONAL

    def with_status(self, status: MemberStatus) -> "MemberInfo":
        """Copy of this record with a different status."""
        return replace(self, status=status)

    def handed_off_to(self, new_ap: NodeId, epoch: int) -> "MemberInfo":
        """Copy of this record after a handoff to ``new_ap``.

        The GUID is stable; the attachment point and the LUID change.
        """
        return replace(self, ap=new_ap, luid=make_luid(new_ap, self.guid, epoch))

    @property
    def is_operational(self) -> bool:
        return self.status.is_operational


@dataclass
class MobileHostState:
    """The state a mobile host itself maintains (paper Section 4.2).

    This mirrors the MH data structure: GID, attached AP, GUID, LUID, status.
    ``attachment_epoch`` counts attachments (initial join plus every handoff
    or re-attachment) and feeds LUID derivation.
    """

    guid: GloballyUniqueId
    group: GroupId
    ap: Optional[NodeId] = None
    luid: Optional[LocallyUniqueId] = None
    status: MemberStatus = MemberStatus.DISCONNECTED
    attachment_epoch: int = 0

    def attach(self, ap: NodeId) -> MemberInfo:
        """Attach to ``ap``; returns the member record to register at the AP."""
        self.ap = ap
        self.attachment_epoch += 1
        self.luid = make_luid(ap, self.guid, self.attachment_epoch)
        self.status = MemberStatus.OPERATIONAL
        return self.to_member_info()

    def handoff(self, new_ap: NodeId) -> MemberInfo:
        """Move to ``new_ap``; returns the updated member record."""
        if self.ap is None:
            raise ValueError(f"host {self.guid} cannot hand off before attaching")
        if self.status is not MemberStatus.OPERATIONAL:
            raise ValueError(
                f"host {self.guid} cannot hand off while {self.status.value}"
            )
        return_record = self.attach(new_ap)
        return return_record

    def disconnect(self, faulty: bool = False) -> None:
        """Mark the host disconnected (transient) or failed (faulty)."""
        self.status = MemberStatus.FAILED if faulty else MemberStatus.DISCONNECTED

    def leave(self) -> None:
        """Voluntary departure from the group."""
        self.status = MemberStatus.LEFT
        self.ap = None
        self.luid = None

    def to_member_info(self) -> MemberInfo:
        """Snapshot of this host as a :class:`MemberInfo` record."""
        if self.ap is None or self.luid is None:
            raise ValueError(f"host {self.guid} is not attached to any access proxy")
        return MemberInfo(
            guid=self.guid,
            group=self.group,
            ap=self.ap,
            luid=self.luid,
            status=self.status,
        )
