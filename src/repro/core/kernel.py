"""The unified token-round kernel (paper Section 4.3, Figure 3).

The seed repository implemented the One-Round Token Passing protocol twice —
structurally in :mod:`repro.core.one_round` and latency-aware in
:mod:`repro.core.protocol` — with duplicated round, notification and
acknowledgement semantics.  This module is the single, transport-agnostic
state machine both engines now drive:

* **operation factory** — sequence numbers, member epochs, LUID derivation and
  record lookup for Member-Join/Leave/Failure/Handoff and the failure
  operations emitted by ring repair;
* **round orchestration** — queue draining with child-sender tracking, token
  circulation order, ``RingOK``/``ParentOK`` gating, Notification-to-Parent /
  Notification-to-Child routing, Holder-Acknowledgement targets and per-ring
  seen-set dedup ("at most one membership change message propagated along a
  ring");
* **batched application** — each round compiles its aggregated operations into
  one :class:`repro.core.deltas.MembershipDelta` and applies it to every
  visited entity in a single set-based pass (the seed's per-operation path is
  kept behind ``ProtocolConfig.batched_apply=False`` as the reference
  semantics and the ablation baseline);
* **coverage and repair** — subtree-walk coverage sets (the seed recomputed
  coverage by scanning every access proxy's full ancestry per ring, which is
  quadratic at 100k proxies) and the hierarchy surgery shared by both repair
  paths.

The drivers stay thin: :class:`repro.core.one_round.OneRoundEngine` steps the
kernel synchronously (shared memory, zero latency) while
:class:`repro.core.protocol.RGBProtocolCluster` schedules the same decisions
as messages on the discrete-event transport.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.config import ProtocolConfig
from repro.core.deltas import MembershipDelta
from repro.core.entity import NetworkEntityState
from repro.core.events import MembershipEventBus
from repro.core.hierarchy import RingHierarchy, paused_gc
from repro.core.identifiers import (
    GloballyUniqueId,
    NodeId,
    coerce_guid,
    coerce_node,
)
from repro.core.member import MemberInfo, MemberStatus
from repro.core.membership import _EMPTY_STORE, MembershipEvent, event_type_for
from repro.core.ring import LogicalRing
from repro.core.token import Token, TokenOperation, TokenOperationType
from repro.sim.stats import MetricRegistry
from repro.sim.trace import TraceRecorder


class ProtocolError(RuntimeError):
    """Raised for invalid protocol-level requests."""


OperationBatch = Union[MembershipDelta, Sequence[TokenOperation]]


def stale_for(applied: Optional[Mapping[str, int]], op: TokenOperation) -> bool:
    """The one copy of the staleness rule (see ``is_stale_for_ring``).

    ``applied`` is a ring's per-member sequence high-water-mark map (may be
    ``None``/empty); hot paths hoist the map lookup and call this per op.
    An operation is stale when the ring already circulated *this very
    operation or a newer one* about the same member — sequences are globally
    monotonic in capture order, so a lower-sequence operation arriving late
    (reordered by loss + resend) must not supersede the member's most recent
    state.  Same-sequence re-deliveries (a downward dissemination looping
    back to the ring that applied the op, a duplicate after a lost ack) are
    equally stale: re-admitting an already-applied operation into a queue
    lets the aggregation rules collapse it against a *genuinely new* later
    operation about the member — a disseminated join copy would annihilate a
    fresh leave, and the departure would silently never propagate.
    """
    if not applied:
        return False
    member = op.member
    return member is not None and op.sequence <= applied.get(member.guid.value, 0)


class _RingDirtyMarker:
    """Bound ``on_enqueue`` hook: marks one ring as having queued work.

    The columnar backend additionally wires ``_hints``/``_hint_idx`` (see
    ``ColumnarStore.ring_work_hint``): every enqueue then degrades the
    ring's work hint to "unknown" so a stale "no work"/"only position p"
    claim can never survive an insert.  Unwired (object-kernel) markers pay
    one attribute read and a falsy test per enqueue.
    """

    __slots__ = ("_add", "_ring_id", "_hints", "_hint_idx")

    def __init__(self, add, ring_id: str) -> None:
        self._add = add
        self._ring_id = ring_id
        self._hints: Optional[List[int]] = None
        self._hint_idx = -1

    def __call__(self) -> None:
        self._add(self._ring_id)
        hints = self._hints
        if hints is not None:
            hints[self._hint_idx] = -2


class MessageDispatch:
    """Seam through which the kernel emits inter-entity protocol messages.

    The kernel decides *what* travels (which operations are fresh for a ring,
    who gets a Holder-Acknowledgement, where the token goes next); the
    dispatch decides *how* it travels.  The default
    :class:`DirectDispatch` delivers synchronously in shared memory — the
    seed's structural semantics — while the event-driven scenario harness
    (:mod:`repro.sim.harness`) injects a transport-backed dispatch so the same
    decisions become real messages subject to latency, loss and retries.

    ``emits_token_messages`` lets the kernel skip the per-hop callback
    entirely for dispatches that do not model token hops as messages, keeping
    the structural hot path free of the extra calls.
    """

    emits_token_messages: bool = False

    def deliver_notification(
        self,
        kernel: "TokenRoundKernel",
        sender: NodeId,
        target: NodeId,
        operations: Sequence[TokenOperation],
        now: float,
    ) -> None:
        """Deliver a Notification-to-Parent/Child into ``target``'s queue."""
        raise NotImplementedError

    def deliver_holder_ack(
        self, kernel: "TokenRoundKernel", holder: NodeId, target: NodeId, now: float
    ) -> None:
        """Deliver a Holder-Acknowledgement from ``holder`` to ``target``."""
        raise NotImplementedError

    def token_hop(
        self, kernel: "TokenRoundKernel", sender: NodeId, receiver: NodeId, now: float
    ) -> None:
        """One token transmission along the ring (only called when
        ``emits_token_messages`` is true)."""
        raise NotImplementedError


class DirectDispatch(MessageDispatch):
    """Shared-memory delivery: the seed's synchronous structural semantics."""

    emits_token_messages = False

    def deliver_notification(
        self,
        kernel: "TokenRoundKernel",
        sender: NodeId,
        target: NodeId,
        operations: Sequence[TokenOperation],
        now: float,
    ) -> None:
        target_entity = kernel.entity(target)
        for op in operations:
            target_entity.mq.insert(op, sender=sender, now=now)

    def deliver_holder_ack(
        self, kernel: "TokenRoundKernel", holder: NodeId, target: NodeId, now: float
    ) -> None:
        # Structurally the acknowledgement has no receiver-side effect; the
        # kernel already counts and traces it.
        return None

    def token_hop(
        self, kernel: "TokenRoundKernel", sender: NodeId, receiver: NodeId, now: float
    ) -> None:  # pragma: no cover - never called (emits_token_messages=False)
        return None


@dataclass
class RoundResult:
    """Outcome of one token round in one ring."""

    ring_id: str
    holder: NodeId
    operations: Tuple[TokenOperation, ...]
    token_hops: int = 0
    notify_hops: int = 0
    ack_hops: int = 0
    retransmissions: int = 0
    visited: List[NodeId] = field(default_factory=list)
    repaired: List[NodeId] = field(default_factory=list)
    events: List[MembershipEvent] = field(default_factory=list)

    @property
    def hop_count(self) -> int:
        """Hops counted the way the paper's Section 5.1 model counts them."""
        return self.token_hops + self.notify_hops


@dataclass
class PropagationReport:
    """Aggregate outcome of :meth:`TokenRoundKernel.propagate`."""

    rounds: List[RoundResult] = field(default_factory=list)

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def token_hops(self) -> int:
        return sum(r.token_hops for r in self.rounds)

    @property
    def notify_hops(self) -> int:
        return sum(r.notify_hops for r in self.rounds)

    @property
    def ack_hops(self) -> int:
        return sum(r.ack_hops for r in self.rounds)

    @property
    def retransmissions(self) -> int:
        return sum(r.retransmissions for r in self.rounds)

    @property
    def hop_count(self) -> int:
        """Token hops plus notification hops (the paper's HopCount)."""
        return self.token_hops + self.notify_hops

    @property
    def events(self) -> List[MembershipEvent]:
        out: List[MembershipEvent] = []
        for r in self.rounds:
            out.extend(r.events)
        return out

    @property
    def repaired(self) -> List[NodeId]:
        out: List[NodeId] = []
        for r in self.rounds:
            out.extend(r.repaired)
        return out

    @property
    def rings_involved(self) -> Set[str]:
        return {r.ring_id for r in self.rounds}


class TokenRoundKernel:
    """Transport-agnostic execution core of the RGB membership protocol.

    Parameters
    ----------
    hierarchy:
        The ring-based hierarchy to run over.  The kernel mutates it when it
        repairs rings after entity failures.
    config, metrics, event_bus, trace:
        Protocol tunables and shared instrumentation.
    entities:
        Per-entity local state.  Built from the hierarchy when not supplied;
        the event-driven driver passes the states its protocol nodes wrap so
        both layers observe the same lists.
    emit_prune_events:
        Whether removing a member record that moved *out* of a ring's coverage
        area emits a membership event at the observing entity.  The structural
        engine historically reported these; the message-passing engine did
        not.  Both behaviours are preserved per driver.
    dispatch:
        The :class:`MessageDispatch` seam through which notifications,
        holder-acknowledgements and (optionally) token hops leave an entity.
        Defaults to :class:`DirectDispatch` (synchronous shared-memory
        delivery); the scenario harness injects a transport-backed dispatch.
    entities_pristine:
        Promise that the supplied ``entities`` dict came straight from
        :meth:`RingHierarchy.build_entity_states` for this hierarchy (exact
        (ring, member) iteration order, empty queues, no external
        references): the kernel then takes ownership without copying and
        wires queue hooks through the same lockstep fast path it uses for
        states it builds itself.  The snapshot-rehydration path sets this.
    """

    def __init__(
        self,
        hierarchy: RingHierarchy,
        config: Optional[ProtocolConfig] = None,
        metrics: Optional[MetricRegistry] = None,
        event_bus: Optional[MembershipEventBus] = None,
        trace: Optional[TraceRecorder] = None,
        entities: Optional[Mapping[NodeId, NetworkEntityState]] = None,
        emit_prune_events: bool = True,
        dispatch: Optional[MessageDispatch] = None,
        entities_pristine: bool = False,
    ) -> None:
        self.hierarchy = hierarchy
        self.dispatch = dispatch if dispatch is not None else DirectDispatch()
        self.config = config if config is not None else ProtocolConfig()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.event_bus = event_bus if event_bus is not None else MembershipEventBus()
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        built_in_house = entities is None
        with paused_gc():
            if built_in_house:
                self.entities: Dict[NodeId, NetworkEntityState] = (
                    hierarchy.build_entity_states()
                )
            elif entities_pristine and isinstance(entities, dict):
                self.entities = entities
            else:
                entities_pristine = False
                self.entities = dict(entities)
            # Rings with (potentially) pending queued work.  Maintained through
            # the per-queue on_enqueue hook so *any* insert — kernel, dispatch,
            # harness or test code — marks the owning ring; pending_rings() then
            # verifies only these candidates instead of scanning every queue of
            # every ring per sweep (quadratic pain at 100k+ proxies).
            self._dirty_rings: Set[str] = set()
            dirty_add = self._dirty_rings.add
            # Ring-wise wiring: one shared marker per ring (it closes over the
            # ring id only) instead of one per entity, and no per-node
            # ring-of-node probe — at a million proxies the per-entity variant
            # allocated a million markers just to say the same ring id.
            aggregate = self.config.aggregate_mq
            entities_map = self.entities
            if built_in_house or entities_pristine:
                # Freshly bulk-built states come back in exact (ring, member)
                # iteration order with pristine (unmaterialised, empty) queues:
                # wire hooks by walking the two sequences in lockstep — zero
                # per-node identifier-keyed probes, no queue materialisation.
                entity_iter = iter(entities_map.values())
                if aggregate:
                    # True is the lazy default already; only the hook varies.
                    for ring_id, ring in hierarchy.rings.items():
                        marker = _RingDirtyMarker(dirty_add, ring_id)
                        for _node in ring.members:
                            next(entity_iter).mq_hook = marker
                else:
                    for ring_id, ring in hierarchy.rings.items():
                        marker = _RingDirtyMarker(dirty_add, ring_id)
                        for _node in ring.members:
                            entity = next(entity_iter)
                            entity.aggregate_mq = False
                            entity.mq_hook = marker
            else:
                wired = 0
                for ring_id, ring in hierarchy.rings.items():
                    marker = _RingDirtyMarker(dirty_add, ring_id)
                    for node in ring.members:
                        entity = entities_map.get(node)
                        if entity is None:
                            continue
                        wired += 1
                        entity.set_mq_wiring(aggregate, marker)
                        if entity.has_queued_work():
                            dirty_add(ring_id)
                if wired != len(entities_map):
                    # Entities outside any ring (possible when states are supplied
                    # externally) still honour the aggregation setting.
                    ring_of_node = hierarchy.ring_of_node
                    for node, entity in entities_map.items():
                        if node not in ring_of_node:
                            entity.set_mq_wiring(aggregate, entity.mq_hook)
        self.emit_prune_events = emit_prune_events
        # Per-ring member sets for the bottom-tier bookkeeping of the batched
        # apply path, invalidated by the ring's mutation counter.
        self._ring_set_cache: Dict[str, Tuple[int, Set[NodeId]]] = {}
        # Pre-bound hot-loop counters (metrics.counter() is a dict probe).
        metrics = self.metrics
        self._c_rounds_started = metrics.counter("rounds.started")
        self._c_rounds_completed = metrics.counter("rounds.completed")
        self._c_hops_token = metrics.counter("hops.token")
        self._c_hops_notify = metrics.counter("hops.notify")
        self._c_hops_ack = metrics.counter("hops.ack")
        self._c_notifications = metrics.counter("messages.notifications")
        self._c_holder_ack = metrics.counter("messages.holder_ack")
        self._capture_counters: Dict[str, object] = {}
        self.failed: Set[NodeId] = set()
        self._op_sequence = itertools.count(1)
        # Token ids are per-kernel, not process-global: two identically seeded
        # runs in one process must produce identical traces (golden tests).
        self._token_ids = itertools.count(1)
        self._member_epochs: Dict[str, int] = {}
        # Per-ring seen-sets / sequence high-water marks materialise on first
        # touch (defaultdict): pre-seeding one empty set and dict per ring
        # cost two allocations per ring — 222k objects a million-proxy build
        # never looked at.  Read paths that must not create entries use
        # ``.get``, which behaves identically on a defaultdict.
        self.ring_seen: Dict[str, Set[int]] = defaultdict(set)
        # Highest operation sequence a ring has circulated per member GUID.
        # Event-driven transports can reorder notifications (a lost-and-resent
        # join may arrive after the member's later leave was already applied);
        # this map lets receivers drop such stale operations.
        self.ring_applied_seq: Dict[str, Dict[str, int]] = defaultdict(dict)
        self._ring_holder: Dict[str, NodeId] = {}
        self._coverage_cache: Dict[str, Set[str]] = {}
        # Bumped by invalidate_coverage(); lets a round detect mid-round
        # hierarchy surgery and re-derive its per-entry coverage verdicts.
        self._coverage_epoch = 0
        # Ring tiers are fixed at construction (repair removes members, never
        # whole tiers), so the bottom tier is safe to pin for the hot paths.
        self._bottom_tier = hierarchy.bottom_tier()

    # ------------------------------------------------------------------
    # entity access
    # ------------------------------------------------------------------

    def entity(self, node: "NodeId | str") -> NetworkEntityState:
        key = coerce_node(node)
        try:
            return self.entities[key]
        except KeyError:
            raise ProtocolError(f"unknown network entity {node}") from None

    def is_operational(self, node: "NodeId | str") -> bool:
        return coerce_node(node) not in self.failed

    def operational_entities(self) -> List[NodeId]:
        return [n for n in self.entities if n not in self.failed]

    # ------------------------------------------------------------------
    # operation factory (shared by both drivers)
    # ------------------------------------------------------------------

    def next_sequence(self) -> int:
        return next(self._op_sequence)

    def set_sequence_stream(self, start: int, step: int = 1) -> None:
        """Partition the operation-sequence space.

        The live runtime runs one kernel replica per shard process; each
        replica draws its post-scenario sequences (repair operations) from a
        disjoint arithmetic stream (``start + k*step``) so two shards can
        never mint the same sequence number for different operations.
        Scripted operations carry pre-assigned sequences below ``start``.
        """
        if step < 1:
            raise ProtocolError(f"sequence stream step must be >= 1, got {step}")
        self._op_sequence = itertools.count(start, step)

    @property
    def coverage_epoch(self) -> int:
        """Monotonic count of hierarchy surgeries (see :meth:`invalidate_coverage`).

        Observers (e.g. the harness's dead-letter retry) compare epochs to
        learn that a repair has re-shaped the hierarchy since they last
        looked, without hooking every repair call site.
        """
        return self._coverage_epoch

    def next_epoch(self, guid: str) -> int:
        epoch = self._member_epochs.get(guid, 0) + 1
        self._member_epochs[guid] = epoch
        return epoch

    def make_join_op(
        self, ap: "NodeId | str", guid: "GloballyUniqueId | str"
    ) -> TokenOperation:
        """A mobile host joins the group at access proxy ``ap``."""
        ap_id = coerce_node(ap)
        guid_id = coerce_guid(guid)
        member = MemberInfo(
            guid=guid_id,
            group=self.hierarchy.group,
            ap=ap_id,
            status=MemberStatus.OPERATIONAL,
            epoch=self.next_epoch(str(guid_id)),
        )
        return TokenOperation(
            op_type=TokenOperationType.MEMBER_JOIN,
            origin=ap_id,
            member=member,
            sequence=self.next_sequence(),
        )

    def make_leave_op(
        self, ap: "NodeId | str", guid: "GloballyUniqueId | str"
    ) -> TokenOperation:
        """A mobile host voluntarily leaves the group."""
        ap_id = coerce_node(ap)
        member = self.lookup_member(ap_id, coerce_guid(guid))
        return TokenOperation(
            op_type=TokenOperationType.MEMBER_LEAVE,
            origin=ap_id,
            member=member.with_status(MemberStatus.LEFT),
            sequence=self.next_sequence(),
        )

    def make_failure_op(
        self, ap: "NodeId | str", guid: "GloballyUniqueId | str"
    ) -> TokenOperation:
        """A mobile host is detected faulty by its access proxy."""
        ap_id = coerce_node(ap)
        member = self.lookup_member(ap_id, coerce_guid(guid))
        return TokenOperation(
            op_type=TokenOperationType.MEMBER_FAILURE,
            origin=ap_id,
            member=member.with_status(MemberStatus.FAILED),
            sequence=self.next_sequence(),
        )

    def make_handoff_op(
        self,
        guid: "GloballyUniqueId | str",
        old_ap: "NodeId | str",
        new_ap: "NodeId | str",
    ) -> TokenOperation:
        """A mobile host hands off from ``old_ap`` to ``new_ap``.

        The change is captured at the *new* access proxy (the paper's
        Member-Handoff); the old access proxy's local list is updated directly,
        modelling the Mobile-IP style binding update the host performs, and the
        propagated operation carries ``previous_ap`` so every view can move the
        member rather than duplicate it.
        """
        old_id = coerce_node(old_ap)
        new_id = coerce_node(new_ap)
        guid_id = coerce_guid(guid)
        member = self.lookup_member(old_id, guid_id)
        moved = member.handed_off_to(new_id, self.next_epoch(str(guid_id)))
        # Fast local update at the old proxy (fast-handoff path).
        if old_id in self.entities:
            self.entities[old_id].unregister_local_member(str(guid_id))
        return TokenOperation(
            op_type=TokenOperationType.MEMBER_HANDOFF,
            origin=new_id,
            member=moved,
            previous_ap=old_id,
            sequence=self.next_sequence(),
        )

    def lookup_member(self, ap: NodeId, guid: GloballyUniqueId) -> MemberInfo:
        """Find the current record for ``guid``, preferring the AP's local list."""
        if ap in self.entities:
            entity = self.entities[ap]
            record = entity.local_members.get(guid)
            if record is not None:
                return record
            record = entity.ring_members.get(guid)
            if record is not None:
                return record
        # Fall back to the global view (e.g. leave reported via a different AP).
        top_leader = self.hierarchy.topmost_ring().leader
        if top_leader is not None and top_leader in self.entities:
            record = self.entities[top_leader].ring_members.get(guid)
            if record is not None:
                return record
        # Unknown member: synthesise a record so the departure still propagates.
        return MemberInfo(
            guid=guid,
            group=self.hierarchy.group,
            ap=ap,
            status=MemberStatus.OPERATIONAL,
            epoch=self.next_epoch(str(guid)),
        )

    def failure_operations(
        self, failed: NodeId, observer: Optional[NodeId]
    ) -> List[TokenOperation]:
        """Operations reporting an entity failure and the members lost with it."""
        ops: List[TokenOperation] = []
        if observer is not None and observer in self.entities:
            for member in self.entities[observer].ring_members.members_at(failed):
                ops.append(
                    TokenOperation(
                        op_type=TokenOperationType.MEMBER_FAILURE,
                        origin=observer,
                        member=member.with_status(MemberStatus.FAILED),
                        sequence=self.next_sequence(),
                    )
                )
        ops.append(
            TokenOperation(
                op_type=TokenOperationType.NE_FAILURE,
                origin=observer if observer is not None else failed,
                entity=failed,
                sequence=self.next_sequence(),
            )
        )
        return ops

    # ------------------------------------------------------------------
    # capture and seen-set dedup
    # ------------------------------------------------------------------

    def capture(self, ap: "NodeId | str", operation: TokenOperation, now: float) -> TokenOperation:
        """Insert ``operation`` into the access proxy's queue and mark it seen."""
        ap_id = coerce_node(ap)
        self.entity(ap_id).mq.insert(operation, sender=ap_id, now=now)
        ring_id = self.hierarchy.ring_of(ap_id).ring_id
        self.ring_seen[ring_id].add(operation.sequence)
        counter = self._capture_counters.get(operation.op_type.value)
        if counter is None:
            counter = self.metrics.counter(f"capture.{operation.op_type.value}")
            self._capture_counters[operation.op_type.value] = counter
        counter.increment()
        if self.trace.enabled:
            self.trace.record(now, "capture", str(ap_id), operation.describe())
        return operation

    def fresh_for_ring(
        self, ring_id: str, operations: Sequence[TokenOperation]
    ) -> List[TokenOperation]:
        """Operations the target ring has not seen yet and that are not stale
        (notification filter)."""
        if ring_id not in self.hierarchy.rings:
            # ring_seen is a defaultdict; guard explicitly so a mistyped or
            # stale ring id still errors (as the pre-seeded map used to)
            # instead of silently treating everything as fresh.
            raise KeyError(ring_id)
        seen = self.ring_seen[ring_id]
        applied = self.ring_applied_seq.get(ring_id)
        if applied:
            return [
                op
                for op in operations
                if op.sequence not in seen and not stale_for(applied, op)
            ]
        return [op for op in operations if op.sequence not in seen]

    def is_stale_for_ring(self, ring_id: str, operation: TokenOperation) -> bool:
        """True when the ring already circulated this operation or a newer
        one about the same member (the rule itself lives in :func:`stale_for`)."""
        return stale_for(self.ring_applied_seq.get(ring_id), operation)

    def note_circulated(self, ring_id: str, operations: Iterable[TokenOperation]) -> None:
        """Record the per-member sequence high-water marks of a round's batch."""
        applied = self.ring_applied_seq.setdefault(ring_id, {})
        for op in operations:
            member = op.member
            if member is None:
                continue
            guid = member.guid.value
            if op.sequence > applied.get(guid, 0):
                applied[guid] = op.sequence

    def mark_seen(self, ring_id: str, operations: Iterable[TokenOperation]) -> None:
        seen = self.ring_seen[ring_id]
        for op in operations:
            seen.add(op.sequence)

    # ------------------------------------------------------------------
    # round plumbing shared by both drivers
    # ------------------------------------------------------------------

    def drain_for_round(
        self, entity: NetworkEntityState, ring_members: Sequence[NodeId]
    ) -> Tuple[Tuple[TokenOperation, ...], List[NodeId]]:
        """Drain the holder's queue into the token's aggregated operations.

        Returns the operations plus the distinct out-of-ring senders whose
        notifications the holder aggregated (Holder-Acknowledgement targets,
        Figure 3 lines 17-20).
        """
        entries = entity.mq.drain_entries()
        operations = tuple(e.operation for e in entries)
        holder = entity.current
        members = set(ring_members)
        child_senders = [
            e.sender for e in entries if e.sender != holder and e.sender not in members
        ]
        return operations, child_senders

    def upward_target(
        self, entity: NetworkEntityState, leader: Optional[NodeId]
    ) -> Optional[NodeId]:
        """Figure 3 lines 10-13 gate: the ring leader with a healthy parent link."""
        if (
            leader is not None
            and entity.current == leader
            and entity.parent_ok
            and entity.parent is not None
        ):
            return entity.parent
        return None

    def downward_targets(self, entity: NetworkEntityState) -> List[NodeId]:
        """Figure 3 lines 14-16: child ring leaders to notify."""
        if not self.config.disseminate_downward:
            return []
        return list(entity.children)

    def ack_targets(self, child_senders: Sequence) -> List:
        """Distinct Holder-Acknowledgement recipients, first-seen order."""
        return list(dict.fromkeys(child_senders))

    # ------------------------------------------------------------------
    # coverage bookkeeping
    # ------------------------------------------------------------------

    def coverage(self, ring_id: str) -> Set[str]:
        """Access proxies whose members fall within the ring's coverage area.

        Computed by walking the child-ring subtree under each ring member —
        O(subtree) per ring instead of the seed's O(proxies × height) scan —
        and cached until the hierarchy changes.
        """
        cached = self._coverage_cache.get(ring_id)
        if cached is not None:
            return cached
        hierarchy = self.hierarchy
        bottom = self._bottom_tier
        rings = hierarchy.rings
        ring_of_node = hierarchy.ring_of_node
        child_rings = hierarchy.child_rings
        covered: Set[str] = set()
        stack: List[NodeId] = list(hierarchy.ring(ring_id).members)
        while stack:
            node = stack.pop()
            node_ring_id = ring_of_node.get(node)
            if node_ring_id is not None and rings[node_ring_id].tier == bottom:
                covered.add(node.value)
            for child_ring_id in child_rings.get(node, ()):
                stack.extend(rings[child_ring_id].members)
        self._coverage_cache[ring_id] = covered
        return covered

    def ring_covers(self, ring_id: str, ap: NodeId) -> bool:
        """Is bottom-tier proxy ``ap`` within ring ``ring_id``'s coverage area?

        Ancestor-chain formulation of :meth:`coverage`: ``ap`` is covered iff
        its (bottom-tier) ring is ``ring_id`` or reaches it by climbing the
        leader→parent links — O(height) dict probes and **zero cached state**.
        The batched apply path uses this instead of the materialised coverage
        sets, whose combined size is O(proxies × height) at scale (hundreds
        of MB for a million proxies).  Always reads the live hierarchy, so
        repairs are visible immediately.
        """
        hierarchy = self.hierarchy
        ring_of_node = hierarchy.ring_of_node
        current = ring_of_node.get(ap)
        if current is None:
            return False
        if hierarchy.rings[current].tier != self._bottom_tier:
            return False
        parent_node = hierarchy.parent_node
        while True:
            if current == ring_id:
                return True
            parent = parent_node.get(current)
            if parent is None:
                return False
            current = ring_of_node.get(parent)
            if current is None:
                return False

    def _entry_coverage(self, ring_id: str, delta: MembershipDelta) -> List[bool]:
        """Per-entry coverage verdicts for one ring (aligned with entries)."""
        ring_covers = self.ring_covers
        return [ring_covers(ring_id, entry.operation.member.ap) for entry in delta.entries]

    def invalidate_coverage(self) -> None:
        self._coverage_cache.clear()
        self._coverage_epoch += 1

    # ------------------------------------------------------------------
    # operation application (Figure 3 line 08)
    # ------------------------------------------------------------------

    def compile_delta(self, operations: Sequence[TokenOperation]) -> MembershipDelta:
        """Compile an aggregated operation batch once for a whole round."""
        return MembershipDelta.from_operations(operations)

    def apply_operations_at(
        self,
        node: "NodeId | str | NetworkEntityState",
        ring: LogicalRing,
        operations: OperationBatch,
        now: float,
        batched: Optional[bool] = None,
    ) -> List[MembershipEvent]:
        """Execute the token's operations on one entity's member lists.

        ``operations`` may be a raw operation sequence or an already compiled
        :class:`MembershipDelta`.  Every event that changed a view is
        published on the kernel's event bus and returned.
        """
        entity = node if isinstance(node, NetworkEntityState) else self.entity(node)
        if batched is None:
            batched = self.config.batched_apply
        if isinstance(operations, MembershipDelta):
            events = self._apply_delta(entity, ring, operations, now)
        elif batched:
            events = self._apply_delta(entity, ring, self.compile_delta(operations), now)
        else:
            events = self._apply_per_op(entity, ring, operations, now)
        for event in events:
            self.event_bus.publish(event)
        return list(events) if not isinstance(events, list) else events

    def _ring_members_set(self, ring: LogicalRing) -> Set[NodeId]:
        """Cached ``set(ring.members)``, invalidated by the ring's mutation
        counter (repairs bump it)."""
        cached = self._ring_set_cache.get(ring.ring_id)
        if cached is not None and cached[0] == ring.version:
            return cached[1]
        members = set(ring.members)
        self._ring_set_cache[ring.ring_id] = (ring.version, members)
        return members

    def _apply_delta(
        self,
        entity: NetworkEntityState,
        ring: LogicalRing,
        delta: MembershipDelta,
        now: float,
    ) -> Sequence[MembershipEvent]:
        """Set-based single-pass application of a compiled delta."""
        if not delta.entries:
            return []
        is_bottom = ring.tier == self._bottom_tier
        return self._apply_delta_ctx(
            entity,
            delta,
            now,
            self._entry_coverage(ring.ring_id, delta),
            is_bottom,
            self._ring_members_set(ring) if is_bottom else None,
        )

    def _apply_delta_ctx(
        self,
        entity: NetworkEntityState,
        delta: MembershipDelta,
        now: float,
        entry_coverage: Sequence[bool],
        is_bottom: bool,
        ring_member_set: Optional[Set[NodeId]],
    ) -> Sequence[MembershipEvent]:
        """Delta application with the per-ring context precomputed.

        ``run_round`` applies the same compiled delta at every member it
        visits; hoisting the per-entry coverage verdicts and ring-member set
        out of the per-visit call is what makes the token path O(net changes)
        per visit.
        """
        events: Optional[List[MembershipEvent]] = None
        node = entity.current
        # Probe the views' string-keyed stores directly; mutations still go
        # through the view methods so versioning stays correct.  The probes
        # also gate remove() calls, so the common no-op removal (an operation
        # about a member this view never covered) costs one dict hit.  Views
        # are lazy: an unmaterialised view probes as the shared empty store
        # and is only brought into existence by an actual addition — at a
        # million proxies the visit loop would otherwise allocate three view
        # objects per entity just to discover there is nothing to do.
        local = entity.local_members if entity.local_live else None
        neighbor = entity.neighbor_members if entity.neighbor_live else None
        ring_view = entity.ring_members if entity.ring_live else None
        local_store = local._members if local is not None else _EMPTY_STORE
        neighbor_store = neighbor._members if neighbor is not None else _EMPTY_STORE
        ring_store = ring_view._members if ring_view is not None else _EMPTY_STORE
        emit_prune = self.emit_prune_events
        for position, entry in enumerate(delta.entries):
            op = entry.operation
            member = op.member
            resolved = entry.resolved
            guid_value = entry.guid_value
            adding = resolved is not None
            member_ap = member.ap
            in_coverage = entry_coverage[position]

            if is_bottom:
                # Local member list: only the access proxy the member is attached to.
                if adding and member_ap == node:
                    if local is None:
                        local = entity.local_members
                    local.add(resolved)
                elif guid_value in local_store and (member_ap != node or not adding):
                    local.remove(guid_value)
                # Neighbour member list: members at the *other* proxies of this ring.
                if member_ap != node and member_ap in ring_member_set:
                    if adding:
                        if neighbor is None:
                            neighbor = entity.neighbor_members
                        neighbor.add(resolved)
                    elif guid_value in neighbor_store:
                        neighbor.remove(guid_value)
                elif guid_value in neighbor_store and member_ap not in ring_member_set:
                    neighbor.remove(guid_value)

            # Ring member list: members within the ring's coverage area.
            event: Optional[MembershipEvent] = None
            if adding:
                if in_coverage:
                    if ring_view is None:
                        ring_view = entity.ring_members
                    if ring_view.add(resolved):
                        # Refetch: the first add on a lazily allocated view
                        # swaps its store, leaving the hoisted handle stale.
                        event = self._event(op, node, now, len(ring_view._members))
                elif guid_value in ring_store:
                    ring_view.remove(guid_value)
                    if emit_prune:
                        event = self._event(op, node, now, len(ring_store))
            elif guid_value in ring_store:
                ring_view.remove(guid_value)
                event = self._event(op, node, now, len(ring_store))
            if event is not None:
                if events is None:
                    events = [event]
                else:
                    events.append(event)
        # Most visits change nothing; avoid allocating an empty list each.
        return events if events is not None else ()

    def _apply_per_op(
        self,
        entity: NetworkEntityState,
        ring: LogicalRing,
        operations: Sequence[TokenOperation],
        now: float,
    ) -> List[MembershipEvent]:
        """The seed's per-operation reference path (ablation baseline).

        Faithful port of the original engines' loop, including the sorted
        GUID-list probes — this is the path the batched delta is benchmarked
        against.
        """
        events: List[MembershipEvent] = []
        coverage = self.coverage(ring.ring_id)
        bottom_tier = self._bottom_tier
        node = entity.current
        for op in operations:
            if not op.op_type.concerns_member or op.member is None:
                continue
            member = op.member
            in_coverage = member.ap.value in coverage

            if ring.tier == bottom_tier:
                if member.ap == node and op.op_type in (
                    TokenOperationType.MEMBER_JOIN,
                    TokenOperationType.MEMBER_HANDOFF,
                ):
                    entity.local_members.add(member)
                elif str(member.guid) in entity.local_members.guids() and (
                    member.ap != node
                    or op.op_type
                    in (TokenOperationType.MEMBER_LEAVE, TokenOperationType.MEMBER_FAILURE)
                ):
                    entity.local_members.remove(member.guid)

                if member.ap != node and member.ap in ring.members:
                    if op.op_type in (
                        TokenOperationType.MEMBER_JOIN,
                        TokenOperationType.MEMBER_HANDOFF,
                    ):
                        entity.neighbor_members.add(member)
                    else:
                        entity.neighbor_members.remove(member.guid)
                elif (
                    str(member.guid) in entity.neighbor_members.guids()
                    and member.ap not in ring.members
                ):
                    entity.neighbor_members.remove(member.guid)

            if op.op_type in (TokenOperationType.MEMBER_JOIN, TokenOperationType.MEMBER_HANDOFF):
                if in_coverage:
                    event = entity.ring_members.apply(op, now)
                elif str(member.guid) in entity.ring_members.guids():
                    removed = entity.ring_members.remove(member.guid)
                    event = (
                        self._event(op, node, now, len(entity.ring_members))
                        if removed and self.emit_prune_events
                        else None
                    )
                else:
                    event = None
            else:
                event = entity.ring_members.apply(op, now)
            if event is not None:
                events.append(event)
        return events

    @staticmethod
    def _event(
        op: TokenOperation, observer: NodeId, now: float, view_size: int
    ) -> MembershipEvent:
        return MembershipEvent(
            event_type=event_type_for(op.op_type),
            time=now,
            observer=observer,
            member=op.member,
            previous_ap=op.previous_ap,
            view_size=view_size,
        )

    # ------------------------------------------------------------------
    # entity failure and repair (hierarchy surgery shared by both drivers)
    # ------------------------------------------------------------------

    def fail_entity(self, node: "NodeId | str", now: float = 0.0) -> None:
        """Mark a network entity as crashed.

        Detection and repair happen lazily, when a token round next tries to
        visit the failed entity (Section 5.2: detection by token
        retransmission, local repair by exclusion).  Use
        :meth:`detect_and_repair` to force immediate handling.
        """
        key = coerce_node(node)
        if key not in self.entities:
            raise ProtocolError(f"unknown network entity {node}")
        self.failed.add(key)
        self.metrics.counter("faults.entity").increment()
        self.trace.record(now, "fault", str(key), "entity crashed")

    def exclude_entity(
        self,
        failed: NodeId,
        repoint_survivors: bool = False,
        patch_parent_link: bool = False,
    ) -> LogicalRing:
        """Exclude ``failed`` from its ring and patch the hierarchy around it.

        ``repoint_survivors`` re-installs the surviving members' previous /
        next / leader pointers from global knowledge (structural driver);
        the message-passing driver leaves survivors to learn the repaired
        view from the token (Totem-style) and passes ``False``.
        ``patch_parent_link`` moves the failed node's slot in its parent's
        child list to the ring's (new) leader.
        """
        ring = self.hierarchy.ring_of(failed)
        was_leader = ring.remove_member(failed)
        if was_leader:
            ring.elect_leader()
        self.hierarchy.ring_of_node.pop(failed, None)
        self.invalidate_coverage()

        if repoint_survivors and ring.leader is not None:
            for member in ring.members:
                self.entity(member).set_ring_pointers(
                    ring_id=ring.ring_id,
                    leader=ring.leader,
                    previous=ring.predecessor(member),
                    next_node=ring.successor(member),
                )

        # Child rings of the failed node re-attach to the ring's (new) leader.
        orphan_rings = self.hierarchy.child_rings.pop(failed, [])
        new_parent = ring.leader
        if orphan_rings and new_parent is not None:
            for ring_id in orphan_rings:
                self.hierarchy.parent_node[ring_id] = new_parent
                self.hierarchy.child_rings.setdefault(new_parent, []).append(ring_id)
                child_leader = self.hierarchy.ring(ring_id).leader
                if child_leader is not None and new_parent in self.entities:
                    self.entities[new_parent].add_child(child_leader)
                    if child_leader in self.entities:
                        self.entities[child_leader].set_parent(new_parent)

        # The failed entity's parent loses a child pointer; the ring's (new)
        # leader takes over as that parent's child so the upward path survives.
        if patch_parent_link:
            parent = self.hierarchy.parent_node.get(ring.ring_id)
            if parent is not None and parent in self.entities:
                self.entities[parent].remove_child(failed)
                if ring.leader is not None:
                    self.entities[parent].add_child(ring.leader)
                    self.entities[ring.leader].set_parent(parent)
        return ring

    def repair_ring(
        self,
        ring: LogicalRing,
        failed: NodeId,
        detector: Optional[NodeId],
        now: float,
    ) -> List[TokenOperation]:
        """Structural local repair: exclude ``failed`` and report the losses."""
        self.exclude_entity(failed, repoint_survivors=True, patch_parent_link=True)
        failure_source = detector if detector is not None else ring.leader
        ops = self.failure_operations(failed, failure_source)
        self.metrics.counter("repairs.ring").increment()
        self.trace.record(now, "repair", str(failed), f"excluded from ring {ring.ring_id}")
        self._salvage_queue(ring, failed, detector, now)
        return ops

    def _salvage_queue(
        self, ring: LogicalRing, failed: NodeId, detector: Optional[NodeId], now: float
    ) -> None:
        """Move the excised entity's undrained MQ to a surviving ring member.

        Operations delivered to an entity are marked in the ring's seen-set
        at send time, so the sender will never retransmit them — if they die
        with the entity's queue they are lost *silently* (any resend would be
        filtered as a duplicate).  The surviving member inherits them; the
        seen-marking stays valid because heir and victim share the ring.
        """
        victim = self.entities.get(failed)
        if victim is None:
            return
        salvaged = victim.mq.drain_entries()
        if not salvaged:
            return
        heir = detector if detector is not None else ring.leader
        if heir is None or heir in self.failed or heir not in self.entities:
            # Whole ring died: nothing in this ring can carry the operations.
            self.metrics.counter("repairs.mq_orphaned").increment(len(salvaged))
            self.trace.record(
                now, "repair", str(failed), f"{len(salvaged)} queued ops orphaned"
            )
            return
        heir_entity = self.entity(heir)
        for entry in salvaged:
            heir_entity.mq.insert(entry.operation, sender=entry.sender, now=now)
        self.metrics.counter("repairs.mq_salvaged").increment(len(salvaged))
        self.trace.record(
            now, "repair", str(failed), f"{len(salvaged)} queued ops salvaged to {heir}"
        )

    def detect_and_repair(self, node: "NodeId | str", now: float = 0.0) -> List[TokenOperation]:
        """Immediately detect a failed entity and repair its ring."""
        key = coerce_node(node)
        if key not in self.failed:
            raise ProtocolError(f"entity {node} has not failed")
        if not self.hierarchy.has_node(key):
            return []  # already repaired away
        ring = self.hierarchy.ring_of(key)
        detector = None
        for candidate in ring.members:
            if candidate != key and candidate not in self.failed:
                detector = candidate
                break
        ops = self.repair_ring(ring, key, detector, now)
        if detector is not None:
            for op in ops:
                self.entity(detector).mq.insert(op, sender=detector, now=now)
                self.ring_seen[ring.ring_id].add(op.sequence)
        return ops

    # ------------------------------------------------------------------
    # the one-round algorithm (structural stepping)
    # ------------------------------------------------------------------

    def run_round(
        self,
        ring_id: str,
        holder: Optional["NodeId | str"] = None,
        now: float = 0.0,
    ) -> RoundResult:
        """Run one token round in ``ring_id`` (Figure 3)."""
        ring = self.hierarchy.ring(ring_id)
        if ring.is_empty:
            raise ProtocolError(f"ring {ring_id!r} has no members")
        holder_id = coerce_node(holder) if holder is not None else self.pick_holder(ring)
        if holder_id not in ring.members:
            raise ProtocolError(f"holder {holder_id} is not a member of ring {ring_id!r}")
        if holder_id in self.failed:
            raise ProtocolError(f"holder {holder_id} has failed")

        holder_entity = self.entity(holder_id)
        # Inlined drain_for_round, reusing the cached ring-member set.  Peek
        # the lazy queue: a pure repair round has no queue to drain.
        holder_mq = holder_entity._mq_if_materialized()
        entries = holder_mq.drain_entries() if holder_mq is not None else ()
        operations = tuple(e.operation for e in entries)
        ring_members_now = self._ring_members_set(ring)
        child_senders = [
            e.sender
            for e in entries
            if e.sender != holder_id and e.sender not in ring_members_now
        ]
        # Single pass doing mark_seen + note_circulated together.
        seen = self.ring_seen[ring_id]
        applied = self.ring_applied_seq.setdefault(ring_id, {})
        for op in operations:
            seen.add(op.sequence)
            member = op.member
            if member is not None:
                guid = member.guid.value
                if op.sequence > applied.get(guid, 0):
                    applied[guid] = op.sequence

        token_id = next(self._token_ids)
        track_token = self.trace.enabled  # the token object itself is trace-only
        token: Optional[Token] = None
        if track_token:
            token = Token(
                group=self.hierarchy.group,
                holder=holder_id,
                ring_id=ring_id,
                operations=operations,
                token_id=token_id,
            )
        result = RoundResult(ring_id=ring_id, holder=holder_id, operations=operations)
        self._c_rounds_started._value += 1
        if track_token:
            self.trace.record(now, "round", str(holder_id), f"start {token.describe()}")

        # One compile per round: every visited member applies the same delta.
        use_batched = self.config.batched_apply
        batch: OperationBatch = self.compile_delta(operations) if use_batched else operations
        publish = self.event_bus.publish
        entities = self.entities
        failed = self.failed
        dispatch = self.dispatch
        has_entries = not use_batched or bool(batch.entries)
        is_bottom = ring.tier == self._bottom_tier
        disseminate_downward = self.config.disseminate_downward

        order = ring.members_from(holder_id)
        order_len = len(order)
        forwarded_up = False
        emit_token = dispatch.emits_token_messages
        prev_node = holder_id
        # Hot-loop accumulators and cache handles: coverage and the
        # ring-member set are re-validated per visit through their caches
        # (dict probes) so a repair triggered mid-round — by this ring's own
        # token or by a notification re-route — is visible to later visits,
        # exactly as in the uncached path.
        token_hops = 0
        notify_hops = 0
        retransmissions = 0
        visited = result.visited
        visited_append = visited.append
        ring_set_cache = self._ring_set_cache
        # Per-entry coverage verdicts, derived once per round and re-derived
        # only when hierarchy surgery (a repair, here or via a notification
        # re-route) bumps the coverage epoch — the equivalent of the old
        # coverage-set cache plus invalidation, without materialising sets.
        entry_coverage: Optional[List[bool]] = None
        coverage_epoch = -1
        index = 0
        while index < order_len:
            node = order[index]
            if node != holder_id:
                token_hops += 1
                if emit_token:
                    dispatch.token_hop(self, prev_node, node, now)
            if node in failed:
                # Detection by token retransmission, then local repair.  The
                # detector is the last *surviving* node the token visited
                # (``order[index - 1]`` may itself be failed when failures
                # are adjacent in ring order — handing it the salvaged MQ
                # would orphan the queued operations).
                retransmissions += self.config.token_retry_limit + 1
                detector = prev_node
                repair_ops = self.repair_ring(ring, node, detector, now)
                result.repaired.append(node)
                for op in repair_ops:
                    self.entity(detector).mq.insert(op, sender=detector, now=now)
                    self.ring_seen[ring_id].add(op.sequence)
                index += 1
                continue

            if track_token:
                token = token.record_visit(node)
            visited_append(node)
            entity = entities[node]
            if use_batched:
                if has_entries:
                    if coverage_epoch != self._coverage_epoch:
                        coverage_epoch = self._coverage_epoch
                        entry_coverage = self._entry_coverage(ring_id, batch)
                    if is_bottom:
                        cached_set = ring_set_cache.get(ring_id)
                        if cached_set is not None and cached_set[0] == ring.version:
                            member_set = cached_set[1]
                        else:
                            member_set = self._ring_members_set(ring)
                    else:
                        member_set = None
                    events = self._apply_delta_ctx(
                        entity, batch, now, entry_coverage, is_bottom, member_set
                    )
                else:
                    events = ()
            else:
                events = self._apply_per_op(entity, ring, operations, now)
            if events:
                for event in events:
                    publish(event)
                result.events.extend(events)
            entity.ring_ok = True  # Figure 3 line 09
            prev_node = node

            if operations:
                # Figure 3 lines 10-13: leader forwards to its parent
                # (inlined upward_target; ring.leader can change mid-round).
                if (
                    node == ring.leader
                    and entity.parent_ok
                    and entity.parent is not None
                ):
                    notify_hops += self.forward_notification(
                        node, entity.parent, operations, now
                    )
                    forwarded_up = True

                # Figure 3 lines 14-16: notify child rings.  Iterate a copy:
                # a notification to a crashed child repairs that child's ring
                # and may rewire this entity's child list mid-loop.
                if disseminate_downward and entity.children:
                    for child in list(entity.children):
                        if child in failed:
                            continue
                        notify_hops += self.forward_notification(
                            node, child, operations, now
                        )
            index += 1

        # Closing hop: the token travels from the last visited node back to the holder.
        if len(visited) >= 2:
            token_hops += 1
            if emit_token:
                self.dispatch.token_hop(self, prev_node, holder_id, now)
        result.token_hops = token_hops
        result.notify_hops = notify_hops
        result.retransmissions = retransmissions

        # If the ring leader failed mid-round (before its turn), the repaired
        # ring's new leader still has to report the operations to the parent.
        if operations and not forwarded_up and ring.leader is not None:
            leader_entity = self.entity(ring.leader)
            if ring.leader not in self.failed:
                parent_target = self.upward_target(leader_entity, ring.leader)
                if parent_target is not None:
                    result.notify_hops += self.forward_notification(
                        ring.leader, parent_target, operations, now
                    )

        # Figure 3 lines 17-20: Holder-Acknowledgement to originating children.
        if self.config.holder_ack_enabled and operations:
            for sender in self.ack_targets(child_senders):
                if sender in self.failed:
                    continue
                result.ack_hops += 1
                self._c_holder_ack.increment()
                if self.trace.enabled:
                    self.trace.record(now, "ack", str(holder_id), f"holder-ack to {sender}")
                self.dispatch.deliver_holder_ack(self, holder_id, sender, now)

        # Figure 3 lines 21-23: control of a fresh token moves to the next node.
        members = ring.members
        if members:
            idx = ring._index.get(holder_id)
            if idx is not None:
                nxt = idx + 1
                self._ring_holder[ring_id] = members[nxt if nxt < len(members) else 0]
            else:  # holder repaired away mid-round
                self._ring_holder[ring_id] = (
                    ring.leader if ring.leader is not None else members[0]
                )

        self._c_rounds_completed._value += 1
        self._c_hops_token._value += result.token_hops
        self._c_hops_notify._value += result.notify_hops
        self._c_hops_ack._value += result.ack_hops
        return result

    def pick_holder(self, ring: LogicalRing) -> NodeId:
        """The member that should hold the next round: current holder pointer,
        advanced to the first operational member with pending work (or the
        first operational member if none has work)."""
        start = self._ring_holder.get(ring.ring_id)
        candidates = (
            ring.members_from(start)
            if start is not None and start in ring.members
            else ring.members_in_order()
        )
        failed = self.failed
        entities = self.entities
        first_operational: Optional[NodeId] = None
        for node in candidates:
            if node in failed:
                continue
            if first_operational is None:
                first_operational = node
            if entities[node].has_queued_work():
                return node
        if first_operational is None:
            raise ProtocolError(f"ring {ring.ring_id!r} has no operational members")
        return first_operational

    def forward_notification(
        self, sender: NodeId, target: NodeId, operations: Sequence[TokenOperation], now: float
    ) -> int:
        """Insert operations into ``target``'s queue; returns 1 if a message was sent."""
        if target not in self.entities:
            return 0
        if target in self.failed:
            # The notification to a crashed parent/child times out (ParentOK /
            # ChildOK turns false): repair that entity's ring, re-attach, and
            # retry towards the surviving counterpart.
            if not self.hierarchy.has_node(target):
                return 0
            sender_entity = self.entity(sender)
            was_parent = sender_entity.parent == target
            target_ring = self.hierarchy.ring_of(target)
            self.detect_and_repair(target, now)
            if was_parent:
                new_target = self.entity(sender).parent
            else:
                new_target = target_ring.leader
            if new_target is None or new_target == target:
                return 0
            return self.forward_notification(sender, new_target, operations, now)
        target_ring_id = self.hierarchy.ring_of_node.get(target)
        if target_ring_id is None:  # no longer in any ring (repaired away)
            return 0
        fresh = self.fresh_for_ring(target_ring_id, operations)
        if not fresh:
            return 0
        # Mark seen at send time: the seen-set is the "at most one propagation
        # per ring" dedup, and a transport-backed dispatch keeps retrying a
        # lost notification until it lands, so marking early never strands ops.
        self.mark_seen(target_ring_id, fresh)
        self.dispatch.deliver_notification(self, sender, target, fresh, now)
        self._c_notifications.increment()
        if self.trace.enabled:
            self.trace.record(
                now,
                "notify",
                str(sender),
                f"{len(fresh)} op(s) to {target} (ring {target_ring_id})",
            )
        return 1

    # ------------------------------------------------------------------
    # propagation to quiescence
    # ------------------------------------------------------------------

    def pending_rings(self) -> List[str]:
        """Rings that currently have at least one queued operation.

        Candidates come from the dirty-ring set the per-queue ``on_enqueue``
        hooks maintain; each is verified against the actual queues (an insert
        may have aggregated away, or the only work may sit at a failed
        member) and cleaned candidates are unmarked.  Semantics match the
        original exhaustive scan exactly — only the cost differs.
        """
        dirty = self._dirty_rings
        if not dirty:
            return []
        pending: List[str] = []
        clean: List[str] = []
        failed = self.failed
        entities = self.entities
        rings = self.hierarchy.rings
        for ring_id in dirty:
            ring = rings.get(ring_id)
            has_work = False
            if ring is not None:
                for node in ring.members:
                    if node not in failed and entities[node].has_queued_work():
                        has_work = True
                        break
            if has_work:
                pending.append(ring_id)
            else:
                clean.append(ring_id)
        for ring_id in clean:
            dirty.discard(ring_id)
        # Bottom-up, then lexicographic: deterministic and matches the paper's
        # bottom-to-top propagation narrative.
        pending.sort(key=lambda rid: (rings[rid].tier, rid))
        return pending

    def propagate(self, now: float = 0.0, max_iterations: int = 10_000) -> PropagationReport:
        """Run token rounds until every message queue is empty."""
        report = PropagationReport()
        failed = self.failed
        entities = self.entities
        for _ in range(max_iterations):
            pending = self.pending_rings()
            if not pending:
                return report
            for ring_id in pending:
                ring = self.hierarchy.ring(ring_id)
                if all(node in failed for node in ring.members):
                    continue
                # Skip if the work was consumed by an earlier round this sweep.
                if not any(
                    node not in failed and entities[node].has_queued_work()
                    for node in ring.members
                ):
                    continue
                report.rounds.append(self.run_round(ring_id, now=now))
        raise ProtocolError(
            f"propagation did not converge within {max_iterations} iterations"
        )


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------

#: Available kernel implementations.  ``object`` is the reference kernel in
#: this module; ``columnar`` is the struct-of-arrays backend in
#: :mod:`repro.core.columnar` (bit-identical protocol state, with a
#: proven-no-op fast path for rounds that cannot change any view).
KERNEL_BACKENDS: Tuple[str, ...] = ("object", "columnar")


def create_kernel(
    hierarchy: RingHierarchy,
    *,
    backend: str = "object",
    store_payload: Optional[bytes] = None,
    **kwargs,
) -> TokenRoundKernel:
    """Construct a kernel for ``hierarchy`` with the selected backend.

    ``store_payload`` (columnar only) is the serialised
    :class:`repro.core.columnar.ColumnarStore` structural arrays shipped by
    a topology snapshot, so rehydration skips re-deriving them from the
    object graph.  All other keyword arguments pass straight through to the
    kernel constructor.
    """
    if backend not in KERNEL_BACKENDS:
        raise ProtocolError(
            f"unknown kernel backend {backend!r}; expected one of {KERNEL_BACKENDS}"
        )
    if backend == "columnar":
        # Imported lazily: the object backend must keep working on
        # interpreters without numpy.
        from repro.core.columnar import ColumnarKernel

        return ColumnarKernel(hierarchy, store_payload=store_payload, **kwargs)
    return TokenRoundKernel(hierarchy, **kwargs)
