"""Configuration objects for the protocol and the packaged simulation facade."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunables of the RGB protocol itself.

    Parameters
    ----------
    aggregate_mq:
        Whether network-entity message queues collapse successive operations
        about the same member (paper: "self-optimized for aggregating some
        successive messages into one").  The ablation benchmark turns this off.
    batched_apply:
        Whether token rounds compile their aggregated operations into one
        :class:`repro.core.deltas.MembershipDelta` applied to each visited
        entity in a single set-based pass (the default), or replay the seed's
        per-operation path (kept as the reference semantics and the
        scalability-ablation baseline).  Ring member lists are identical
        either way.  When one batch carries several operations about the same
        member — only possible with ``aggregate_mq=False``, since the queues
        otherwise net per member before a token is built — the batched path
        applies the *net* batch, so bottom-tier local/neighbour side effects
        of superseded intermediate operations follow the outcome aggregation
        would have produced.
    disseminate_downward:
        Whether membership changes are also pushed down the hierarchy with
        Notification-to-Child messages so every ring learns every change.
        The paper's hop-count model (Section 5.1) assumes this; turning it off
        gives the cheaper "bottom-to-top only" variant the conclusion sketches.
    token_timeout:
        How long a token sender waits for the receiver's acknowledgement
        before retransmitting (simulation time units).
    token_retry_limit:
        Retransmissions before the receiver is declared faulty and excluded
        from the ring (paper Section 5.2: single faults are detected by token
        retransmission and locally repaired).
    holder_ack_enabled:
        Whether the round holder sends Holder-Acknowledgement messages back to
        the children whose notifications it aggregated (Figure 3 lines 17–20).
    aggregation_delay:
        How long an entity waits after the first message lands in its queue
        before it asks for a token round, so that bursts aggregate.
    heartbeat_interval:
        When set, every ring leader starts an *empty* token round this often
        even if no membership change is pending.  The paper's token circulates
        perpetually, which is what lets silent entity failures be detected in
        otherwise idle rings; the message-passing engine approximates that
        with these periodic heartbeat rounds.  ``None`` disables heartbeats
        (the default for deterministic tests and hop-count measurements).
    """

    aggregate_mq: bool = True
    batched_apply: bool = True
    disseminate_downward: bool = True
    token_timeout: float = 60.0
    token_retry_limit: int = 2
    holder_ack_enabled: bool = True
    aggregation_delay: float = 5.0
    heartbeat_interval: float | None = None

    def __post_init__(self) -> None:
        if self.token_timeout <= 0:
            raise ValueError(f"token_timeout must be positive, got {self.token_timeout}")
        if self.token_retry_limit < 0:
            raise ValueError(f"token_retry_limit must be >= 0, got {self.token_retry_limit}")
        if self.aggregation_delay < 0:
            raise ValueError(f"aggregation_delay must be >= 0, got {self.aggregation_delay}")
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive or None, got {self.heartbeat_interval}"
            )


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of the packaged :class:`repro.core.simulation.RGBSimulation`.

    The facade builds a regular 4-tier topology, assembles the ring hierarchy
    over it and runs the protocol on the discrete-event substrate.

    Parameters
    ----------
    num_aps:
        Number of access proxies participating in the hierarchy.  The facade
        generates a 4-tier topology large enough to hold them and configures
        exactly ``num_aps`` proxies to run the protocol (the paper notes that
        only a portion of network entities need participate).
    ring_size:
        Target nodes per logical ring (the paper's ``r``).
    engine_mode:
        ``"structural"`` runs the deterministic reference engine
        (:class:`repro.core.one_round.OneRoundEngine`); ``"event"`` runs the
        message-passing engine over the discrete-event transport
        (:class:`repro.core.protocol.RGBProtocolCluster`).
    hosts_per_ap:
        Mobile hosts pre-attached to each access proxy at build time.
    group_id:
        Group identity used by every entity.
    seed:
        Master random seed for the run.
    protocol:
        Protocol tunables (see :class:`ProtocolConfig`).
    trace_enabled:
        Record a structured trace of protocol activity (costly for big runs).
    """

    num_aps: int = 25
    ring_size: int = 5
    hosts_per_ap: int = 2
    group_id: str = "group-0"
    seed: int = 0
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    trace_enabled: bool = False
    engine_mode: str = "structural"

    def __post_init__(self) -> None:
        if self.num_aps < 1:
            raise ValueError(f"num_aps must be >= 1, got {self.num_aps}")
        if self.ring_size < 2:
            raise ValueError(f"ring_size must be >= 2, got {self.ring_size}")
        if self.hosts_per_ap < 0:
            raise ValueError(f"hosts_per_ap must be >= 0, got {self.hosts_per_ap}")
        if not self.group_id:
            raise ValueError("group_id must be non-empty")
        if self.engine_mode not in ("structural", "event"):
            raise ValueError(
                f"engine_mode must be 'structural' or 'event', got {self.engine_mode!r}"
            )
