"""The Membership-Query algorithm (paper Section 4.4).

The paper distinguishes three membership maintenance schemes:

* **TMS** (Topmost Membership Scheme) — only the topmost tier maintains the
  global membership; a query finds any network entity, which forwards it to
  the topmost ring, and the answer comes back in a handful of messages but
  the topmost entities pay the storage and update cost.
* **BMS** (Bottommost Membership Scheme) — only the bottommost tier (the
  access-proxy ring leaders) maintains local membership; a query fans out to
  every bottommost ring leader and the answers are merged, which is cheap to
  maintain but expensive to query.
* **IMS** (Intermediate Membership Schemes) — membership is maintained at an
  intermediate tier; queries fan out only to that tier's ring leaders.

The query service works against either protocol engine (structural or
message-passing) through the small :class:`MembershipStore` protocol: it only
needs per-entity ring member views and the hierarchy structure.  Query cost is
reported in logical message hops so the ablation benchmark can compare the
schemes the way the paper discusses them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.core.hierarchy import RingHierarchy
from repro.core.identifiers import NodeId, coerce_node
from repro.core.member import MemberInfo
from repro.core.membership import MembershipView


class MembershipScheme(enum.Enum):
    """Where membership is maintained / queried from."""

    TMS = "topmost"
    BMS = "bottommost"
    IMS = "intermediate"


class MembershipStore(Protocol):
    """What the query service needs from a protocol engine."""

    hierarchy: RingHierarchy

    def entity(self, node: "NodeId | str"):  # pragma: no cover - protocol signature
        ...


@dataclass
class QueryResult:
    """Answer to one membership query."""

    scheme: MembershipScheme
    members: List[MemberInfo]
    message_hops: int
    entities_contacted: List[NodeId] = field(default_factory=list)
    answered_by_tier: Optional[int] = None
    _guids: Optional[List[str]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def guids(self) -> List[str]:
        """Sorted member GUID strings, computed once and cached.

        The member list is never mutated after the result is assembled, so
        the sort/stringify pass only needs to run on first access — a load
        harness draining thousands of results per batch must not pay it per
        touch (use :attr:`member_count` when only the size matters).
        """
        if self._guids is None:
            self._guids = sorted(str(m.guid) for m in self.members)
        return self._guids

    @property
    def member_count(self) -> int:
        """Size of the answer without materialising :attr:`guids`."""
        return len(self.members)

    def __len__(self) -> int:
        return len(self.members)


class MembershipQueryService:
    """Answers membership queries against a protocol engine's state.

    Parameters
    ----------
    store:
        A protocol engine exposing ``hierarchy`` and ``entity(node)`` with a
        ``ring_members`` view per entity (both :class:`OneRoundEngine` and
        :class:`RGBProtocolCluster` qualify — the latter via the adapter
        below).
    entry_point:
        The network entity the requesting application first contacts
        ("the requesting application tries to find some NE with GID").
        Defaults to a bottom-tier entity, the worst case for TMS.
    """

    def __init__(self, store: MembershipStore, entry_point: Optional["NodeId | str"] = None) -> None:
        self.store = store
        self.hierarchy = store.hierarchy
        if entry_point is None:
            self.entry_point = self.hierarchy.access_proxies()[0]
        else:
            self.entry_point = coerce_node(entry_point)
            if not self.hierarchy.has_node(self.entry_point):
                raise ValueError(f"entry point {entry_point} is not part of the hierarchy")
        # Routing memo, keyed per topology epoch: deriving the per-tier leader
        # fan-out set walks (and sorts) every ring of the tier, and the entry
        # point's tier costs a ring probe — pure re-derivation on every query
        # until a repair actually changes the hierarchy.  ``coverage_epoch``
        # (bumped by every repair/surgery) is the invalidation signal; stores
        # without one (no kernel underneath) keep the uncached behaviour.
        self._routing_epoch: Optional[int] = None
        self._tier_leaders_cache: Dict[int, List[NodeId]] = {}
        self._entry_tier_cache: Optional[int] = None
        self._top_cache: Optional[Tuple[NodeId, int]] = None

    # -- helpers -----------------------------------------------------------------

    def _view_of(self, node: NodeId) -> MembershipView:
        return self.store.entity(node).ring_members

    def _topology_epoch(self) -> Optional[int]:
        """The store's repair/surgery epoch, or None when it has none."""
        epoch = getattr(self.store, "coverage_epoch", None)
        if epoch is None:
            epoch = getattr(getattr(self.store, "kernel", None), "coverage_epoch", None)
        return epoch

    def _routing_generation(self) -> Optional[int]:
        """Validate (and roll) the memo against the current topology epoch."""
        epoch = self._topology_epoch()
        if epoch is None or epoch != self._routing_epoch:
            self._tier_leaders_cache.clear()
            self._entry_tier_cache = None
            self._top_cache = None
            self._routing_epoch = epoch
        return epoch

    def tier_leaders(self, tier: int) -> List[NodeId]:
        """Ring leaders of ``tier`` in ring-id order (the fan-out targets).

        Memoised per topology epoch: a repaired ring re-elects its leader
        through hierarchy surgery, which bumps the store's coverage epoch and
        drops the memo — the next query re-routes to the new leader.
        """
        epoch = self._routing_generation()
        leaders = self._tier_leaders_cache.get(tier)
        if leaders is None:
            leaders = [
                ring.leader
                for ring in self.hierarchy.rings_in_tier(tier)
                if ring.leader is not None
            ]
            if epoch is not None:
                self._tier_leaders_cache[tier] = leaders
        return leaders

    def _entry_tier(self) -> int:
        self._routing_generation()
        if self._entry_tier_cache is None:
            self._entry_tier_cache = self.hierarchy.ring_of(self.entry_point).tier
        return self._entry_tier_cache

    def _hops_to_tier(self, tier: int) -> int:
        """Message hops from the entry point up (or down) to ``tier``."""
        return abs(tier - self._entry_tier())

    # -- the three schemes -------------------------------------------------------------

    def query(self, scheme: MembershipScheme, intermediate_tier: Optional[int] = None) -> QueryResult:
        """Run one global membership query under ``scheme``."""
        if scheme is MembershipScheme.TMS:
            return self.query_topmost()
        if scheme is MembershipScheme.BMS:
            return self.query_bottommost()
        return self.query_intermediate(intermediate_tier)

    def query_topmost(self) -> QueryResult:
        """TMS: ask the topmost ring leader for the global view."""
        epoch = self._routing_generation()
        if self._top_cache is None:
            top_ring = self.hierarchy.topmost_ring()
            if top_ring.leader is None:
                raise RuntimeError("topmost ring has no leader")
            if epoch is not None:
                self._top_cache = (top_ring.leader, top_ring.tier)
            leader, top_tier = top_ring.leader, top_ring.tier
        else:
            leader, top_tier = self._top_cache
        # Request travels up the hierarchy to the topmost tier, answer comes back.
        hops = 2 * self._hops_to_tier(top_tier)
        members = list(self._view_of(leader).members())
        return QueryResult(
            scheme=MembershipScheme.TMS,
            members=members,
            message_hops=hops if hops > 0 else 2,
            entities_contacted=[leader],
            answered_by_tier=top_tier,
        )

    def query_bottommost(self) -> QueryResult:
        """BMS: fan out to every bottommost ring leader and merge the answers."""
        bottom = self.hierarchy.bottom_tier()
        leaders = self.tier_leaders(bottom)
        merged = MembershipView("query", self.entry_point, self.hierarchy.group)
        contacted: List[NodeId] = []
        hops = 0
        for leader in leaders:
            contacted.append(leader)
            # Request out to the leader and the local answer back.
            hops += 2 * max(1, self._hops_to_tier(bottom) + 1)
            merged.merge_from(self._view_of(leader))
        return QueryResult(
            scheme=MembershipScheme.BMS,
            members=merged.members(),
            message_hops=hops,
            entities_contacted=contacted,
            answered_by_tier=bottom,
        )

    def query_intermediate(self, tier: Optional[int] = None) -> QueryResult:
        """IMS: fan out to the ring leaders of an intermediate tier."""
        tiers = self.hierarchy.tiers()
        if len(tiers) < 3 and tier is None:
            # No strict intermediate tier exists; fall back to the tier below the top.
            tier = tiers[-1] if len(tiers) == 1 else tiers[-2]
        if tier is None:
            tier = tiers[len(tiers) // 2]
        if tier not in tiers:
            raise ValueError(f"tier {tier} does not exist in this hierarchy (tiers: {tiers})")
        leaders = self.tier_leaders(tier)
        merged = MembershipView("query", self.entry_point, self.hierarchy.group)
        contacted: List[NodeId] = []
        hops = 0
        for leader in leaders:
            contacted.append(leader)
            hops += 2 * max(1, self._hops_to_tier(tier))
            merged.merge_from(self._view_of(leader))
        return QueryResult(
            scheme=MembershipScheme.IMS,
            members=merged.members(),
            message_hops=hops,
            entities_contacted=contacted,
            answered_by_tier=tier,
        )

    # -- targeted lookups -----------------------------------------------------------------

    def locate_member(self, guid: str) -> Optional[MemberInfo]:
        """Find the current record of one member (TMS-style lookup)."""
        top_leader = self.hierarchy.topmost_ring().leader
        if top_leader is None:
            return None
        return self._view_of(top_leader).get(guid)

    def members_under(self, node: "NodeId | str") -> List[MemberInfo]:
        """Members within the coverage area of one network entity's ring."""
        key = coerce_node(node)
        return list(self._view_of(key).members())

    def maintenance_cost(self, scheme: MembershipScheme) -> Dict[str, int]:
        """Storage cost of a scheme: entities holding views and total records.

        TMS stores the global view at every topmost-ring entity; BMS stores
        local views at every bottommost entity; IMS at the chosen tier.  This
        is the space side of the trade-off Section 4.4 describes.
        """
        if scheme is MembershipScheme.TMS:
            tier = self.hierarchy.top_tier()
        elif scheme is MembershipScheme.BMS:
            tier = self.hierarchy.bottom_tier()
        else:
            tiers = self.hierarchy.tiers()
            tier = tiers[len(tiers) // 2]
        entities = [n for ring in self.hierarchy.rings_in_tier(tier) for n in ring.members]
        records = sum(len(self._view_of(n)) for n in entities)
        return {"tier": tier, "entities": len(entities), "records": records}
