"""Membership views and membership change events.

A :class:`MembershipView` is the list of currently operational members a
network entity believes are in the group — the paper's
``ListOfLocalMembers`` / ``ListOfRingMembers`` / ``ListOfNeighborMembers`` are
all instances with different scopes.  Views are updated by applying
:class:`repro.core.token.TokenOperation` records (what tokens carry) and emit
:class:`MembershipEvent` records describing the change for applications.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.identifiers import GloballyUniqueId, GroupId, NodeId
from repro.core.member import MemberInfo, MemberStatus
from repro.core.token import TokenOperation, TokenOperationType


class MembershipEventType(enum.Enum):
    """Kinds of membership change events exposed to applications."""

    JOIN = "join"
    LEAVE = "leave"
    HANDOFF = "handoff"
    FAILURE = "failure"
    VIEW_CHANGE = "view-change"


@dataclass(frozen=True)
class MembershipEvent:
    """One membership change as observed at a network entity."""

    event_type: MembershipEventType
    time: float
    observer: NodeId
    member: Optional[MemberInfo] = None
    previous_ap: Optional[NodeId] = None
    view_size: int = 0


_EVENT_FOR_OP = {
    TokenOperationType.MEMBER_JOIN: MembershipEventType.JOIN,
    TokenOperationType.MEMBER_LEAVE: MembershipEventType.LEAVE,
    TokenOperationType.MEMBER_HANDOFF: MembershipEventType.HANDOFF,
    TokenOperationType.MEMBER_FAILURE: MembershipEventType.FAILURE,
}


class MembershipView:
    """A set of operational member records with change application.

    The view is keyed by member GUID.  Applying an operation is idempotent:
    re-applying the same join or removal leaves the view unchanged and reports
    ``changed=False``, which is what makes the one-round algorithm safe to
    deliver the same aggregated operation to a node more than once (e.g. when
    a token is retransmitted).
    """

    def __init__(self, scope: str, owner: NodeId, group: GroupId) -> None:
        self.scope = scope
        self.owner = owner
        self.group = group
        self._members: Dict[GloballyUniqueId, MemberInfo] = {}
        self.version = 0

    # -- read side -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, guid: object) -> bool:
        if isinstance(guid, MemberInfo):
            return guid.guid in self._members
        if isinstance(guid, GloballyUniqueId):
            return guid in self._members
        return GloballyUniqueId(str(guid)) in self._members

    def get(self, guid: "GloballyUniqueId | str") -> Optional[MemberInfo]:
        key = guid if isinstance(guid, GloballyUniqueId) else GloballyUniqueId(str(guid))
        return self._members.get(key)

    def members(self) -> List[MemberInfo]:
        """Current members sorted by GUID (deterministic)."""
        return [self._members[k] for k in sorted(self._members, key=lambda g: g.value)]

    def guids(self) -> List[str]:
        return sorted(str(g) for g in self._members)

    def members_at(self, ap: "NodeId | str") -> List[MemberInfo]:
        """Members currently attached to access proxy ``ap``."""
        ap_value = ap.value if isinstance(ap, NodeId) else str(ap)
        return [m for m in self.members() if m.ap.value == ap_value]

    # -- write side -------------------------------------------------------------

    def add(self, member: MemberInfo) -> bool:
        """Add or refresh a member record.  Returns True if the view changed."""
        existing = self._members.get(member.guid)
        if existing == member:
            return False
        self._members[member.guid] = member
        self.version += 1
        return True

    def remove(self, guid: "GloballyUniqueId | str") -> bool:
        """Remove a member.  Returns True if it was present."""
        key = guid if isinstance(guid, GloballyUniqueId) else GloballyUniqueId(str(guid))
        if key not in self._members:
            return False
        del self._members[key]
        self.version += 1
        return True

    def apply(self, operation: TokenOperation, time: float) -> Optional[MembershipEvent]:
        """Apply one token operation; returns the event if the view changed.

        Network-entity operations (NE-Join/Leave/Failure) do not change the
        member view directly — they matter for the hierarchy layer — so they
        return ``None`` here.
        """
        if not operation.op_type.concerns_member or operation.member is None:
            return None
        member = operation.member
        changed: bool
        if operation.op_type is TokenOperationType.MEMBER_JOIN:
            changed = self.add(member.with_status(MemberStatus.OPERATIONAL))
        elif operation.op_type is TokenOperationType.MEMBER_HANDOFF:
            changed = self.add(member.with_status(MemberStatus.OPERATIONAL))
        elif operation.op_type is TokenOperationType.MEMBER_LEAVE:
            changed = self.remove(member.guid)
        elif operation.op_type is TokenOperationType.MEMBER_FAILURE:
            changed = self.remove(member.guid)
        else:  # pragma: no cover - exhaustive over member ops
            return None
        if not changed:
            return None
        return MembershipEvent(
            event_type=_EVENT_FOR_OP[operation.op_type],
            time=time,
            observer=self.owner,
            member=member,
            previous_ap=operation.previous_ap,
            view_size=len(self),
        )

    def apply_all(
        self, operations: Iterable[TokenOperation], time: float
    ) -> List[MembershipEvent]:
        """Apply several operations, returning the events that changed the view."""
        events: List[MembershipEvent] = []
        for operation in operations:
            event = self.apply(operation, time)
            if event is not None:
                events.append(event)
        return events

    # -- comparison ---------------------------------------------------------------

    def snapshot(self) -> Tuple[Tuple[str, str, str], ...]:
        """Hashable snapshot (guid, ap, status) used for agreement checks."""
        return tuple(
            (str(m.guid), str(m.ap), m.status.value) for m in self.members()
        )

    def agrees_with(self, other: "MembershipView") -> bool:
        """True when both views contain exactly the same member records."""
        return self.snapshot() == other.snapshot()

    def difference(self, other: "MembershipView") -> Dict[str, List[str]]:
        """GUIDs present in exactly one of the two views (for diagnostics)."""
        mine = set(self.guids())
        theirs = set(other.guids())
        return {
            "only_in_self": sorted(mine - theirs),
            "only_in_other": sorted(theirs - mine),
        }

    def merge_from(self, other: "MembershipView") -> int:
        """Union-merge ``other`` into this view; returns the number of additions.

        Used by the partition/merge extension and by the query service when
        assembling a global view from per-ring views under the BMS scheme.
        """
        added = 0
        for member in other.members():
            if self.add(member):
                added += 1
        return added

    def copy(self, scope: Optional[str] = None) -> "MembershipView":
        """Deep-enough copy of this view (records are immutable)."""
        clone = MembershipView(scope or self.scope, self.owner, self.group)
        for member in self.members():
            clone.add(member)
        clone.version = self.version
        return clone
