"""Membership views and membership change events.

A :class:`MembershipView` is the list of currently operational members a
network entity believes are in the group — the paper's
``ListOfLocalMembers`` / ``ListOfRingMembers`` / ``ListOfNeighborMembers`` are
all instances with different scopes.  Views are updated by applying
:class:`repro.core.token.TokenOperation` records (what tokens carry) and emit
:class:`MembershipEvent` records describing the change for applications.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.deltas import MembershipDelta
from repro.core.identifiers import GloballyUniqueId, GroupId, NodeId
from repro.core.member import MemberInfo, MemberStatus
from repro.core.token import TokenOperation, TokenOperationType


class MembershipEventType(enum.Enum):
    """Kinds of membership change events exposed to applications."""

    JOIN = "join"
    LEAVE = "leave"
    HANDOFF = "handoff"
    FAILURE = "failure"
    VIEW_CHANGE = "view-change"


@dataclass(frozen=True)
class MembershipEvent:
    """One membership change as observed at a network entity."""

    event_type: MembershipEventType
    time: float
    observer: NodeId
    member: Optional[MemberInfo] = None
    previous_ap: Optional[NodeId] = None
    view_size: int = 0


_EVENT_FOR_OP = {
    TokenOperationType.MEMBER_JOIN: MembershipEventType.JOIN,
    TokenOperationType.MEMBER_LEAVE: MembershipEventType.LEAVE,
    TokenOperationType.MEMBER_HANDOFF: MembershipEventType.HANDOFF,
    TokenOperationType.MEMBER_FAILURE: MembershipEventType.FAILURE,
}


def event_type_for(op_type: TokenOperationType) -> MembershipEventType:
    """The membership event type a member operation produces when it changes a view."""
    return _EVENT_FOR_OP[op_type]


#: Shared store of every empty view.  A million-proxy hierarchy creates three
#: views per entity and most never hold a member; pointing them all at one
#: immutable-by-convention dict keeps them read-probe-compatible (``in``,
#: ``len``, ``.get``) at zero per-view cost.  All mutation paths swap in a
#: private dict first (see ``_store``); nothing may ever write through this
#: reference.
_EMPTY_STORE: Dict[str, MemberInfo] = {}


class MembershipView:
    """A set of operational member records with change application.

    The view is keyed by member GUID.  Applying an operation is idempotent:
    re-applying the same join or removal leaves the view unchanged and reports
    ``changed=False``, which is what makes the one-round algorithm safe to
    deliver the same aggregated operation to a node more than once (e.g. when
    a token is retransmitted).
    """

    __slots__ = ("scope", "owner", "group", "_members", "version")

    def __init__(self, scope: str, owner: NodeId, group: GroupId) -> None:
        self.scope = scope
        self.owner = owner
        self.group = group
        # Keyed by the GUID's plain string value: str hashing is C-level and
        # cached, which matters because the kernel probes these dicts once per
        # delta entry per visited entity.
        self._members: Dict[str, MemberInfo] = _EMPTY_STORE
        self.version = 0

    def _store(self) -> Dict[str, MemberInfo]:
        """The private, writable member store (allocated on first write)."""
        members = self._members
        if members is _EMPTY_STORE:
            members = {}
            self._members = members
        return members

    def __getstate__(self):
        members = self._members
        return (
            self.scope,
            self.owner,
            self.group,
            None if members is _EMPTY_STORE else members,
            self.version,
        )

    def __setstate__(self, state) -> None:
        self.scope, self.owner, self.group, members, self.version = state
        self._members = _EMPTY_STORE if members is None else members

    @staticmethod
    def _key(guid: object) -> str:
        if isinstance(guid, str):
            return guid
        if isinstance(guid, GloballyUniqueId):
            return guid.value
        if isinstance(guid, MemberInfo):
            return guid.guid.value
        return str(guid)

    # -- read side -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, guid: object) -> bool:
        return self._key(guid) in self._members

    def get(self, guid: "GloballyUniqueId | str") -> Optional[MemberInfo]:
        return self._members.get(self._key(guid))

    def members(self) -> List[MemberInfo]:
        """Current members sorted by GUID (deterministic)."""
        return [self._members[k] for k in sorted(self._members)]

    def guids(self) -> List[str]:
        return sorted(self._members)

    def members_at(self, ap: "NodeId | str") -> List[MemberInfo]:
        """Members currently attached to access proxy ``ap``."""
        ap_value = ap.value if isinstance(ap, NodeId) else str(ap)
        return [m for m in self.members() if m.ap.value == ap_value]

    def raw_records(self) -> Dict[str, MemberInfo]:
        """The internal GUID-keyed record map — treat as read-only.

        The serving layer's capture hook: a snapshot frame merges leader
        views with one C-level ``dict.update`` per view instead of sorting
        each view through :meth:`members`.  Callers must copy before
        mutating; records themselves are immutable.
        """
        return self._members

    # -- write side -------------------------------------------------------------

    def add(self, member: MemberInfo) -> bool:
        """Add or refresh a member record.  Returns True if the view changed."""
        key = member.guid.value
        members = self._members
        existing = members.get(key)
        if existing == member:
            return False
        if members is _EMPTY_STORE:
            members = self._store()
        members[key] = member
        self.version += 1
        return True

    def remove(self, guid: "GloballyUniqueId | str") -> bool:
        """Remove a member.  Returns True if it was present."""
        if self._members.pop(self._key(guid), None) is None:
            return False
        self.version += 1
        return True

    def apply(self, operation: TokenOperation, time: float) -> Optional[MembershipEvent]:
        """Apply one token operation; returns the event if the view changed.

        Network-entity operations (NE-Join/Leave/Failure) do not change the
        member view directly — they matter for the hierarchy layer — so they
        return ``None`` here.
        """
        if not operation.op_type.concerns_member or operation.member is None:
            return None
        member = operation.member
        changed: bool
        if operation.op_type is TokenOperationType.MEMBER_JOIN:
            changed = self.add(member.with_status(MemberStatus.OPERATIONAL))
        elif operation.op_type is TokenOperationType.MEMBER_HANDOFF:
            changed = self.add(member.with_status(MemberStatus.OPERATIONAL))
        elif operation.op_type is TokenOperationType.MEMBER_LEAVE:
            changed = self.remove(member.guid)
        elif operation.op_type is TokenOperationType.MEMBER_FAILURE:
            changed = self.remove(member.guid)
        else:  # pragma: no cover - exhaustive over member ops
            return None
        if not changed:
            return None
        return MembershipEvent(
            event_type=_EVENT_FOR_OP[operation.op_type],
            time=time,
            observer=self.owner,
            member=member,
            previous_ap=operation.previous_ap,
            view_size=len(self),
        )

    def apply_all(
        self, operations: "MembershipDelta | Iterable[TokenOperation]", time: float
    ) -> List[MembershipEvent]:
        """Apply a batch of operations, returning the events that changed the view.

        Accepts either a plain operation sequence (the seed's per-operation
        path, kept as the reference semantics) or a pre-compiled
        :class:`repro.core.deltas.MembershipDelta`, which is applied in a
        single set-based pass (:meth:`apply_delta`).  Both paths leave the
        member list in the identical final state; the delta path only elides
        events for operations superseded within the same batch.
        """
        if isinstance(operations, MembershipDelta):
            return self.apply_delta(operations, time)
        events: List[MembershipEvent] = []
        for operation in operations:
            event = self.apply(operation, time)
            if event is not None:
                events.append(event)
        return events

    def apply_delta(self, delta: MembershipDelta, time: float) -> List[MembershipEvent]:
        """Single-pass application of a compiled delta (the batched hot path).

        One dict operation per net change; the per-member status rewrite was
        already done when the delta was compiled, so applying the same delta
        at every member of a ring shares that work instead of repeating it.
        """
        events: List[MembershipEvent] = []
        members = self._members
        changed = 0
        for entry in delta.entries:
            operation = entry.operation
            resolved = entry.resolved
            key = entry.guid_value
            if resolved is not None:
                if members.get(key) == resolved:
                    continue
                if members is _EMPTY_STORE:
                    members = self._store()
                members[key] = resolved
            else:
                if members.pop(key, None) is None:
                    continue
            changed += 1
            events.append(
                MembershipEvent(
                    event_type=_EVENT_FOR_OP[operation.op_type],
                    time=time,
                    observer=self.owner,
                    member=operation.member,
                    previous_ap=operation.previous_ap,
                    view_size=len(members),
                )
            )
        self.version += changed
        return events

    def bulk_add(self, members: Iterable[MemberInfo]) -> int:
        """Add many records in one pass; returns how many changed the view."""
        added = 0
        store = self._members
        for member in members:
            key = member.guid.value
            if store.get(key) != member:
                if store is _EMPTY_STORE:
                    store = self._store()
                store[key] = member
                added += 1
        self.version += added
        return added

    # -- comparison ---------------------------------------------------------------

    def snapshot(self) -> Tuple[Tuple[str, str, str], ...]:
        """Hashable snapshot (guid, ap, status) used for agreement checks."""
        return tuple(
            (str(m.guid), str(m.ap), m.status.value) for m in self.members()
        )

    def agrees_with(self, other: "MembershipView") -> bool:
        """True when both views contain exactly the same member records."""
        return self.snapshot() == other.snapshot()

    def difference(self, other: "MembershipView") -> Dict[str, List[str]]:
        """GUIDs present in exactly one of the two views (for diagnostics)."""
        mine = set(self.guids())
        theirs = set(other.guids())
        return {
            "only_in_self": sorted(mine - theirs),
            "only_in_other": sorted(theirs - mine),
        }

    def merge_from(self, other: "MembershipView") -> int:
        """Union-merge ``other`` into this view; returns the number of additions.

        Used by the partition/merge extension and by the query service when
        assembling a global view from per-ring views under the BMS scheme.
        """
        return self.bulk_add(other.members())

    def copy(self, scope: Optional[str] = None) -> "MembershipView":
        """Deep-enough copy of this view (records are immutable)."""
        clone = MembershipView(scope or self.scope, self.owner, self.group)
        for member in self.members():
            clone.add(member)
        clone.version = self.version
        return clone
