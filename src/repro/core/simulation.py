"""The :class:`RGBSimulation` facade — topology + hierarchy + protocol in one object.

This is the public entry point a downstream user starts from::

    from repro import RGBSimulation, SimulationConfig

    sim = RGBSimulation(SimulationConfig(num_aps=25, ring_size=5, seed=7))
    sim.build()
    member = sim.join_member(ap_index=0)
    sim.run_until_quiescent()
    assert member.guid in sim.global_membership()

The facade:

* generates a 4-tier mobile Internet topology big enough for the requested
  number of access proxies,
* assembles the ring-based hierarchy over the participating proxies,
* instantiates either the structural reference engine or the message-passing
  engine (``engine_mode``),
* exposes the application-facing membership operations (join, leave, handoff,
  member failure, entity crash), membership queries, handoff management,
  partition assessment and the collected metrics.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Union

from repro.core.config import ProtocolConfig, SimulationConfig
from repro.core.events import MembershipEventBus
from repro.core.handoff import HandoffManager, HandoffRecord
from repro.core.hierarchy import HierarchyBuilder, RingHierarchy
from repro.core.identifiers import GroupId, NodeId, coerce_guid, coerce_node
from repro.core.member import MemberInfo
from repro.core.membership import MembershipEvent, MembershipView
from repro.core.one_round import OneRoundEngine, PropagationReport
from repro.core.partition import PartitionManager, PartitionReport
from repro.core.protocol import RGBProtocolCluster
from repro.core.query import MembershipQueryService, MembershipScheme, QueryResult
from repro.core.ring import LogicalRing
from repro.sim.engine import SimulationEngine
from repro.sim.faults import FaultInjector
from repro.sim.mobility import AttachmentEvent, HandoffEvent, MobilityModel, MobilityTrace
from repro.sim.rng import RandomStreams
from repro.sim.stats import MetricRegistry
from repro.sim.trace import TraceRecorder
from repro.sim.transport import Transport
from repro.topology.architecture import TopologySpec
from repro.topology.generator import GeneratedTopology, TopologyGenerator


class SimulationNotBuilt(RuntimeError):
    """Raised when the facade is used before :meth:`RGBSimulation.build`."""


class RGBSimulation:
    """End-to-end packaged simulation of the RGB protocol."""

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config if config is not None else SimulationConfig()
        self.streams = RandomStreams(self.config.seed)
        self.metrics = MetricRegistry()
        self.trace = TraceRecorder(enabled=self.config.trace_enabled)
        self.event_bus = MembershipEventBus()
        self.engine = SimulationEngine()
        self.topology: Optional[GeneratedTopology] = None
        self.hierarchy: Optional[RingHierarchy] = None
        self.protocol: Optional[Union[OneRoundEngine, RGBProtocolCluster]] = None
        self.transport: Optional[Transport] = None
        self.faults: Optional[FaultInjector] = None
        self.partition_manager: Optional[PartitionManager] = None
        self._handoff_manager: Optional[HandoffManager] = None
        self._member_counter = 0
        self._member_location: Dict[str, NodeId] = {}
        self._built = False
        self._now = 0.0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _topology_spec(self) -> TopologySpec:
        r = self.config.ring_size
        aps_needed = self.config.num_aps
        num_br = max(1, math.ceil(aps_needed / (r * r)))
        return TopologySpec(
            num_border_routers=num_br,
            ags_per_br=r,
            aps_per_ag=r,
            hosts_per_ap=0,  # hosts are attached through join_member below
        )

    def build(self) -> "RGBSimulation":
        """Generate topology, assemble the hierarchy and start the protocol."""
        spec = self._topology_spec()
        self.topology = TopologyGenerator(spec, self.streams).generate()
        arch = self.topology.architecture

        participating = sorted(arch.access_proxies)[: self.config.num_aps]
        self.hierarchy = self._build_hierarchy(participating)
        self.partition_manager = PartitionManager(self.hierarchy)

        if self.config.engine_mode == "event":
            self.transport = Transport(
                self.engine,
                self.topology.network,
                self.streams,
                metrics=self.metrics,
                trace=self.trace,
            )
            self.protocol = RGBProtocolCluster(
                hierarchy=self.hierarchy,
                engine=self.engine,
                network=self.topology.network,
                transport=self.transport,
                config=self.config.protocol,
                metrics=self.metrics,
                event_bus=self.event_bus,
                trace=self.trace,
            )
            self.faults = FaultInjector(
                self.engine,
                self.topology.network,
                self.streams,
                metrics=self.metrics,
                trace=self.trace,
            )
        else:
            self.protocol = OneRoundEngine(
                hierarchy=self.hierarchy,
                config=self.config.protocol,
                metrics=self.metrics,
                event_bus=self.event_bus,
                trace=self.trace,
            )
        self._handoff_manager = HandoffManager(self.protocol)
        self._built = True

        # Pre-attach the configured number of hosts per access proxy.
        if self.config.hosts_per_ap > 0:
            for ap in self.access_proxies():
                for _ in range(self.config.hosts_per_ap):
                    self.join_member(ap_id=ap)
            self.run_until_quiescent()
        return self

    def _build_hierarchy(self, participating_aps: List[str]) -> RingHierarchy:
        """Rings over exactly the participating access proxies."""
        assert self.topology is not None
        arch = self.topology.architecture
        builder = HierarchyBuilder(self.config.group_id)
        hierarchy = RingHierarchy(group=GroupId(self.config.group_id))
        hierarchy.tier_labels.update(
            {1: "Access Proxy Tier (APT)", 2: "Access Gateway Tier (AGT)", 3: "Border Router Tier (BRT)"}
        )
        participating = set(participating_aps)

        aps_by_ag: Dict[str, List[str]] = {}
        for ap in sorted(participating):
            aps_by_ag.setdefault(arch.ap_parent[ap], []).append(ap)
        involved_ags = sorted(aps_by_ag)
        ags_by_br: Dict[str, List[str]] = {}
        for ag in involved_ags:
            ags_by_br.setdefault(arch.ag_parent[ag], []).append(ag)
        involved_brs = sorted(ags_by_br)

        br_ring = LogicalRing(ring_id="brt-ring", tier=3, members=[NodeId(b) for b in involved_brs])
        br_ring.elect_leader()
        hierarchy.add_ring(br_ring)
        for br in involved_brs:
            ag_ring = LogicalRing(
                ring_id=f"agt-ring-{br}",
                tier=2,
                members=[NodeId(a) for a in ags_by_br[br]],
            )
            ag_ring.elect_leader()
            hierarchy.add_ring(ag_ring, parent=NodeId(br))
        for ag in involved_ags:
            ap_ring = LogicalRing(
                ring_id=f"apt-ring-{ag}",
                tier=1,
                members=[NodeId(a) for a in aps_by_ag[ag]],
            )
            ap_ring.elect_leader()
            hierarchy.add_ring(ap_ring, parent=NodeId(ag))

        hierarchy.validate()
        del builder  # builder only supplies group coercion today; kept for parity
        return hierarchy

    def _require_built(self) -> None:
        if not self._built or self.protocol is None or self.hierarchy is None:
            raise SimulationNotBuilt("call RGBSimulation.build() before using the simulation")

    # ------------------------------------------------------------------
    # structural information
    # ------------------------------------------------------------------

    @property
    def kernel(self):
        """The shared token-round kernel behind whichever engine is active."""
        self._require_built()
        assert self.protocol is not None
        return self.protocol.kernel

    def access_proxies(self) -> List[str]:
        self._require_built()
        assert self.hierarchy is not None
        return [str(n) for n in self.hierarchy.access_proxies()]

    def ring_of(self, node_id: str) -> LogicalRing:
        self._require_built()
        assert self.hierarchy is not None
        return self.hierarchy.ring_of(node_id)

    @property
    def now(self) -> float:
        if self.config.engine_mode == "event":
            return self.engine.now
        return self._now

    # ------------------------------------------------------------------
    # membership operations
    # ------------------------------------------------------------------

    def _pick_ap(self, ap_index: Optional[int], ap_id: Optional[str]) -> NodeId:
        aps = self.access_proxies()
        if ap_id is not None:
            if ap_id not in aps:
                raise ValueError(f"{ap_id!r} is not a participating access proxy")
            return coerce_node(ap_id)
        index = 0 if ap_index is None else ap_index
        if not 0 <= index < len(aps):
            raise ValueError(f"ap_index {index} out of range (have {len(aps)} proxies)")
        return coerce_node(aps[index])

    def join_member(
        self,
        ap_index: Optional[int] = None,
        ap_id: Optional[str] = None,
        guid: Optional[str] = None,
    ) -> MemberInfo:
        """Join a new mobile host at an access proxy; returns its member record."""
        self._require_built()
        ap = self._pick_ap(ap_index, ap_id)
        if guid is None:
            guid = f"member-{self._member_counter:06d}"
            self._member_counter += 1
        assert self.protocol is not None
        if isinstance(self.protocol, OneRoundEngine):
            op = self.protocol.member_join(ap, guid, now=self._now)
            member = op.member
        else:
            member = self.protocol.join_member(ap, guid)
        assert member is not None
        self._member_location[str(member.guid)] = ap
        return member

    def join_members(
        self,
        count: int,
        ap_ids: Optional[List[str]] = None,
        guid_prefix: str = "member",
    ) -> List[MemberInfo]:
        """Capture ``count`` joins before a single propagation (batched path).

        The joins are spread round-robin over ``ap_ids`` (all participating
        proxies by default) and left in the access proxies' message queues, so
        one :meth:`run_until_quiescent` call aggregates them into shared token
        rounds instead of propagating each join individually.
        """
        self._require_built()
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        aps = ap_ids if ap_ids is not None else self.access_proxies()
        if not aps:
            raise ValueError("no access proxies to join at")
        members: List[MemberInfo] = []
        for index in range(count):
            guid = f"{guid_prefix}-{self._member_counter:06d}"
            self._member_counter += 1
            members.append(self.join_member(ap_id=aps[index % len(aps)], guid=guid))
        return members

    def leave_member(self, guid: str) -> None:
        """The named member voluntarily leaves the group."""
        self._require_built()
        ap = self._member_location.get(str(coerce_guid(guid)))
        if ap is None:
            raise ValueError(f"unknown member {guid!r}")
        assert self.protocol is not None
        if isinstance(self.protocol, OneRoundEngine):
            self.protocol.member_leave(ap, guid, now=self._now)
        else:
            self.protocol.leave_member(ap, guid)
        self._member_location.pop(str(coerce_guid(guid)), None)

    def fail_member(self, guid: str) -> None:
        """The named member is detected faulty by its access proxy."""
        self._require_built()
        ap = self._member_location.get(str(coerce_guid(guid)))
        if ap is None:
            raise ValueError(f"unknown member {guid!r}")
        assert self.protocol is not None
        if isinstance(self.protocol, OneRoundEngine):
            self.protocol.member_failure(ap, guid, now=self._now)
        else:
            self.protocol.fail_member(ap, guid)
        self._member_location.pop(str(coerce_guid(guid)), None)

    def handoff_member(self, guid: str, to_ap: str) -> HandoffRecord:
        """Move the named member to another access proxy."""
        self._require_built()
        key = str(coerce_guid(guid))
        old_ap = self._member_location.get(key)
        if old_ap is None:
            raise ValueError(f"unknown member {guid!r}")
        assert self._handoff_manager is not None
        record = self._handoff_manager.handoff(guid, old_ap, to_ap, now=self.now)
        self._member_location[key] = coerce_node(to_ap)
        return record

    def crash_entity(self, node_id: str) -> None:
        """Crash a network entity (access proxy, gateway or border router)."""
        self._require_built()
        assert self.protocol is not None
        if isinstance(self.protocol, OneRoundEngine):
            self.protocol.fail_entity(node_id, now=self._now)
        else:
            self.protocol.crash_entity(node_id)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run_until_quiescent(self, max_time: Optional[float] = None) -> Union[PropagationReport, int]:
        """Propagate all pending membership changes.

        Returns the :class:`PropagationReport` (structural mode) or the number
        of dispatched events (event mode).
        """
        self._require_built()
        assert self.protocol is not None
        if isinstance(self.protocol, OneRoundEngine):
            report = self.protocol.propagate(now=self._now)
            self._now += 1.0
            return report
        if max_time is None and self.config.protocol.heartbeat_interval is not None:
            # Heartbeat rounds reschedule themselves forever, so an unbounded
            # run would never drain the event queue; give it a generous window.
            max_time = self.engine.now + 20.0 * self.config.protocol.heartbeat_interval
        return self.engine.run(until=max_time)

    def apply_mobility_trace(self, trace: MobilityTrace) -> Dict[str, int]:
        """Replay a mobility trace as join / handoff / leave operations."""
        self._require_built()
        counts = {"joins": 0, "handoffs": 0, "leaves": 0, "skipped": 0}
        for event in trace.all_events():
            if isinstance(event, AttachmentEvent):
                if event.attach:
                    self.join_member(ap_id=self._nearest_participating(event.ap_id), guid=event.host_id)
                    counts["joins"] += 1
                else:
                    try:
                        self.leave_member(event.host_id)
                        counts["leaves"] += 1
                    except ValueError:
                        counts["skipped"] += 1
            elif isinstance(event, HandoffEvent):
                try:
                    self.handoff_member(event.host_id, self._nearest_participating(event.to_ap))
                    counts["handoffs"] += 1
                except ValueError:
                    counts["skipped"] += 1
            self.run_until_quiescent()
        return counts

    def _nearest_participating(self, ap_id: str) -> str:
        aps = self.access_proxies()
        if ap_id in aps:
            return ap_id
        # Deterministic fallback: hash the requested id onto a participating proxy.
        return aps[hash(ap_id) % len(aps)]

    def default_mobility_model(
        self, mean_residency: float = 200.0, mean_session: float = 2000.0
    ) -> MobilityModel:
        """A mobility model over the participating proxies with ring neighbourhoods."""
        self._require_built()
        assert self.hierarchy is not None
        neighbor_map = {}
        for ap in self.access_proxies():
            ring = self.hierarchy.ring_of(ap)
            neighbor_map[ap] = [str(n) for n in ring.members if str(n) != ap]
        return MobilityModel(
            ap_ids=self.access_proxies(),
            streams=self.streams,
            neighbor_map=neighbor_map,
            mean_residency=mean_residency,
            mean_session=mean_session,
        )

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def global_membership(self) -> MembershipView:
        """The global membership view maintained at the topmost ring leader."""
        self._require_built()
        assert self.protocol is not None and self.hierarchy is not None
        leader = self.hierarchy.topmost_ring().leader
        assert leader is not None
        return self.protocol.entity(leader).ring_members.copy("global")

    def membership_events(self) -> List[MembershipEvent]:
        """Events observed at the topmost ring leader (the canonical stream)."""
        self._require_built()
        assert self.hierarchy is not None
        leader = self.hierarchy.topmost_ring().leader
        return [e for e in self.event_bus.history if e.observer == leader]

    def query(self, scheme: MembershipScheme = MembershipScheme.TMS) -> QueryResult:
        """Run a membership query under the given maintenance scheme."""
        self._require_built()
        assert self.protocol is not None
        service = MembershipQueryService(self.protocol)
        return service.query(scheme)

    def handoff_statistics(self) -> Dict[str, float]:
        self._require_built()
        assert self._handoff_manager is not None
        return self._handoff_manager.summary()

    def partition_report(self) -> PartitionReport:
        """Assess the current partitioning of the hierarchy."""
        self._require_built()
        assert self.partition_manager is not None and self.protocol is not None
        if isinstance(self.protocol, OneRoundEngine):
            operational = self.protocol.operational_entities()
        else:
            assert self.topology is not None
            operational = [
                NodeId(n.node_id)
                for n in self.topology.network.nodes()
                if n.is_operational and self.hierarchy is not None and self.hierarchy.has_node(n.node_id)
            ]
        return self.partition_manager.assess(operational, now=self.now)

    def metric_snapshot(self) -> Dict[str, object]:
        return self.metrics.snapshot()
