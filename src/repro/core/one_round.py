"""The One-Round Token Passing Membership algorithm (paper Section 4.3, Figure 3).

This module is the *structural* driver over the unified
:class:`repro.core.kernel.TokenRoundKernel`: it steps token rounds
deterministically (shared memory, zero latency) over a
:class:`repro.core.hierarchy.RingHierarchy` and the per-entity local state.
It is the reference implementation used by

* the quickstart / deterministic semantics tests,
* the hop-count measurement that validates Table I
  (:mod:`repro.analysis.hopcount_sim`), and
* the :class:`repro.core.simulation.RGBSimulation` facade, which drives it
  from timed mobility / fault events.

The message-passing, latency-aware driver that exercises the transport and
failure-detection timers lives in :mod:`repro.core.protocol`; both share the
kernel's round state machine (drain, circulation, notification/ack routing,
seen-set dedup, batched delta application).

Execution model
---------------
Membership changes are captured at access proxies and inserted into their
message queues.  :meth:`OneRoundEngine.propagate` then repeatedly runs token
rounds (Figure 3) in every ring that has pending work until all queues drain:

1. the round holder drains its queue into the token's aggregated operations;
2. the token visits every ring member in circulation order; each member
   executes the operations against its member lists and sets ``RingOK``;
3. when the visiting member is the ring leader and ``ParentOK`` holds, the
   operations are inserted into the parent node's queue
   (Notification-to-Parent), which is how changes climb the hierarchy;
4. members that are parents of child rings insert the operations into the
   child leaders' queues (Notification-to-Child) when downward dissemination
   is enabled;
5. when the token returns to the holder, Holder-Acknowledgements are sent to
   the children whose notifications the holder aggregated, and control of a
   fresh token passes to the holder's next neighbour.

Every ring processes a given operation at most once (notification insertion
is filtered against the target ring's seen-set), which is what the paper's
"at most one membership change message propagated along a ring" consistency
argument and its hop-count model both assume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.config import ProtocolConfig
from repro.core.entity import NetworkEntityState
from repro.core.events import MembershipEventBus
from repro.core.hierarchy import RingHierarchy
from repro.core.identifiers import GloballyUniqueId, NodeId, coerce_node
from repro.core.kernel import (
    PropagationReport,
    ProtocolError,
    RoundResult,
    create_kernel,
)
from repro.core.member import MemberInfo
from repro.core.token import TokenOperation
from repro.sim.stats import MetricRegistry
from repro.sim.trace import TraceRecorder

__all__ = [
    "OneRoundEngine",
    "PropagationReport",
    "ProtocolError",
    "RoundResult",
]


class OneRoundEngine:
    """Reference execution of the RGB membership protocol.

    A thin structural driver: application-facing capture operations plus
    synchronous stepping of the shared :class:`TokenRoundKernel`.

    Parameters
    ----------
    hierarchy:
        The ring-based hierarchy to run over.  The engine mutates it when it
        repairs rings after entity failures.
    config:
        Protocol tunables.
    metrics, event_bus, trace:
        Optional shared instrumentation.
    backend:
        Kernel implementation: ``"object"`` (the reference kernel) or
        ``"columnar"`` (the struct-of-arrays backend in
        :mod:`repro.core.columnar`; identical protocol state, large-scale
        propagation speedup).
    """

    def __init__(
        self,
        hierarchy: RingHierarchy,
        config: Optional[ProtocolConfig] = None,
        metrics: Optional[MetricRegistry] = None,
        event_bus: Optional[MembershipEventBus] = None,
        trace: Optional[TraceRecorder] = None,
        backend: str = "object",
    ) -> None:
        self.kernel = create_kernel(
            hierarchy,
            backend=backend,
            config=config,
            metrics=metrics,
            event_bus=event_bus,
            trace=trace,
            emit_prune_events=True,
        )
        self.hierarchy = hierarchy

    # -- shared instrumentation (kernel-owned) -----------------------------------

    @property
    def config(self) -> ProtocolConfig:
        return self.kernel.config

    @property
    def metrics(self) -> MetricRegistry:
        return self.kernel.metrics

    @property
    def event_bus(self) -> MembershipEventBus:
        return self.kernel.event_bus

    @property
    def trace(self) -> TraceRecorder:
        return self.kernel.trace

    @property
    def entities(self) -> Dict[NodeId, NetworkEntityState]:
        return self.kernel.entities

    @property
    def _ring_holder(self) -> Dict[str, NodeId]:
        """Per-ring next-holder pointers (kernel-owned; kept for back-compat)."""
        return self.kernel._ring_holder

    # ------------------------------------------------------------------
    # entity access
    # ------------------------------------------------------------------

    def entity(self, node: "NodeId | str") -> NetworkEntityState:
        return self.kernel.entity(node)

    def is_operational(self, node: "NodeId | str") -> bool:
        return self.kernel.is_operational(node)

    def operational_entities(self) -> List[NodeId]:
        return self.kernel.operational_entities()

    def global_membership(self) -> List[MemberInfo]:
        """The global member list as maintained at the topmost ring leader."""
        top = self.hierarchy.topmost_ring()
        leader = top.leader
        if leader is None:
            raise ProtocolError("topmost ring has no leader")
        return self.entity(leader).ring_members.members()

    def global_guids(self) -> List[str]:
        return [str(m.guid) for m in self.global_membership()]

    def ring_agreement(self, ring_id: str) -> bool:
        """True when every operational member of the ring has the same view."""
        ring = self.hierarchy.ring(ring_id)
        views = [
            self.entity(node).ring_members
            for node in ring.members
            if node not in self.kernel.failed
        ]
        if len(views) <= 1:
            return True
        first = views[0]
        return all(first.agrees_with(view) for view in views[1:])

    # ------------------------------------------------------------------
    # capture of membership changes (what access proxies do)
    # ------------------------------------------------------------------

    def member_join(
        self, ap: "NodeId | str", guid: "GloballyUniqueId | str", now: float = 0.0
    ) -> TokenOperation:
        """A mobile host joins the group at access proxy ``ap``."""
        ap_id = coerce_node(ap)
        if ap_id in self.kernel.failed:
            raise ProtocolError(f"cannot join at failed access proxy {ap_id}")
        return self.kernel.capture(ap_id, self.kernel.make_join_op(ap_id, guid), now)

    def member_leave(
        self, ap: "NodeId | str", guid: "GloballyUniqueId | str", now: float = 0.0
    ) -> TokenOperation:
        """A mobile host voluntarily leaves the group."""
        ap_id = coerce_node(ap)
        return self.kernel.capture(ap_id, self.kernel.make_leave_op(ap_id, guid), now)

    def member_failure(
        self, ap: "NodeId | str", guid: "GloballyUniqueId | str", now: float = 0.0
    ) -> TokenOperation:
        """A mobile host is detected faulty by its access proxy."""
        ap_id = coerce_node(ap)
        return self.kernel.capture(ap_id, self.kernel.make_failure_op(ap_id, guid), now)

    def member_handoff(
        self,
        guid: "GloballyUniqueId | str",
        old_ap: "NodeId | str",
        new_ap: "NodeId | str",
        now: float = 0.0,
    ) -> TokenOperation:
        """A mobile host hands off from ``old_ap`` to ``new_ap``."""
        new_id = coerce_node(new_ap)
        if new_id in self.kernel.failed:
            raise ProtocolError(f"cannot hand off to failed access proxy {new_id}")
        op = self.kernel.make_handoff_op(guid, old_ap, new_id)
        return self.kernel.capture(new_id, op, now)

    def capture_many(
        self, operations: "List[tuple]", now: float = 0.0
    ) -> List[TokenOperation]:
        """Capture a batch of ``(kind, *args)`` changes before one propagation.

        ``kind`` is one of ``"join"``, ``"leave"``, ``"failure"`` (args:
        ``ap, guid``) or ``"handoff"`` (args: ``guid, old_ap, new_ap``).
        Queued changes aggregate into the same token rounds, which is the
        batched capture path the large-scale workloads use.
        """
        captured: List[TokenOperation] = []
        dispatch = {
            "join": self.member_join,
            "leave": self.member_leave,
            "failure": self.member_failure,
            "handoff": self.member_handoff,
        }
        for kind, *args in operations:
            try:
                handler = dispatch[kind]
            except KeyError:
                raise ProtocolError(f"unknown capture kind {kind!r}") from None
            captured.append(handler(*args, now=now))
        return captured

    # ------------------------------------------------------------------
    # entity failure and repair
    # ------------------------------------------------------------------

    def fail_entity(self, node: "NodeId | str", now: float = 0.0) -> None:
        """Mark a network entity as crashed (lazy detection; see the kernel)."""
        self.kernel.fail_entity(node, now)

    def detect_and_repair(self, node: "NodeId | str", now: float = 0.0) -> List[TokenOperation]:
        """Immediately detect a failed entity and repair its ring."""
        return self.kernel.detect_and_repair(node, now)

    # ------------------------------------------------------------------
    # round execution and propagation (kernel-stepped)
    # ------------------------------------------------------------------

    def run_round(
        self,
        ring_id: str,
        holder: Optional["NodeId | str"] = None,
        now: float = 0.0,
    ) -> RoundResult:
        """Run one token round in ``ring_id`` (Figure 3)."""
        return self.kernel.run_round(ring_id, holder=holder, now=now)

    def pending_rings(self) -> List[str]:
        """Rings that currently have at least one queued operation."""
        return self.kernel.pending_rings()

    def propagate(self, now: float = 0.0, max_iterations: int = 10_000) -> PropagationReport:
        """Run token rounds until every message queue is empty."""
        return self.kernel.propagate(now=now, max_iterations=max_iterations)

    # ------------------------------------------------------------------
    # convenience wrappers used by examples and the facade
    # ------------------------------------------------------------------

    def join_and_propagate(
        self, ap: "NodeId | str", guid: "GloballyUniqueId | str", now: float = 0.0
    ) -> PropagationReport:
        self.member_join(ap, guid, now)
        return self.propagate(now)

    def leave_and_propagate(
        self, ap: "NodeId | str", guid: "GloballyUniqueId | str", now: float = 0.0
    ) -> PropagationReport:
        self.member_leave(ap, guid, now)
        return self.propagate(now)

    def handoff_and_propagate(
        self,
        guid: "GloballyUniqueId | str",
        old_ap: "NodeId | str",
        new_ap: "NodeId | str",
        now: float = 0.0,
    ) -> PropagationReport:
        self.member_handoff(guid, old_ap, new_ap, now)
        return self.propagate(now)
