"""The One-Round Token Passing Membership algorithm (paper Section 4.3, Figure 3).

This module contains the *structural* protocol engine: it executes token
rounds deterministically over a :class:`repro.core.hierarchy.RingHierarchy`
and the per-entity local state, without going through the discrete-event
transport.  It is the reference implementation used by

* the quickstart / deterministic semantics tests,
* the hop-count measurement that validates Table I
  (:mod:`repro.analysis.hopcount_sim`), and
* the :class:`repro.core.simulation.RGBSimulation` facade, which drives it
  from timed mobility / fault events.

The message-passing, latency-aware engine that exercises the transport and
failure-detection timers lives in :mod:`repro.core.protocol`.

Execution model
---------------
Membership changes are captured at access proxies and inserted into their
message queues.  :meth:`OneRoundEngine.propagate` then repeatedly runs token
rounds (Figure 3) in every ring that has pending work until all queues drain:

1. the round holder drains its queue into the token's aggregated operations;
2. the token visits every ring member in circulation order; each member
   executes the operations against its member lists and sets ``RingOK``;
3. when the visiting member is the ring leader and ``ParentOK`` holds, the
   operations are inserted into the parent node's queue
   (Notification-to-Parent), which is how changes climb the hierarchy;
4. members that are parents of child rings insert the operations into the
   child leaders' queues (Notification-to-Child) when downward dissemination
   is enabled;
5. when the token returns to the holder, Holder-Acknowledgements are sent to
   the children whose notifications the holder aggregated, and control of a
   fresh token passes to the holder's next neighbour.

Every ring processes a given operation at most once (notification insertion
is filtered against the target ring's seen-set), which is what the paper's
"at most one membership change message propagated along a ring" consistency
argument and its hop-count model both assume.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.config import ProtocolConfig
from repro.core.entity import NetworkEntityState
from repro.core.events import MembershipEventBus
from repro.core.hierarchy import RingHierarchy
from repro.core.identifiers import GloballyUniqueId, NodeId, coerce_guid, coerce_node
from repro.core.member import MemberInfo, MemberStatus
from repro.core.membership import MembershipEvent
from repro.core.ring import LogicalRing
from repro.core.token import Token, TokenOperation, TokenOperationType
from repro.sim.stats import MetricRegistry
from repro.sim.trace import TraceRecorder


class ProtocolError(RuntimeError):
    """Raised for invalid protocol-level requests."""


@dataclass
class RoundResult:
    """Outcome of one token round in one ring."""

    ring_id: str
    holder: NodeId
    operations: Tuple[TokenOperation, ...]
    token_hops: int = 0
    notify_hops: int = 0
    ack_hops: int = 0
    retransmissions: int = 0
    visited: List[NodeId] = field(default_factory=list)
    repaired: List[NodeId] = field(default_factory=list)
    events: List[MembershipEvent] = field(default_factory=list)

    @property
    def hop_count(self) -> int:
        """Hops counted the way the paper's Section 5.1 model counts them."""
        return self.token_hops + self.notify_hops


@dataclass
class PropagationReport:
    """Aggregate outcome of :meth:`OneRoundEngine.propagate`."""

    rounds: List[RoundResult] = field(default_factory=list)

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def token_hops(self) -> int:
        return sum(r.token_hops for r in self.rounds)

    @property
    def notify_hops(self) -> int:
        return sum(r.notify_hops for r in self.rounds)

    @property
    def ack_hops(self) -> int:
        return sum(r.ack_hops for r in self.rounds)

    @property
    def retransmissions(self) -> int:
        return sum(r.retransmissions for r in self.rounds)

    @property
    def hop_count(self) -> int:
        """Token hops plus notification hops (the paper's HopCount)."""
        return self.token_hops + self.notify_hops

    @property
    def events(self) -> List[MembershipEvent]:
        out: List[MembershipEvent] = []
        for r in self.rounds:
            out.extend(r.events)
        return out

    @property
    def repaired(self) -> List[NodeId]:
        out: List[NodeId] = []
        for r in self.rounds:
            out.extend(r.repaired)
        return out

    @property
    def rings_involved(self) -> Set[str]:
        return {r.ring_id for r in self.rounds}


class OneRoundEngine:
    """Reference execution of the RGB membership protocol.

    Parameters
    ----------
    hierarchy:
        The ring-based hierarchy to run over.  The engine mutates it when it
        repairs rings after entity failures.
    config:
        Protocol tunables.
    metrics, event_bus, trace:
        Optional shared instrumentation.
    """

    def __init__(
        self,
        hierarchy: RingHierarchy,
        config: Optional[ProtocolConfig] = None,
        metrics: Optional[MetricRegistry] = None,
        event_bus: Optional[MembershipEventBus] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.config = config if config is not None else ProtocolConfig()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.event_bus = event_bus if event_bus is not None else MembershipEventBus()
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.entities: Dict[NodeId, NetworkEntityState] = hierarchy.build_entity_states()
        for entity in self.entities.values():
            entity.mq.aggregate = self.config.aggregate_mq
        self._failed: Set[NodeId] = set()
        self._op_sequence = itertools.count(1)
        self._ring_seen: Dict[str, Set[int]] = {ring_id: set() for ring_id in hierarchy.rings}
        self._ring_holder: Dict[str, NodeId] = {}
        self._coverage_cache: Dict[str, Set[str]] = {}
        self._coverage_dirty = True
        self._member_epochs: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # entity access
    # ------------------------------------------------------------------

    def entity(self, node: "NodeId | str") -> NetworkEntityState:
        key = coerce_node(node)
        try:
            return self.entities[key]
        except KeyError:
            raise ProtocolError(f"unknown network entity {node}") from None

    def is_operational(self, node: "NodeId | str") -> bool:
        return coerce_node(node) not in self._failed

    def operational_entities(self) -> List[NodeId]:
        return [n for n in self.entities if n not in self._failed]

    def global_membership(self) -> List[MemberInfo]:
        """The global member list as maintained at the topmost ring leader."""
        top = self.hierarchy.topmost_ring()
        leader = top.leader
        if leader is None:
            raise ProtocolError("topmost ring has no leader")
        return self.entity(leader).ring_members.members()

    def global_guids(self) -> List[str]:
        return [str(m.guid) for m in self.global_membership()]

    def ring_agreement(self, ring_id: str) -> bool:
        """True when every operational member of the ring has the same view."""
        ring = self.hierarchy.ring(ring_id)
        views = [
            self.entity(node).ring_members
            for node in ring.members
            if node not in self._failed
        ]
        if len(views) <= 1:
            return True
        first = views[0]
        return all(first.agrees_with(view) for view in views[1:])

    # ------------------------------------------------------------------
    # capture of membership changes (what access proxies do)
    # ------------------------------------------------------------------

    def _next_epoch(self, guid: str) -> int:
        epoch = self._member_epochs.get(guid, 0) + 1
        self._member_epochs[guid] = epoch
        return epoch

    def _capture(self, ap: NodeId, operation: TokenOperation, now: float) -> TokenOperation:
        """Insert ``operation`` into the access proxy's queue and mark it seen."""
        entity = self.entity(ap)
        entity.mq.insert(operation, sender=ap, now=now)
        ring_id = self.hierarchy.ring_of(ap).ring_id
        self._ring_seen[ring_id].add(operation.sequence)
        self.metrics.counter(f"capture.{operation.op_type.value}").increment()
        self.trace.record(now, "capture", str(ap), operation.describe())
        return operation

    def member_join(
        self, ap: "NodeId | str", guid: "GloballyUniqueId | str", now: float = 0.0
    ) -> TokenOperation:
        """A mobile host joins the group at access proxy ``ap``."""
        ap_id = coerce_node(ap)
        if ap_id in self._failed:
            raise ProtocolError(f"cannot join at failed access proxy {ap_id}")
        guid_id = coerce_guid(guid)
        from repro.core.identifiers import make_luid

        member = MemberInfo(
            guid=guid_id,
            group=self.hierarchy.group,
            ap=ap_id,
            luid=make_luid(ap_id, guid_id, self._next_epoch(str(guid_id))),
            status=MemberStatus.OPERATIONAL,
        )
        op = TokenOperation(
            op_type=TokenOperationType.MEMBER_JOIN,
            origin=ap_id,
            member=member,
            sequence=next(self._op_sequence),
        )
        return self._capture(ap_id, op, now)

    def member_leave(
        self, ap: "NodeId | str", guid: "GloballyUniqueId | str", now: float = 0.0
    ) -> TokenOperation:
        """A mobile host voluntarily leaves the group."""
        ap_id = coerce_node(ap)
        guid_id = coerce_guid(guid)
        member = self._lookup_member(ap_id, guid_id)
        op = TokenOperation(
            op_type=TokenOperationType.MEMBER_LEAVE,
            origin=ap_id,
            member=member.with_status(MemberStatus.LEFT),
            sequence=next(self._op_sequence),
        )
        return self._capture(ap_id, op, now)

    def member_failure(
        self, ap: "NodeId | str", guid: "GloballyUniqueId | str", now: float = 0.0
    ) -> TokenOperation:
        """A mobile host is detected faulty by its access proxy."""
        ap_id = coerce_node(ap)
        guid_id = coerce_guid(guid)
        member = self._lookup_member(ap_id, guid_id)
        op = TokenOperation(
            op_type=TokenOperationType.MEMBER_FAILURE,
            origin=ap_id,
            member=member.with_status(MemberStatus.FAILED),
            sequence=next(self._op_sequence),
        )
        return self._capture(ap_id, op, now)

    def member_handoff(
        self,
        guid: "GloballyUniqueId | str",
        old_ap: "NodeId | str",
        new_ap: "NodeId | str",
        now: float = 0.0,
    ) -> TokenOperation:
        """A mobile host hands off from ``old_ap`` to ``new_ap``.

        The change is captured at the *new* access proxy (the paper's
        Member-Handoff); the old access proxy's local list is updated directly,
        modelling the Mobile-IP style binding update the host performs, and the
        propagated operation carries ``previous_ap`` so every view can move the
        member rather than duplicate it.
        """
        old_id = coerce_node(old_ap)
        new_id = coerce_node(new_ap)
        guid_id = coerce_guid(guid)
        if new_id in self._failed:
            raise ProtocolError(f"cannot hand off to failed access proxy {new_id}")
        member = self._lookup_member(old_id, guid_id)
        moved = member.handed_off_to(new_id, self._next_epoch(str(guid_id)))
        # Fast local update at the old proxy (fast-handoff path).
        if old_id in self.entities:
            self.entity(old_id).unregister_local_member(str(guid_id))
        op = TokenOperation(
            op_type=TokenOperationType.MEMBER_HANDOFF,
            origin=new_id,
            member=moved,
            previous_ap=old_id,
            sequence=next(self._op_sequence),
        )
        return self._capture(new_id, op, now)

    def _lookup_member(self, ap: NodeId, guid: GloballyUniqueId) -> MemberInfo:
        """Find the current record for ``guid``, preferring the AP's local list."""
        if ap in self.entities:
            record = self.entity(ap).local_members.get(guid)
            if record is not None:
                return record
            record = self.entity(ap).ring_members.get(guid)
            if record is not None:
                return record
        # Fall back to the global view (e.g. leave reported via a different AP).
        top_leader = self.hierarchy.topmost_ring().leader
        if top_leader is not None:
            record = self.entity(top_leader).ring_members.get(guid)
            if record is not None:
                return record
        # Unknown member: synthesise a record so the departure still propagates.
        from repro.core.identifiers import make_luid

        return MemberInfo(
            guid=guid,
            group=self.hierarchy.group,
            ap=ap,
            luid=make_luid(ap, guid, self._next_epoch(str(guid))),
            status=MemberStatus.OPERATIONAL,
        )

    # ------------------------------------------------------------------
    # entity failure and repair
    # ------------------------------------------------------------------

    def fail_entity(self, node: "NodeId | str", now: float = 0.0) -> None:
        """Mark a network entity as crashed.

        Detection and repair happen lazily, when a token round next tries to
        visit the failed entity (Section 5.2: detection by token
        retransmission, local repair by exclusion).  Use
        :meth:`detect_and_repair` to force immediate handling.
        """
        key = coerce_node(node)
        if key not in self.entities:
            raise ProtocolError(f"unknown network entity {node}")
        self._failed.add(key)
        self.metrics.counter("faults.entity").increment()
        self.trace.record(now, "fault", str(key), "entity crashed")

    def detect_and_repair(self, node: "NodeId | str", now: float = 0.0) -> List[TokenOperation]:
        """Immediately detect a failed entity and repair its ring."""
        key = coerce_node(node)
        if key not in self._failed:
            raise ProtocolError(f"entity {node} has not failed")
        if not self.hierarchy.has_node(key):
            return []  # already repaired away
        ring = self.hierarchy.ring_of(key)
        detector = None
        for candidate in ring.members:
            if candidate != key and candidate not in self._failed:
                detector = candidate
                break
        ops: List[TokenOperation] = []
        self._repair_ring(ring, key, detector, now, ops)
        if detector is not None:
            for op in ops:
                self.entity(detector).mq.insert(op, sender=detector, now=now)
                self._ring_seen[ring.ring_id].add(op.sequence)
        return ops

    def _repair_ring(
        self,
        ring: LogicalRing,
        failed: NodeId,
        detector: Optional[NodeId],
        now: float,
        ops_out: List[TokenOperation],
    ) -> None:
        """Exclude ``failed`` from ``ring`` and patch all local pointers."""
        was_leader = ring.remove_member(failed)
        if was_leader:
            ring.elect_leader()
        self.hierarchy.ring_of_node.pop(failed, None)
        self._coverage_dirty = True

        # Re-point the surviving members' previous/next/leader fields.
        for member in ring.members:
            state = self.entity(member)
            if ring.leader is not None:
                state.set_ring_pointers(
                    ring_id=ring.ring_id,
                    leader=ring.leader,
                    previous=ring.predecessor(member),
                    next_node=ring.successor(member),
                )

        # Child rings of the failed node re-attach to the ring's (new) leader.
        orphan_rings = self.hierarchy.child_rings.pop(failed, [])
        new_parent = ring.leader
        if orphan_rings and new_parent is not None:
            for ring_id in orphan_rings:
                self.hierarchy.parent_node[ring_id] = new_parent
                self.hierarchy.child_rings.setdefault(new_parent, []).append(ring_id)
                child_leader = self.hierarchy.ring(ring_id).leader
                if child_leader is not None:
                    self.entity(new_parent).add_child(child_leader)
                    self.entity(child_leader).set_parent(new_parent)

        # The failed entity's parent loses a child pointer; the ring's (new)
        # leader takes over as that parent's child so the upward path survives.
        parent = self.hierarchy.parent_node.get(ring.ring_id)
        if parent is not None and parent in self.entities:
            self.entity(parent).remove_child(failed)
            if ring.leader is not None:
                self.entity(parent).add_child(ring.leader)
                self.entity(ring.leader).set_parent(parent)

        # Members attached to a failed access proxy are reported failed.
        failure_source = detector if detector is not None else ring.leader
        if failure_source is not None:
            lost = self.entity(failure_source).ring_members.members_at(failed)
            for member in lost:
                ops_out.append(
                    TokenOperation(
                        op_type=TokenOperationType.MEMBER_FAILURE,
                        origin=failure_source,
                        member=member.with_status(MemberStatus.FAILED),
                        sequence=next(self._op_sequence),
                    )
                )
        ops_out.append(
            TokenOperation(
                op_type=TokenOperationType.NE_FAILURE,
                origin=failure_source if failure_source is not None else failed,
                entity=failed,
                sequence=next(self._op_sequence),
            )
        )
        self.metrics.counter("repairs.ring").increment()
        self.trace.record(now, "repair", str(failed), f"excluded from ring {ring.ring_id}")

    # ------------------------------------------------------------------
    # coverage bookkeeping
    # ------------------------------------------------------------------

    def _coverage(self, ring_id: str) -> Set[str]:
        """Access proxies whose members fall within the ring's coverage area."""
        if self._coverage_dirty:
            self._coverage_cache.clear()
            self._coverage_dirty = False
        cached = self._coverage_cache.get(ring_id)
        if cached is not None:
            return cached
        ring = self.hierarchy.ring(ring_id)
        members = set(ring.members)
        covered: Set[str] = set()
        for ap in self.hierarchy.access_proxies():
            if ap in members:
                covered.add(ap.value)
                continue
            for ancestor in self.hierarchy.ancestry(ap):
                if ancestor in members:
                    covered.add(ap.value)
                    break
        self._coverage_cache[ring_id] = covered
        return covered

    # ------------------------------------------------------------------
    # the one-round algorithm
    # ------------------------------------------------------------------

    def _apply_operations_at(
        self,
        node: NodeId,
        ring: LogicalRing,
        operations: Sequence[TokenOperation],
        now: float,
    ) -> List[MembershipEvent]:
        """Figure 3 line 08: execute Token.OP on the current node."""
        entity = self.entity(node)
        events: List[MembershipEvent] = []
        coverage = self._coverage(ring.ring_id)
        bottom_tier = self.hierarchy.bottom_tier()
        for op in operations:
            if not op.op_type.concerns_member or op.member is None:
                continue
            member = op.member
            in_coverage = member.ap.value in coverage

            # Local member list: only the access proxy the member is attached to.
            if ring.tier == bottom_tier:
                if member.ap == node and op.op_type in (
                    TokenOperationType.MEMBER_JOIN,
                    TokenOperationType.MEMBER_HANDOFF,
                ):
                    entity.local_members.add(member)
                elif str(member.guid) in entity.local_members.guids() and (
                    member.ap != node
                    or op.op_type
                    in (TokenOperationType.MEMBER_LEAVE, TokenOperationType.MEMBER_FAILURE)
                ):
                    entity.local_members.remove(member.guid)

                # Neighbour member list: members at the *other* proxies of this ring.
                if member.ap != node and member.ap in ring.members:
                    if op.op_type in (
                        TokenOperationType.MEMBER_JOIN,
                        TokenOperationType.MEMBER_HANDOFF,
                    ):
                        entity.neighbor_members.add(member)
                    else:
                        entity.neighbor_members.remove(member.guid)
                elif str(member.guid) in entity.neighbor_members.guids() and member.ap not in ring.members:
                    entity.neighbor_members.remove(member.guid)

            # Ring member list: members within the ring's coverage area.
            if op.op_type in (TokenOperationType.MEMBER_JOIN, TokenOperationType.MEMBER_HANDOFF):
                if in_coverage:
                    event = entity.ring_members.apply(op, now)
                elif str(member.guid) in entity.ring_members.guids():
                    removed = entity.ring_members.remove(member.guid)
                    event = (
                        MembershipEvent(
                            event_type=_event_type_for(op.op_type),
                            time=now,
                            observer=node,
                            member=member,
                            previous_ap=op.previous_ap,
                            view_size=len(entity.ring_members),
                        )
                        if removed
                        else None
                    )
                else:
                    event = None
            else:
                event = entity.ring_members.apply(op, now)
            if event is not None:
                events.append(event)
                self.event_bus.publish(event)
        return events

    def run_round(
        self,
        ring_id: str,
        holder: Optional["NodeId | str"] = None,
        now: float = 0.0,
    ) -> RoundResult:
        """Run one token round in ``ring_id`` (Figure 3)."""
        ring = self.hierarchy.ring(ring_id)
        if ring.is_empty:
            raise ProtocolError(f"ring {ring_id!r} has no members")
        holder_id = coerce_node(holder) if holder is not None else self._pick_holder(ring)
        if holder_id not in ring.members:
            raise ProtocolError(f"holder {holder_id} is not a member of ring {ring_id!r}")
        if holder_id in self._failed:
            raise ProtocolError(f"holder {holder_id} has failed")

        holder_entity = self.entity(holder_id)
        drained = holder_entity.mq.drain_entries()
        seen = self._ring_seen[ring_id]
        operations = tuple(e.operation for e in drained)
        for op in operations:
            seen.add(op.sequence)
        child_senders = [
            e.sender for e in drained if e.sender != holder_id and e.sender not in ring.members
        ]

        token = Token(
            group=self.hierarchy.group,
            holder=holder_id,
            ring_id=ring_id,
            operations=operations,
        )
        result = RoundResult(ring_id=ring_id, holder=holder_id, operations=operations)
        self.metrics.counter("rounds.started").increment()
        self.trace.record(now, "round", str(holder_id), f"start {token.describe()}")

        order = ring.members_from(holder_id)
        forwarded_up = False
        index = 0
        while index < len(order):
            node = order[index]
            if node != holder_id:
                result.token_hops += 1
            if node in self._failed:
                # Detection by token retransmission, then local repair.
                result.retransmissions += self.config.token_retry_limit + 1
                repair_ops: List[TokenOperation] = []
                detector = order[index - 1] if index > 0 else holder_id
                self._repair_ring(ring, node, detector, now, repair_ops)
                result.repaired.append(node)
                for op in repair_ops:
                    self.entity(detector).mq.insert(op, sender=detector, now=now)
                    self._ring_seen[ring_id].add(op.sequence)
                index += 1
                continue

            token = token.record_visit(node)
            result.visited.append(node)
            entity = self.entity(node)
            result.events.extend(self._apply_operations_at(node, ring, operations, now))
            entity.ring_ok = True  # Figure 3 line 09

            # Figure 3 lines 10-13: leader forwards to its parent.
            if operations and node == ring.leader and entity.parent_ok and entity.parent is not None:
                sent = self._forward(node, entity.parent, operations, now)
                result.notify_hops += sent
                forwarded_up = True

            # Figure 3 lines 14-16: notify child rings.
            if operations and self.config.disseminate_downward and entity.children:
                for child in list(entity.children):
                    if child in self._failed:
                        continue
                    sent = self._forward(node, child, operations, now)
                    result.notify_hops += sent
            index += 1

        # Closing hop: the token travels from the last visited node back to the holder.
        if len(result.visited) >= 2:
            result.token_hops += 1

        # If the ring leader failed mid-round (before its turn), the repaired
        # ring's new leader still has to report the operations to the parent.
        if operations and not forwarded_up and ring.leader is not None:
            leader_entity = self.entity(ring.leader)
            if ring.leader not in self._failed and leader_entity.parent_ok and leader_entity.parent is not None:
                sent = self._forward(ring.leader, leader_entity.parent, operations, now)
                result.notify_hops += sent

        # Figure 3 lines 17-20: Holder-Acknowledgement to originating children.
        if self.config.holder_ack_enabled and operations:
            for sender in dict.fromkeys(child_senders):
                if sender in self._failed:
                    continue
                result.ack_hops += 1
                self.metrics.counter("messages.holder_ack").increment()
                self.trace.record(now, "ack", str(holder_id), f"holder-ack to {sender}")

        # Figure 3 lines 21-23: control of a fresh token moves to the next node.
        if ring.members:
            try:
                self._ring_holder[ring_id] = ring.successor(holder_id)
            except Exception:
                self._ring_holder[ring_id] = ring.leader if ring.leader is not None else ring.members[0]

        self.metrics.counter("rounds.completed").increment()
        self.metrics.counter("hops.token").increment(result.token_hops)
        self.metrics.counter("hops.notify").increment(result.notify_hops)
        self.metrics.counter("hops.ack").increment(result.ack_hops)
        return result

    def _pick_holder(self, ring: LogicalRing) -> NodeId:
        """The member that should hold the next round: current holder pointer,
        advanced to the first operational member with pending work (or the
        first operational member if none has work)."""
        start = self._ring_holder.get(ring.ring_id)
        candidates = ring.members_from(start) if start is not None and start in ring.members else ring.members_in_order()
        operational = [n for n in candidates if n not in self._failed]
        if not operational:
            raise ProtocolError(f"ring {ring.ring_id!r} has no operational members")
        for node in operational:
            if not self.entity(node).mq.is_empty:
                return node
        return operational[0]

    def _forward(
        self, sender: NodeId, target: NodeId, operations: Sequence[TokenOperation], now: float
    ) -> int:
        """Insert operations into ``target``'s queue; returns 1 if a message was sent."""
        if target not in self.entities:
            return 0
        if target in self._failed:
            # The notification to a crashed parent/child times out (ParentOK /
            # ChildOK turns false): repair that entity's ring, re-attach, and
            # retry towards the surviving counterpart.
            if not self.hierarchy.has_node(target):
                return 0
            sender_entity = self.entity(sender)
            was_parent = sender_entity.parent == target
            target_ring = self.hierarchy.ring_of(target)
            self.detect_and_repair(target, now)
            if was_parent:
                new_target = self.entity(sender).parent
            else:
                new_target = target_ring.leader
            if new_target is None or new_target == target:
                return 0
            return self._forward(sender, new_target, operations, now)
        if not self.hierarchy.has_node(target):
            return 0
        target_ring = self.hierarchy.ring_of(target).ring_id
        seen = self._ring_seen[target_ring]
        fresh = [op for op in operations if op.sequence not in seen]
        if not fresh:
            return 0
        target_entity = self.entity(target)
        for op in fresh:
            target_entity.mq.insert(op, sender=sender, now=now)
            seen.add(op.sequence)
        self.metrics.counter("messages.notifications").increment()
        self.trace.record(
            now, "notify", str(sender), f"{len(fresh)} op(s) to {target} (ring {target_ring})"
        )
        return 1

    # ------------------------------------------------------------------
    # propagation to quiescence
    # ------------------------------------------------------------------

    def pending_rings(self) -> List[str]:
        """Rings that currently have at least one queued operation."""
        pending = []
        for ring_id, ring in self.hierarchy.rings.items():
            for node in ring.members:
                if node in self._failed:
                    continue
                if not self.entity(node).mq.is_empty:
                    pending.append(ring_id)
                    break
        # Bottom-up, then lexicographic: deterministic and matches the paper's
        # bottom-to-top propagation narrative.
        pending.sort(key=lambda rid: (self.hierarchy.ring(rid).tier, rid))
        return pending

    def propagate(self, now: float = 0.0, max_iterations: int = 10_000) -> PropagationReport:
        """Run token rounds until every message queue is empty."""
        report = PropagationReport()
        for _ in range(max_iterations):
            pending = self.pending_rings()
            if not pending:
                return report
            for ring_id in pending:
                ring = self.hierarchy.ring(ring_id)
                if all(node in self._failed for node in ring.members):
                    continue
                # Skip if the work was consumed by an earlier round this sweep.
                if not any(
                    node not in self._failed and not self.entity(node).mq.is_empty
                    for node in ring.members
                ):
                    continue
                report.rounds.append(self.run_round(ring_id, now=now))
        raise ProtocolError(
            f"propagation did not converge within {max_iterations} iterations"
        )

    # ------------------------------------------------------------------
    # convenience wrappers used by examples and the facade
    # ------------------------------------------------------------------

    def join_and_propagate(
        self, ap: "NodeId | str", guid: "GloballyUniqueId | str", now: float = 0.0
    ) -> PropagationReport:
        self.member_join(ap, guid, now)
        return self.propagate(now)

    def leave_and_propagate(
        self, ap: "NodeId | str", guid: "GloballyUniqueId | str", now: float = 0.0
    ) -> PropagationReport:
        self.member_leave(ap, guid, now)
        return self.propagate(now)

    def handoff_and_propagate(
        self,
        guid: "GloballyUniqueId | str",
        old_ap: "NodeId | str",
        new_ap: "NodeId | str",
        now: float = 0.0,
    ) -> PropagationReport:
        self.member_handoff(guid, old_ap, new_ap, now)
        return self.propagate(now)


def _event_type_for(op_type: TokenOperationType):
    from repro.core.membership import MembershipEventType

    return {
        TokenOperationType.MEMBER_JOIN: MembershipEventType.JOIN,
        TokenOperationType.MEMBER_LEAVE: MembershipEventType.LEAVE,
        TokenOperationType.MEMBER_HANDOFF: MembershipEventType.HANDOFF,
        TokenOperationType.MEMBER_FAILURE: MembershipEventType.FAILURE,
    }[op_type]
