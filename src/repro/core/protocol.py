"""Message-passing protocol driver running on the discrete-event transport.

Where :mod:`repro.core.one_round` steps the shared
:class:`repro.core.kernel.TokenRoundKernel` structurally (shared memory, zero
latency), this module schedules the same round state machine as an actual
distributed protocol: every network entity is an endpoint on the simulated
:class:`repro.sim.transport.Transport`, tokens and notifications are real
messages subject to latency and loss, failure detection is driven by token
acknowledgement timeouts, and ring repair is performed with only the local
knowledge each entity has (its ring view travels with the token, Totem-style).
All protocol decisions — queue draining, notification/acknowledgement
routing, delta application, hierarchy repair surgery — are delegated to the
kernel; this module owns only the wire encoding, timers and per-node message
handlers.

Differences from the paper's presentation, kept deliberately small:

* Round arbitration.  The paper lets the token circulate perpetually, with
  control passing to the next entity after each round.  To keep simulated
  event counts bounded, a ring is *idle* when nobody has queued work; an
  entity that enqueues work signals the ring leader, and the leader grants
  rounds one at a time (the grant names the requesting entity as holder).
  Message counts per membership change are unchanged apart from the one
  signal + one grant pair.
* The token message carries the ring membership view so that a node that
  detects its successor's failure can splice the ring and propagate the
  repaired view without global knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import ProtocolConfig
from repro.core.entity import NetworkEntityState
from repro.core.events import MembershipEventBus
from repro.core.hierarchy import RingHierarchy
from repro.core.identifiers import GloballyUniqueId, NodeId, coerce_node
from repro.core.deltas import MembershipDelta
from repro.core.kernel import TokenRoundKernel
from repro.core.member import MemberInfo, MemberStatus
from repro.core.token import TokenOperation, TokenOperationType
from repro.sim.engine import Event, SimulationEngine
from repro.sim.network import Network, NodeState
from repro.sim.stats import MetricRegistry
from repro.sim.trace import TraceRecorder
from repro.sim.transport import Message, Transport

# Message type tags used on the wire.
MSG_MQ_INSERT = "rgb.mq-insert"
MSG_WORK_SIGNAL = "rgb.work-signal"
MSG_ROUND_GRANT = "rgb.round-grant"
MSG_ROUND_COMPLETE = "rgb.round-complete"
MSG_TOKEN = "rgb.token"
MSG_TOKEN_ACK = "rgb.token-ack"
MSG_HOLDER_ACK = "rgb.holder-ack"


def _encode_member(member: MemberInfo) -> Dict[str, str]:
    return {
        "guid": str(member.guid),
        "group": str(member.group),
        "ap": str(member.ap),
        "luid": str(member.luid),
        "status": member.status.value,
    }


def _decode_member(data: Dict[str, str]) -> MemberInfo:
    from repro.core.identifiers import GroupId, LocallyUniqueId

    return MemberInfo(
        guid=GloballyUniqueId(data["guid"]),
        group=GroupId(data["group"]),
        ap=NodeId(data["ap"]),
        luid=LocallyUniqueId(data["luid"]),
        status=MemberStatus(data["status"]),
    )


def _encode_op(op: TokenOperation) -> Dict[str, object]:
    return {
        "op_type": op.op_type.value,
        "origin": str(op.origin),
        "member": _encode_member(op.member) if op.member is not None else None,
        "entity": str(op.entity) if op.entity is not None else None,
        "previous_ap": str(op.previous_ap) if op.previous_ap is not None else None,
        "sequence": op.sequence,
    }


def _decode_op(data: Dict[str, object]) -> TokenOperation:
    return TokenOperation(
        op_type=TokenOperationType(data["op_type"]),
        origin=NodeId(str(data["origin"])),
        member=_decode_member(data["member"]) if data.get("member") else None,  # type: ignore[arg-type]
        entity=NodeId(str(data["entity"])) if data.get("entity") else None,
        previous_ap=NodeId(str(data["previous_ap"])) if data.get("previous_ap") else None,
        sequence=int(data["sequence"]),  # type: ignore[arg-type]
    )


@dataclass
class _PendingToken:
    """Book-keeping for a token the local node has sent but not yet had acked."""

    destination: NodeId
    payload: Dict[str, object]
    attempts: int = 0
    timer: Optional[Event] = None


class RGBProtocolNode:
    """One network entity running the RGB protocol over the transport."""

    def __init__(
        self,
        state: NetworkEntityState,
        cluster: "RGBProtocolCluster",
    ) -> None:
        self.state = state
        self.cluster = cluster
        self.config = cluster.config
        self.node_id = state.current
        self._seen_ops: Set[int] = set()
        self._forwarded_up: Set[int] = set()
        self._forwarded_down: Dict[str, Set[int]] = {}
        self._round_in_progress = False  # meaningful on the ring leader
        self._pending_requests: List[NodeId] = []  # leader-side round requests
        self._signalled = False  # this node has asked its leader for a round
        self._pending_token: Optional[_PendingToken] = None
        self._ring_view: List[NodeId] = []
        self.crashed = False  # set by the cluster; a crashed node does nothing

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    @property
    def engine(self) -> SimulationEngine:
        return self.cluster.engine

    @property
    def transport(self) -> Transport:
        return self.cluster.transport

    @property
    def metrics(self) -> MetricRegistry:
        return self.cluster.metrics

    def _send(self, destination: NodeId, msg_type: str, payload: Dict[str, object]) -> None:
        self.transport.send(str(self.node_id), str(destination), msg_type, payload)

    def ring_members(self) -> List[NodeId]:
        if self._ring_view:
            return list(self._ring_view)
        ring = self.cluster.hierarchy.ring_of(self.node_id)
        self._ring_view = list(ring.members)
        return list(self._ring_view)

    # ------------------------------------------------------------------
    # local captures (called by the cluster for APs)
    # ------------------------------------------------------------------

    def capture(self, op: TokenOperation) -> None:
        """Insert a locally captured membership change and request a round."""
        if self.crashed or op.sequence in self._seen_ops:
            return
        self._seen_ops.add(op.sequence)
        self.state.mq.insert(op, sender=self.node_id, now=self.engine.now)
        self.metrics.counter(f"protocol.capture.{op.op_type.value}").increment()
        self._request_round_soon()

    def _request_round_soon(self) -> None:
        if self._signalled or not self.state.has_queued_work():
            return
        self._signalled = True

        def fire(_engine: SimulationEngine) -> None:
            self._signalled = False
            if self.crashed or not self.state.has_queued_work():
                return
            leader = self.state.leader
            if leader is None:
                return
            if leader == self.node_id:
                self._handle_work_signal(self.node_id)
            else:
                self._send(leader, MSG_WORK_SIGNAL, {})
                self._arm_signal_timer()

        self.engine.schedule(self.config.aggregation_delay, fire, label="rgb.work-signal")

    def _arm_signal_timer(self) -> None:
        """Leader-liveness fallback.

        If the ring leader never answers work signals (it may have crashed
        while the ring was otherwise idle, so no token round will notice), the
        requesting node re-signals a few times and then excludes the leader
        from its local ring view and re-elects deterministically.
        """
        self._signal_attempts = getattr(self, "_signal_attempts", 0) + 1
        attempts = self._signal_attempts

        def expire(_engine: SimulationEngine) -> None:
            if self.crashed or not self.state.has_queued_work():
                self._signal_attempts = 0
                return
            if attempts != getattr(self, "_signal_attempts", 0):
                return  # superseded by a later signal
            if attempts <= self.config.token_retry_limit:
                self._request_round_soon()
                return
            # Declare the leader faulty and take over deterministically.
            old_leader = self.state.leader
            view = [n for n in self.ring_members() if n != old_leader]
            if old_leader is not None and self.node_id != old_leader:
                self.cluster.note_entity_failure(old_leader, detector=self.node_id)
                for op in self.cluster.build_failure_operations(old_leader, observer=self.node_id):
                    if op.sequence not in self._seen_ops:
                        self._seen_ops.add(op.sequence)
                        self.state.mq.insert(op, sender=self.node_id, now=self.engine.now)
            if view:
                self._ring_view = view
                new_leader = min(view, key=lambda n: n.value)
                self.state.leader = new_leader
                idx = view.index(self.node_id) if self.node_id in view else 0
                self.state.next_node = view[(idx + 1) % len(view)]
                self.state.previous = view[(idx - 1) % len(view)]
            self._signal_attempts = 0
            self._request_round_soon()

        # The wait scales with ring size: a busy ring may legitimately queue a
        # full round per member ahead of this node's request.
        wait = self.config.token_timeout * (3.0 + 2.0 * len(self.ring_members()))
        self.engine.schedule(wait, expire, label="rgb.signal-timeout")

    # ------------------------------------------------------------------
    # heartbeat rounds (perpetual token circulation approximation)
    # ------------------------------------------------------------------

    def schedule_heartbeat(self) -> None:
        """Periodically start an empty round when this node leads an idle ring.

        The paper's token circulates around each ring perpetually, which is
        what detects crashed entities in rings with no membership traffic.
        With ``heartbeat_interval`` configured, the ring leader injects an
        empty round at that cadence whenever no round is in progress.
        """
        interval = self.config.heartbeat_interval
        if interval is None:
            return

        def beat(_engine: SimulationEngine) -> None:
            if self.crashed:
                return
            if self.state.leader == self.node_id and not self._round_in_progress:
                self.metrics.counter("protocol.heartbeat_rounds").increment()
                self._handle_work_signal(self.node_id)
            self.engine.schedule(interval, beat, label="rgb.heartbeat")

        # Stagger the first beat by a node-dependent offset so rings don't all
        # fire at the same instant.
        offset = (abs(hash(self.node_id.value)) % 1000) / 1000.0 * interval
        self.engine.schedule(interval + offset, beat, label="rgb.heartbeat")

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if self.crashed:
            return
        handler = {
            MSG_MQ_INSERT: self._on_mq_insert,
            MSG_WORK_SIGNAL: self._on_work_signal,
            MSG_ROUND_GRANT: self._on_round_grant,
            MSG_ROUND_COMPLETE: self._on_round_complete,
            MSG_TOKEN: self._on_token,
            MSG_TOKEN_ACK: self._on_token_ack,
            MSG_HOLDER_ACK: self._on_holder_ack,
        }.get(message.msg_type)
        if handler is None:
            self.metrics.counter("protocol.unknown_message").increment()
            return
        handler(message)

    # -- notifications landing in the MQ --------------------------------------

    def _on_mq_insert(self, message: Message) -> None:
        ops = [_decode_op(d) for d in message.payload.get("operations", [])]  # type: ignore[union-attr]
        fresh = [op for op in ops if op.sequence not in self._seen_ops]
        if not fresh:
            return
        sender = NodeId(message.source)
        for op in fresh:
            self._seen_ops.add(op.sequence)
            self.state.mq.insert(op, sender=sender, now=self.engine.now)
        self.metrics.counter("protocol.notifications_received").increment()
        self._request_round_soon()

    def _on_holder_ack(self, message: Message) -> None:
        self.metrics.counter("protocol.holder_acks_received").increment()

    # -- leader-side round arbitration -------------------------------------------

    def _on_work_signal(self, message: Message) -> None:
        self._handle_work_signal(NodeId(message.source))

    def _handle_work_signal(self, requester: NodeId) -> None:
        if requester not in self._pending_requests:
            self._pending_requests.append(requester)
        self._maybe_grant()

    def _maybe_grant(self) -> None:
        if self._round_in_progress or not self._pending_requests:
            return
        requester = self._pending_requests.pop(0)
        self._round_in_progress = True
        if requester == self.node_id:
            self._start_round_as_holder()
        else:
            self._send(requester, MSG_ROUND_GRANT, {})

    def _on_round_grant(self, message: Message) -> None:
        # Evidence the leader is alive: reset the leader-liveness fallback.
        self._signal_attempts = 0
        self._start_round_as_holder()

    def _on_round_complete(self, message: Message) -> None:
        self._round_in_progress = False
        self._maybe_grant()

    # -- holder-side round execution ----------------------------------------------

    def _start_round_as_holder(self) -> None:
        operations, senders = self.cluster.kernel.drain_for_round(
            self.state, self.ring_members()
        )
        child_senders = [str(sender) for sender in senders]
        self.metrics.counter("protocol.rounds_started").increment()
        payload: Dict[str, object] = {
            "holder": str(self.node_id),
            "operations": [_encode_op(op) for op in operations],
            "ring_view": [str(n) for n in self.ring_members()],
            "child_senders": child_senders,
        }
        # The holder executes the operations itself before forwarding the token.
        self._execute_token_locally(payload)
        self._forward_token(payload)

    def _finish_round(self, payload: Dict[str, object]) -> None:
        """The token has returned to the holder: acknowledge and release the ring."""
        self.metrics.counter("protocol.rounds_completed").increment()
        if self.config.holder_ack_enabled:
            for sender in self.cluster.kernel.ack_targets(payload.get("child_senders", [])):  # type: ignore[arg-type]
                self._send(NodeId(str(sender)), MSG_HOLDER_ACK, {})
        leader = self.state.leader
        if leader is not None and leader != self.node_id:
            self._send(leader, MSG_ROUND_COMPLETE, {})
        else:
            self._round_in_progress = False
            self._maybe_grant()
        # More work may have arrived while the round was circulating.
        if self.state.has_queued_work():
            self._request_round_soon()

    # -- token circulation -------------------------------------------------------------

    def _on_token(self, message: Message) -> None:
        payload = dict(message.payload)
        # A circulating token is evidence the ring (and its leader-arbitrated
        # round scheduling) is alive: reset the leader-liveness fallback.
        self._signal_attempts = 0
        self._send(NodeId(message.source), MSG_TOKEN_ACK, {"holder": payload.get("holder")})
        self._adopt_ring_view(payload)
        holder = NodeId(str(payload["holder"]))
        if holder == self.node_id:
            self._finish_round(payload)
            return
        self._execute_token_locally(payload)
        self._forward_token(payload)

    def _on_token_ack(self, message: Message) -> None:
        if self._pending_token is None:
            return
        if NodeId(message.source) != self._pending_token.destination:
            return
        if self._pending_token.timer is not None:
            self._pending_token.timer.cancel()
        self._pending_token = None

    def _adopt_ring_view(self, payload: Dict[str, object]) -> None:
        view = [NodeId(str(n)) for n in payload.get("ring_view", [])]
        if not view or self.node_id not in view:
            return
        self._ring_view = view
        idx = view.index(self.node_id)
        self.state.next_node = view[(idx + 1) % len(view)]
        self.state.previous = view[(idx - 1) % len(view)]
        new_leader = min(view, key=lambda n: n.value)
        if self.state.leader not in view:
            self.state.leader = new_leader
        self.state.ring_ok = True

    def _execute_token_locally(self, payload: Dict[str, object]) -> None:
        operations = [_decode_op(d) for d in payload.get("operations", [])]  # type: ignore[union-attr]
        for op in operations:
            self._seen_ops.add(op.sequence)
        kernel = self.cluster.kernel
        # Events are published by the kernel's event bus inside apply.
        self.cluster.apply_operations(self.node_id, operations)
        self.state.ring_ok = True
        # Figure 3 lines 10-13: the ring leader forwards up to its parent.
        parent_target = kernel.upward_target(self.state, self.state.leader)
        if operations and parent_target is not None:
            fresh = [op for op in operations if op.sequence not in self._forwarded_up]
            if fresh:
                self._forwarded_up.update(op.sequence for op in fresh)
                self._send(
                    parent_target,
                    MSG_MQ_INSERT,
                    {"operations": [_encode_op(op) for op in fresh]},
                )
                self.metrics.counter("protocol.notify_parent").increment()
        # Figure 3 lines 14-16: notify child rings.
        if operations:
            for child in kernel.downward_targets(self.state):
                forwarded = self._forwarded_down.setdefault(str(child), set())
                fresh = [op for op in operations if op.sequence not in forwarded]
                if not fresh:
                    continue
                forwarded.update(op.sequence for op in fresh)
                self._send(
                    child,
                    MSG_MQ_INSERT,
                    {"operations": [_encode_op(op) for op in fresh]},
                )
                self.metrics.counter("protocol.notify_child").increment()

    def _forward_token(self, payload: Dict[str, object]) -> None:
        """Send the token to the next node, with timeout-driven failure detection."""
        view = [NodeId(str(n)) for n in payload.get("ring_view", [])]
        if self.node_id not in view or len(view) == 1:
            # Solo ring: the round is trivially complete.
            if str(payload.get("holder")) == str(self.node_id):
                self._finish_round(payload)
            return
        idx = view.index(self.node_id)
        destination = view[(idx + 1) % len(view)]
        self._transmit_token(destination, payload)

    def _transmit_token(self, destination: NodeId, payload: Dict[str, object]) -> None:
        self.metrics.counter("protocol.token_hops").increment()
        pending = _PendingToken(destination=destination, payload=payload, attempts=1)
        self._pending_token = pending
        self._send(destination, MSG_TOKEN, payload)
        self._arm_token_timer(pending)

    def _arm_token_timer(self, pending: _PendingToken) -> None:
        def expire(_engine: SimulationEngine) -> None:
            if self.crashed or self._pending_token is not pending:
                return
            if pending.attempts <= self.config.token_retry_limit:
                pending.attempts += 1
                self.metrics.counter("protocol.token_retransmissions").increment()
                self._send(pending.destination, MSG_TOKEN, pending.payload)
                self._arm_token_timer(pending)
                return
            # The successor is declared faulty: local repair.
            self._pending_token = None
            self._repair_successor(pending)

        pending.timer = self.engine.schedule(
            self.config.token_timeout, expire, label="rgb.token-timeout"
        )

    def _repair_successor(self, pending: _PendingToken) -> None:
        failed = pending.destination
        payload = dict(pending.payload)
        view = [NodeId(str(n)) for n in payload.get("ring_view", [])]
        if failed in view:
            view.remove(failed)
        payload["ring_view"] = [str(n) for n in view]
        self.metrics.counter("protocol.ring_repairs").increment()
        self.cluster.note_entity_failure(failed, detector=self.node_id)
        self._adopt_ring_view(payload)
        # Report the failure (and any members lost with it) in the next round.
        failure_ops = self.cluster.build_failure_operations(failed, observer=self.node_id)
        for op in failure_ops:
            self.capture(op)
        holder = NodeId(str(payload["holder"]))
        if not view or view == [self.node_id] or (len(view) == 1 and view[0] == holder):
            if holder == self.node_id:
                self._finish_round(payload)
            return
        if failed == holder:
            # The round's holder died; the detecting node closes the round itself.
            payload["holder"] = str(self.node_id)
            self._finish_round(payload)
            return
        idx = view.index(self.node_id)
        destination = view[(idx + 1) % len(view)]
        if destination == self.node_id:
            self._finish_round(payload)
            return
        self._transmit_token(destination, payload)


class RGBProtocolCluster:
    """All protocol nodes of one group plus the shared substrate.

    The cluster owns the canonical hierarchy (used for coverage scoping and
    for wiring initial pointers), registers every entity with the transport
    and offers the application-facing operations: join, leave, handoff and
    fail a mobile host; crash an entity; read membership views.
    """

    def __init__(
        self,
        hierarchy: RingHierarchy,
        engine: SimulationEngine,
        network: Network,
        transport: Transport,
        config: Optional[ProtocolConfig] = None,
        metrics: Optional[MetricRegistry] = None,
        event_bus: Optional[MembershipEventBus] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.engine = engine
        self.network = network
        self.transport = transport
        # The message-passing driver historically never reported events for
        # records pruned out of a ring's coverage area; the kernel preserves
        # that behaviour per driver.
        self.kernel = TokenRoundKernel(
            hierarchy,
            config=config,
            metrics=metrics,
            event_bus=event_bus,
            trace=trace,
            emit_prune_events=False,
        )
        self.config = self.kernel.config
        self.metrics = self.kernel.metrics
        self.event_bus = self.kernel.event_bus
        self.trace = self.kernel.trace

        # One delta compile per operation batch: the token visits every ring
        # member with the same payload, so memoise by the ops' sequence ids
        # (globally unique and immutable) instead of recompiling per node.
        self._delta_cache: Dict[Tuple[int, ...], MembershipDelta] = {}

        self.nodes: Dict[NodeId, RGBProtocolNode] = {}
        for node_id, state in self.kernel.entities.items():
            node = RGBProtocolNode(state, self)
            self.nodes[node_id] = node
            self.transport.register(str(node_id), node.on_message)
        if self.config.heartbeat_interval is not None:
            for node in self.nodes.values():
                node.schedule_heartbeat()

    # ------------------------------------------------------------------
    # membership operations (application-facing)
    # ------------------------------------------------------------------

    def _node(self, node_id: "NodeId | str") -> RGBProtocolNode:
        key = coerce_node(node_id)
        try:
            return self.nodes[key]
        except KeyError:
            raise KeyError(f"unknown protocol node {node_id}") from None

    def join_member(self, ap: "NodeId | str", guid: "GloballyUniqueId | str") -> MemberInfo:
        op = self.kernel.make_join_op(ap, guid)
        self._node(op.origin).capture(op)
        assert op.member is not None
        return op.member

    def leave_member(self, ap: "NodeId | str", guid: "GloballyUniqueId | str") -> None:
        op = self.kernel.make_leave_op(ap, guid)
        self._node(op.origin).capture(op)

    def fail_member(self, ap: "NodeId | str", guid: "GloballyUniqueId | str") -> None:
        op = self.kernel.make_failure_op(ap, guid)
        self._node(op.origin).capture(op)

    def handoff_member(
        self,
        guid: "GloballyUniqueId | str",
        old_ap: "NodeId | str",
        new_ap: "NodeId | str",
    ) -> MemberInfo:
        op = self.kernel.make_handoff_op(guid, old_ap, new_ap)
        self._node(op.origin).capture(op)
        assert op.member is not None
        return op.member

    # ------------------------------------------------------------------
    # entity failure
    # ------------------------------------------------------------------

    def crash_entity(self, node_id: "NodeId | str") -> None:
        """Crash a network entity at the network level.

        Detection happens through token timeouts at its ring neighbours the
        next time a round runs in that ring (heartbeat rounds guarantee one
        when ``heartbeat_interval`` is configured).
        """
        key = coerce_node(node_id)
        self.network.set_node_state(str(key), NodeState.FAILED)
        self.kernel.failed.add(key)
        if key in self.nodes:
            self.nodes[key].crashed = True
        self.metrics.counter("protocol.entity_crashes").increment()

    def note_entity_failure(self, node_id: NodeId, detector: NodeId) -> None:
        """Called by a node that declared ``node_id`` faulty via timeouts.

        The hierarchy surgery is the kernel's; survivors are *not* re-pointed
        from global knowledge — they learn the repaired view from the token.
        """
        self.kernel.failed.add(node_id)
        if self.hierarchy.has_node(node_id):
            self.kernel.exclude_entity(node_id, repoint_survivors=False, patch_parent_link=False)
        self.kernel.invalidate_coverage()
        self.trace.record(self.engine.now, "repair", str(detector), f"excluded {node_id}")

    def build_failure_operations(self, failed: NodeId, observer: NodeId) -> List[TokenOperation]:
        """Operations reporting an entity failure and the members lost with it."""
        return self.kernel.failure_operations(failed, observer)

    # ------------------------------------------------------------------
    # operation application (shared with the structural semantics)
    # ------------------------------------------------------------------

    def apply_operations(
        self, node_id: NodeId, operations: Sequence[TokenOperation]
    ) -> List[object]:
        """Apply token operations to one entity's member lists."""
        if not self.hierarchy.has_node(node_id):
            return []
        ring = self.hierarchy.ring_of(node_id)
        batch: "MembershipDelta | Sequence[TokenOperation]" = operations
        if operations and self.config.batched_apply:
            key = tuple(op.sequence for op in operations)
            batch = self._delta_cache.get(key)
            if batch is None:
                if len(self._delta_cache) >= 256:
                    self._delta_cache.clear()
                batch = self.kernel.compile_delta(operations)
                self._delta_cache[key] = batch
        return list(
            self.kernel.apply_operations_at(node_id, ring, batch, now=self.engine.now)
        )

    # ------------------------------------------------------------------
    # reading state
    # ------------------------------------------------------------------

    def entity_state(self, node_id: "NodeId | str") -> NetworkEntityState:
        return self._node(node_id).state

    def entity(self, node_id: "NodeId | str") -> NetworkEntityState:
        """Alias of :meth:`entity_state` (shared interface with OneRoundEngine)."""
        return self._node(node_id).state

    def global_membership(self) -> List[MemberInfo]:
        leader = self.hierarchy.topmost_ring().leader
        if leader is None:
            raise RuntimeError("topmost ring has no leader")
        return self.nodes[leader].state.ring_members.members()

    def global_guids(self) -> List[str]:
        return [str(m.guid) for m in self.global_membership()]

    def run_until_quiescent(self, max_time: Optional[float] = None) -> int:
        """Convenience: drive the simulation engine until no events remain."""
        return self.engine.run(until=max_time)
