"""Message-passing protocol engine running on the discrete-event transport.

Where :mod:`repro.core.one_round` executes token rounds structurally (shared
memory, zero latency), this module runs the same algorithm as an actual
distributed protocol: every network entity is an endpoint on the simulated
:class:`repro.sim.transport.Transport`, tokens and notifications are real
messages subject to latency and loss, failure detection is driven by token
acknowledgement timeouts, and ring repair is performed with only the local
knowledge each entity has (its ring view travels with the token, Totem-style).

Differences from the paper's presentation, kept deliberately small:

* Round arbitration.  The paper lets the token circulate perpetually, with
  control passing to the next entity after each round.  To keep simulated
  event counts bounded, a ring is *idle* when nobody has queued work; an
  entity that enqueues work signals the ring leader, and the leader grants
  rounds one at a time (the grant names the requesting entity as holder).
  Message counts per membership change are unchanged apart from the one
  signal + one grant pair.
* The token message carries the ring membership view so that a node that
  detects its successor's failure can splice the ring and propagate the
  repaired view without global knowledge.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import ProtocolConfig
from repro.core.entity import EntityRole, NetworkEntityState
from repro.core.events import MembershipEventBus
from repro.core.hierarchy import RingHierarchy
from repro.core.identifiers import GloballyUniqueId, NodeId, coerce_guid, coerce_node, make_luid
from repro.core.member import MemberInfo, MemberStatus
from repro.core.token import TokenOperation, TokenOperationType
from repro.sim.engine import Event, SimulationEngine
from repro.sim.network import Network, NodeState
from repro.sim.stats import MetricRegistry
from repro.sim.trace import TraceRecorder
from repro.sim.transport import Message, Transport

# Message type tags used on the wire.
MSG_MQ_INSERT = "rgb.mq-insert"
MSG_WORK_SIGNAL = "rgb.work-signal"
MSG_ROUND_GRANT = "rgb.round-grant"
MSG_ROUND_COMPLETE = "rgb.round-complete"
MSG_TOKEN = "rgb.token"
MSG_TOKEN_ACK = "rgb.token-ack"
MSG_HOLDER_ACK = "rgb.holder-ack"


def _encode_member(member: MemberInfo) -> Dict[str, str]:
    return {
        "guid": str(member.guid),
        "group": str(member.group),
        "ap": str(member.ap),
        "luid": str(member.luid),
        "status": member.status.value,
    }


def _decode_member(data: Dict[str, str]) -> MemberInfo:
    from repro.core.identifiers import GroupId, LocallyUniqueId

    return MemberInfo(
        guid=GloballyUniqueId(data["guid"]),
        group=GroupId(data["group"]),
        ap=NodeId(data["ap"]),
        luid=LocallyUniqueId(data["luid"]),
        status=MemberStatus(data["status"]),
    )


def _encode_op(op: TokenOperation) -> Dict[str, object]:
    return {
        "op_type": op.op_type.value,
        "origin": str(op.origin),
        "member": _encode_member(op.member) if op.member is not None else None,
        "entity": str(op.entity) if op.entity is not None else None,
        "previous_ap": str(op.previous_ap) if op.previous_ap is not None else None,
        "sequence": op.sequence,
    }


def _decode_op(data: Dict[str, object]) -> TokenOperation:
    return TokenOperation(
        op_type=TokenOperationType(data["op_type"]),
        origin=NodeId(str(data["origin"])),
        member=_decode_member(data["member"]) if data.get("member") else None,  # type: ignore[arg-type]
        entity=NodeId(str(data["entity"])) if data.get("entity") else None,
        previous_ap=NodeId(str(data["previous_ap"])) if data.get("previous_ap") else None,
        sequence=int(data["sequence"]),  # type: ignore[arg-type]
    )


@dataclass
class _PendingToken:
    """Book-keeping for a token the local node has sent but not yet had acked."""

    destination: NodeId
    payload: Dict[str, object]
    attempts: int = 0
    timer: Optional[Event] = None


class RGBProtocolNode:
    """One network entity running the RGB protocol over the transport."""

    def __init__(
        self,
        state: NetworkEntityState,
        cluster: "RGBProtocolCluster",
    ) -> None:
        self.state = state
        self.cluster = cluster
        self.config = cluster.config
        self.node_id = state.current
        self._seen_ops: Set[int] = set()
        self._forwarded_up: Set[int] = set()
        self._forwarded_down: Dict[str, Set[int]] = {}
        self._round_in_progress = False  # meaningful on the ring leader
        self._pending_requests: List[NodeId] = []  # leader-side round requests
        self._signalled = False  # this node has asked its leader for a round
        self._pending_token: Optional[_PendingToken] = None
        self._ring_view: List[NodeId] = []
        self.crashed = False  # set by the cluster; a crashed node does nothing

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    @property
    def engine(self) -> SimulationEngine:
        return self.cluster.engine

    @property
    def transport(self) -> Transport:
        return self.cluster.transport

    @property
    def metrics(self) -> MetricRegistry:
        return self.cluster.metrics

    def _send(self, destination: NodeId, msg_type: str, payload: Dict[str, object]) -> None:
        self.transport.send(str(self.node_id), str(destination), msg_type, payload)

    def ring_members(self) -> List[NodeId]:
        if self._ring_view:
            return list(self._ring_view)
        ring = self.cluster.hierarchy.ring_of(self.node_id)
        self._ring_view = list(ring.members)
        return list(self._ring_view)

    # ------------------------------------------------------------------
    # local captures (called by the cluster for APs)
    # ------------------------------------------------------------------

    def capture(self, op: TokenOperation) -> None:
        """Insert a locally captured membership change and request a round."""
        if self.crashed or op.sequence in self._seen_ops:
            return
        self._seen_ops.add(op.sequence)
        self.state.mq.insert(op, sender=self.node_id, now=self.engine.now)
        self.metrics.counter(f"protocol.capture.{op.op_type.value}").increment()
        self._request_round_soon()

    def _request_round_soon(self) -> None:
        if self._signalled or self.state.mq.is_empty:
            return
        self._signalled = True

        def fire(_engine: SimulationEngine) -> None:
            self._signalled = False
            if self.crashed or self.state.mq.is_empty:
                return
            leader = self.state.leader
            if leader is None:
                return
            if leader == self.node_id:
                self._handle_work_signal(self.node_id)
            else:
                self._send(leader, MSG_WORK_SIGNAL, {})
                self._arm_signal_timer()

        self.engine.schedule(self.config.aggregation_delay, fire, label="rgb.work-signal")

    def _arm_signal_timer(self) -> None:
        """Leader-liveness fallback.

        If the ring leader never answers work signals (it may have crashed
        while the ring was otherwise idle, so no token round will notice), the
        requesting node re-signals a few times and then excludes the leader
        from its local ring view and re-elects deterministically.
        """
        self._signal_attempts = getattr(self, "_signal_attempts", 0) + 1
        attempts = self._signal_attempts

        def expire(_engine: SimulationEngine) -> None:
            if self.crashed or self.state.mq.is_empty:
                self._signal_attempts = 0
                return
            if attempts != getattr(self, "_signal_attempts", 0):
                return  # superseded by a later signal
            if attempts <= self.config.token_retry_limit:
                self._request_round_soon()
                return
            # Declare the leader faulty and take over deterministically.
            old_leader = self.state.leader
            view = [n for n in self.ring_members() if n != old_leader]
            if old_leader is not None and self.node_id != old_leader:
                self.cluster.note_entity_failure(old_leader, detector=self.node_id)
                for op in self.cluster.build_failure_operations(old_leader, observer=self.node_id):
                    if op.sequence not in self._seen_ops:
                        self._seen_ops.add(op.sequence)
                        self.state.mq.insert(op, sender=self.node_id, now=self.engine.now)
            if view:
                self._ring_view = view
                new_leader = min(view, key=lambda n: n.value)
                self.state.leader = new_leader
                idx = view.index(self.node_id) if self.node_id in view else 0
                self.state.next_node = view[(idx + 1) % len(view)]
                self.state.previous = view[(idx - 1) % len(view)]
            self._signal_attempts = 0
            self._request_round_soon()

        # The wait scales with ring size: a busy ring may legitimately queue a
        # full round per member ahead of this node's request.
        wait = self.config.token_timeout * (3.0 + 2.0 * len(self.ring_members()))
        self.engine.schedule(wait, expire, label="rgb.signal-timeout")

    # ------------------------------------------------------------------
    # heartbeat rounds (perpetual token circulation approximation)
    # ------------------------------------------------------------------

    def schedule_heartbeat(self) -> None:
        """Periodically start an empty round when this node leads an idle ring.

        The paper's token circulates around each ring perpetually, which is
        what detects crashed entities in rings with no membership traffic.
        With ``heartbeat_interval`` configured, the ring leader injects an
        empty round at that cadence whenever no round is in progress.
        """
        interval = self.config.heartbeat_interval
        if interval is None:
            return

        def beat(_engine: SimulationEngine) -> None:
            if self.crashed:
                return
            if self.state.leader == self.node_id and not self._round_in_progress:
                self.metrics.counter("protocol.heartbeat_rounds").increment()
                self._handle_work_signal(self.node_id)
            self.engine.schedule(interval, beat, label="rgb.heartbeat")

        # Stagger the first beat by a node-dependent offset so rings don't all
        # fire at the same instant.
        offset = (abs(hash(self.node_id.value)) % 1000) / 1000.0 * interval
        self.engine.schedule(interval + offset, beat, label="rgb.heartbeat")

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if self.crashed:
            return
        handler = {
            MSG_MQ_INSERT: self._on_mq_insert,
            MSG_WORK_SIGNAL: self._on_work_signal,
            MSG_ROUND_GRANT: self._on_round_grant,
            MSG_ROUND_COMPLETE: self._on_round_complete,
            MSG_TOKEN: self._on_token,
            MSG_TOKEN_ACK: self._on_token_ack,
            MSG_HOLDER_ACK: self._on_holder_ack,
        }.get(message.msg_type)
        if handler is None:
            self.metrics.counter("protocol.unknown_message").increment()
            return
        handler(message)

    # -- notifications landing in the MQ --------------------------------------

    def _on_mq_insert(self, message: Message) -> None:
        ops = [_decode_op(d) for d in message.payload.get("operations", [])]  # type: ignore[union-attr]
        fresh = [op for op in ops if op.sequence not in self._seen_ops]
        if not fresh:
            return
        sender = NodeId(message.source)
        for op in fresh:
            self._seen_ops.add(op.sequence)
            self.state.mq.insert(op, sender=sender, now=self.engine.now)
        self.metrics.counter("protocol.notifications_received").increment()
        self._request_round_soon()

    def _on_holder_ack(self, message: Message) -> None:
        self.metrics.counter("protocol.holder_acks_received").increment()

    # -- leader-side round arbitration -------------------------------------------

    def _on_work_signal(self, message: Message) -> None:
        self._handle_work_signal(NodeId(message.source))

    def _handle_work_signal(self, requester: NodeId) -> None:
        if requester not in self._pending_requests:
            self._pending_requests.append(requester)
        self._maybe_grant()

    def _maybe_grant(self) -> None:
        if self._round_in_progress or not self._pending_requests:
            return
        requester = self._pending_requests.pop(0)
        self._round_in_progress = True
        if requester == self.node_id:
            self._start_round_as_holder()
        else:
            self._send(requester, MSG_ROUND_GRANT, {})

    def _on_round_grant(self, message: Message) -> None:
        # Evidence the leader is alive: reset the leader-liveness fallback.
        self._signal_attempts = 0
        self._start_round_as_holder()

    def _on_round_complete(self, message: Message) -> None:
        self._round_in_progress = False
        self._maybe_grant()

    # -- holder-side round execution ----------------------------------------------

    def _start_round_as_holder(self) -> None:
        entries = self.state.mq.drain_entries()
        operations = [e.operation for e in entries]
        child_senders = [
            str(e.sender)
            for e in entries
            if e.sender != self.node_id and e.sender not in self.ring_members()
        ]
        self.metrics.counter("protocol.rounds_started").increment()
        payload: Dict[str, object] = {
            "holder": str(self.node_id),
            "operations": [_encode_op(op) for op in operations],
            "ring_view": [str(n) for n in self.ring_members()],
            "child_senders": child_senders,
        }
        # The holder executes the operations itself before forwarding the token.
        self._execute_token_locally(payload)
        self._forward_token(payload)

    def _finish_round(self, payload: Dict[str, object]) -> None:
        """The token has returned to the holder: acknowledge and release the ring."""
        self.metrics.counter("protocol.rounds_completed").increment()
        if self.config.holder_ack_enabled:
            for sender in dict.fromkeys(payload.get("child_senders", [])):  # type: ignore[union-attr]
                self._send(NodeId(str(sender)), MSG_HOLDER_ACK, {})
        leader = self.state.leader
        if leader is not None and leader != self.node_id:
            self._send(leader, MSG_ROUND_COMPLETE, {})
        else:
            self._round_in_progress = False
            self._maybe_grant()
        # More work may have arrived while the round was circulating.
        if not self.state.mq.is_empty:
            self._request_round_soon()

    # -- token circulation -------------------------------------------------------------

    def _on_token(self, message: Message) -> None:
        payload = dict(message.payload)
        # A circulating token is evidence the ring (and its leader-arbitrated
        # round scheduling) is alive: reset the leader-liveness fallback.
        self._signal_attempts = 0
        self._send(NodeId(message.source), MSG_TOKEN_ACK, {"holder": payload.get("holder")})
        self._adopt_ring_view(payload)
        holder = NodeId(str(payload["holder"]))
        if holder == self.node_id:
            self._finish_round(payload)
            return
        self._execute_token_locally(payload)
        self._forward_token(payload)

    def _on_token_ack(self, message: Message) -> None:
        if self._pending_token is None:
            return
        if NodeId(message.source) != self._pending_token.destination:
            return
        if self._pending_token.timer is not None:
            self._pending_token.timer.cancel()
        self._pending_token = None

    def _adopt_ring_view(self, payload: Dict[str, object]) -> None:
        view = [NodeId(str(n)) for n in payload.get("ring_view", [])]
        if not view or self.node_id not in view:
            return
        self._ring_view = view
        idx = view.index(self.node_id)
        self.state.next_node = view[(idx + 1) % len(view)]
        self.state.previous = view[(idx - 1) % len(view)]
        new_leader = min(view, key=lambda n: n.value)
        if self.state.leader not in view:
            self.state.leader = new_leader
        self.state.ring_ok = True

    def _execute_token_locally(self, payload: Dict[str, object]) -> None:
        operations = [_decode_op(d) for d in payload.get("operations", [])]  # type: ignore[union-attr]
        for op in operations:
            self._seen_ops.add(op.sequence)
        events = self.cluster.apply_operations(self.node_id, operations)
        self.state.ring_ok = True
        # Figure 3 lines 10-13: the ring leader forwards up to its parent.
        if (
            operations
            and self.node_id == self.state.leader
            and self.state.parent_ok
            and self.state.parent is not None
        ):
            fresh = [op for op in operations if op.sequence not in self._forwarded_up]
            if fresh:
                self._forwarded_up.update(op.sequence for op in fresh)
                self._send(
                    self.state.parent,
                    MSG_MQ_INSERT,
                    {"operations": [_encode_op(op) for op in fresh]},
                )
                self.metrics.counter("protocol.notify_parent").increment()
        # Figure 3 lines 14-16: notify child rings.
        if operations and self.config.disseminate_downward and self.state.children:
            for child in list(self.state.children):
                forwarded = self._forwarded_down.setdefault(str(child), set())
                fresh = [op for op in operations if op.sequence not in forwarded]
                if not fresh:
                    continue
                forwarded.update(op.sequence for op in fresh)
                self._send(
                    child,
                    MSG_MQ_INSERT,
                    {"operations": [_encode_op(op) for op in fresh]},
                )
                self.metrics.counter("protocol.notify_child").increment()
        del events  # events are published by the cluster's event bus

    def _forward_token(self, payload: Dict[str, object]) -> None:
        """Send the token to the next node, with timeout-driven failure detection."""
        view = [NodeId(str(n)) for n in payload.get("ring_view", [])]
        if self.node_id not in view or len(view) == 1:
            # Solo ring: the round is trivially complete.
            if str(payload.get("holder")) == str(self.node_id):
                self._finish_round(payload)
            return
        idx = view.index(self.node_id)
        destination = view[(idx + 1) % len(view)]
        self._transmit_token(destination, payload)

    def _transmit_token(self, destination: NodeId, payload: Dict[str, object]) -> None:
        self.metrics.counter("protocol.token_hops").increment()
        pending = _PendingToken(destination=destination, payload=payload, attempts=1)
        self._pending_token = pending
        self._send(destination, MSG_TOKEN, payload)
        self._arm_token_timer(pending)

    def _arm_token_timer(self, pending: _PendingToken) -> None:
        def expire(_engine: SimulationEngine) -> None:
            if self.crashed or self._pending_token is not pending:
                return
            if pending.attempts <= self.config.token_retry_limit:
                pending.attempts += 1
                self.metrics.counter("protocol.token_retransmissions").increment()
                self._send(pending.destination, MSG_TOKEN, pending.payload)
                self._arm_token_timer(pending)
                return
            # The successor is declared faulty: local repair.
            self._pending_token = None
            self._repair_successor(pending)

        pending.timer = self.engine.schedule(
            self.config.token_timeout, expire, label="rgb.token-timeout"
        )

    def _repair_successor(self, pending: _PendingToken) -> None:
        failed = pending.destination
        payload = dict(pending.payload)
        view = [NodeId(str(n)) for n in payload.get("ring_view", [])]
        if failed in view:
            view.remove(failed)
        payload["ring_view"] = [str(n) for n in view]
        self.metrics.counter("protocol.ring_repairs").increment()
        self.cluster.note_entity_failure(failed, detector=self.node_id)
        self._adopt_ring_view(payload)
        # Report the failure (and any members lost with it) in the next round.
        failure_ops = self.cluster.build_failure_operations(failed, observer=self.node_id)
        for op in failure_ops:
            self.capture(op)
        holder = NodeId(str(payload["holder"]))
        if not view or view == [self.node_id] or (len(view) == 1 and view[0] == holder):
            if holder == self.node_id:
                self._finish_round(payload)
            return
        if failed == holder:
            # The round's holder died; the detecting node closes the round itself.
            payload["holder"] = str(self.node_id)
            self._finish_round(payload)
            return
        idx = view.index(self.node_id)
        destination = view[(idx + 1) % len(view)]
        if destination == self.node_id:
            self._finish_round(payload)
            return
        self._transmit_token(destination, payload)


class RGBProtocolCluster:
    """All protocol nodes of one group plus the shared substrate.

    The cluster owns the canonical hierarchy (used for coverage scoping and
    for wiring initial pointers), registers every entity with the transport
    and offers the application-facing operations: join, leave, handoff and
    fail a mobile host; crash an entity; read membership views.
    """

    def __init__(
        self,
        hierarchy: RingHierarchy,
        engine: SimulationEngine,
        network: Network,
        transport: Transport,
        config: Optional[ProtocolConfig] = None,
        metrics: Optional[MetricRegistry] = None,
        event_bus: Optional[MembershipEventBus] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.engine = engine
        self.network = network
        self.transport = transport
        self.config = config if config is not None else ProtocolConfig()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.event_bus = event_bus if event_bus is not None else MembershipEventBus()
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self._op_sequence = itertools.count(1)
        self._member_epochs: Dict[str, int] = {}
        self._failed_entities: Set[NodeId] = set()
        self._coverage_cache: Dict[str, Set[str]] = {}

        states = hierarchy.build_entity_states()
        self.nodes: Dict[NodeId, RGBProtocolNode] = {}
        for node_id, state in states.items():
            state.mq.aggregate = self.config.aggregate_mq
            node = RGBProtocolNode(state, self)
            self.nodes[node_id] = node
            self.transport.register(str(node_id), node.on_message)
        if self.config.heartbeat_interval is not None:
            for node in self.nodes.values():
                node.schedule_heartbeat()

    # ------------------------------------------------------------------
    # membership operations (application-facing)
    # ------------------------------------------------------------------

    def _next_epoch(self, guid: str) -> int:
        epoch = self._member_epochs.get(guid, 0) + 1
        self._member_epochs[guid] = epoch
        return epoch

    def _node(self, node_id: "NodeId | str") -> RGBProtocolNode:
        key = coerce_node(node_id)
        try:
            return self.nodes[key]
        except KeyError:
            raise KeyError(f"unknown protocol node {node_id}") from None

    def join_member(self, ap: "NodeId | str", guid: "GloballyUniqueId | str") -> MemberInfo:
        ap_id = coerce_node(ap)
        guid_id = coerce_guid(guid)
        member = MemberInfo(
            guid=guid_id,
            group=self.hierarchy.group,
            ap=ap_id,
            luid=make_luid(ap_id, guid_id, self._next_epoch(str(guid_id))),
            status=MemberStatus.OPERATIONAL,
        )
        op = TokenOperation(
            op_type=TokenOperationType.MEMBER_JOIN,
            origin=ap_id,
            member=member,
            sequence=next(self._op_sequence),
        )
        self._node(ap_id).capture(op)
        return member

    def leave_member(self, ap: "NodeId | str", guid: "GloballyUniqueId | str") -> None:
        ap_id = coerce_node(ap)
        guid_id = coerce_guid(guid)
        record = self._current_record(ap_id, guid_id)
        op = TokenOperation(
            op_type=TokenOperationType.MEMBER_LEAVE,
            origin=ap_id,
            member=record.with_status(MemberStatus.LEFT),
            sequence=next(self._op_sequence),
        )
        self._node(ap_id).capture(op)

    def fail_member(self, ap: "NodeId | str", guid: "GloballyUniqueId | str") -> None:
        ap_id = coerce_node(ap)
        guid_id = coerce_guid(guid)
        record = self._current_record(ap_id, guid_id)
        op = TokenOperation(
            op_type=TokenOperationType.MEMBER_FAILURE,
            origin=ap_id,
            member=record.with_status(MemberStatus.FAILED),
            sequence=next(self._op_sequence),
        )
        self._node(ap_id).capture(op)

    def handoff_member(
        self,
        guid: "GloballyUniqueId | str",
        old_ap: "NodeId | str",
        new_ap: "NodeId | str",
    ) -> MemberInfo:
        old_id = coerce_node(old_ap)
        new_id = coerce_node(new_ap)
        guid_id = coerce_guid(guid)
        record = self._current_record(old_id, guid_id)
        moved = record.handed_off_to(new_id, self._next_epoch(str(guid_id)))
        if old_id in self.nodes:
            self.nodes[old_id].state.unregister_local_member(str(guid_id))
        op = TokenOperation(
            op_type=TokenOperationType.MEMBER_HANDOFF,
            origin=new_id,
            member=moved,
            previous_ap=old_id,
            sequence=next(self._op_sequence),
        )
        self._node(new_id).capture(op)
        return moved

    def _current_record(self, ap: NodeId, guid: GloballyUniqueId) -> MemberInfo:
        if ap in self.nodes:
            record = self.nodes[ap].state.local_members.get(guid)
            if record is not None:
                return record
            record = self.nodes[ap].state.ring_members.get(guid)
            if record is not None:
                return record
        top_leader = self.hierarchy.topmost_ring().leader
        if top_leader is not None and top_leader in self.nodes:
            record = self.nodes[top_leader].state.ring_members.get(guid)
            if record is not None:
                return record
        return MemberInfo(
            guid=guid,
            group=self.hierarchy.group,
            ap=ap,
            luid=make_luid(ap, guid, self._next_epoch(str(guid))),
            status=MemberStatus.OPERATIONAL,
        )

    # ------------------------------------------------------------------
    # entity failure
    # ------------------------------------------------------------------

    def crash_entity(self, node_id: "NodeId | str") -> None:
        """Crash a network entity at the network level.

        Detection happens through token timeouts at its ring neighbours the
        next time a round runs in that ring (heartbeat rounds guarantee one
        when ``heartbeat_interval`` is configured).
        """
        key = coerce_node(node_id)
        self.network.set_node_state(str(key), NodeState.FAILED)
        self._failed_entities.add(key)
        if key in self.nodes:
            self.nodes[key].crashed = True
        self.metrics.counter("protocol.entity_crashes").increment()

    def note_entity_failure(self, node_id: NodeId, detector: NodeId) -> None:
        """Called by a node that declared ``node_id`` faulty via timeouts."""
        self._failed_entities.add(node_id)
        if self.hierarchy.has_node(node_id):
            ring = self.hierarchy.ring_of(node_id)
            was_leader = ring.remove_member(node_id)
            if was_leader:
                ring.elect_leader()
            self.hierarchy.ring_of_node.pop(node_id, None)
            orphans = self.hierarchy.child_rings.pop(node_id, [])
            new_parent = ring.leader
            if new_parent is not None:
                for ring_id in orphans:
                    self.hierarchy.parent_node[ring_id] = new_parent
                    self.hierarchy.child_rings.setdefault(new_parent, []).append(ring_id)
                    child_leader = self.hierarchy.ring(ring_id).leader
                    if child_leader is not None and new_parent in self.nodes:
                        self.nodes[new_parent].state.add_child(child_leader)
                        if child_leader in self.nodes:
                            self.nodes[child_leader].state.set_parent(new_parent)
        self._coverage_cache.clear()
        self.trace.record(self.engine.now, "repair", str(detector), f"excluded {node_id}")

    def build_failure_operations(self, failed: NodeId, observer: NodeId) -> List[TokenOperation]:
        """Operations reporting an entity failure and the members lost with it."""
        ops: List[TokenOperation] = []
        observer_state = self.nodes[observer].state
        for member in observer_state.ring_members.members_at(failed):
            ops.append(
                TokenOperation(
                    op_type=TokenOperationType.MEMBER_FAILURE,
                    origin=observer,
                    member=member.with_status(MemberStatus.FAILED),
                    sequence=next(self._op_sequence),
                )
            )
        ops.append(
            TokenOperation(
                op_type=TokenOperationType.NE_FAILURE,
                origin=observer,
                entity=failed,
                sequence=next(self._op_sequence),
            )
        )
        return ops

    # ------------------------------------------------------------------
    # operation application (shared with the structural semantics)
    # ------------------------------------------------------------------

    def _coverage(self, ring_id: str) -> Set[str]:
        cached = self._coverage_cache.get(ring_id)
        if cached is not None:
            return cached
        ring = self.hierarchy.ring(ring_id)
        members = set(ring.members)
        covered: Set[str] = set()
        for ap in self.hierarchy.access_proxies():
            if ap in members:
                covered.add(ap.value)
                continue
            for ancestor in self.hierarchy.ancestry(ap):
                if ancestor in members:
                    covered.add(ap.value)
                    break
        self._coverage_cache[ring_id] = covered
        return covered

    def apply_operations(
        self, node_id: NodeId, operations: Sequence[TokenOperation]
    ) -> List[object]:
        """Apply token operations to one entity's member lists."""
        if not self.hierarchy.has_node(node_id):
            return []
        ring = self.hierarchy.ring_of(node_id)
        entity = self.nodes[node_id].state
        coverage = self._coverage(ring.ring_id)
        bottom_tier = self.hierarchy.bottom_tier()
        events: List[object] = []
        now = self.engine.now
        for op in operations:
            if not op.op_type.concerns_member or op.member is None:
                continue
            member = op.member
            in_coverage = member.ap.value in coverage
            if ring.tier == bottom_tier:
                if member.ap == node_id and op.op_type in (
                    TokenOperationType.MEMBER_JOIN,
                    TokenOperationType.MEMBER_HANDOFF,
                ):
                    entity.local_members.add(member)
                elif str(member.guid) in entity.local_members.guids() and (
                    member.ap != node_id
                    or op.op_type
                    in (TokenOperationType.MEMBER_LEAVE, TokenOperationType.MEMBER_FAILURE)
                ):
                    entity.local_members.remove(member.guid)
                if member.ap != node_id and member.ap in ring.members:
                    if op.op_type in (
                        TokenOperationType.MEMBER_JOIN,
                        TokenOperationType.MEMBER_HANDOFF,
                    ):
                        entity.neighbor_members.add(member)
                    else:
                        entity.neighbor_members.remove(member.guid)
                elif (
                    str(member.guid) in entity.neighbor_members.guids()
                    and member.ap not in ring.members
                ):
                    entity.neighbor_members.remove(member.guid)
            if op.op_type in (TokenOperationType.MEMBER_JOIN, TokenOperationType.MEMBER_HANDOFF):
                if in_coverage:
                    event = entity.ring_members.apply(op, now)
                else:
                    event = None
                    if str(member.guid) in entity.ring_members.guids():
                        entity.ring_members.remove(member.guid)
            else:
                event = entity.ring_members.apply(op, now)
            if event is not None:
                events.append(event)
                self.event_bus.publish(event)
        return events

    # ------------------------------------------------------------------
    # reading state
    # ------------------------------------------------------------------

    def entity_state(self, node_id: "NodeId | str") -> NetworkEntityState:
        return self._node(node_id).state

    def entity(self, node_id: "NodeId | str") -> NetworkEntityState:
        """Alias of :meth:`entity_state` (shared interface with OneRoundEngine)."""
        return self._node(node_id).state

    def global_membership(self) -> List[MemberInfo]:
        leader = self.hierarchy.topmost_ring().leader
        if leader is None:
            raise RuntimeError("topmost ring has no leader")
        return self.nodes[leader].state.ring_members.members()

    def global_guids(self) -> List[str]:
        return [str(m.guid) for m in self.global_membership()]

    def run_until_quiescent(self, max_time: Optional[float] = None) -> int:
        """Convenience: drive the simulation engine until no events remain."""
        return self.engine.run(until=max_time)
