"""Columnar struct-of-arrays kernel backend.

The object kernel (:mod:`repro.core.kernel`) keeps per-proxy hot state on
:class:`repro.core.entity.NetworkEntityState` instances and pays CPython
object overhead per visit even when a round provably changes nothing — at a
million proxies the propagation of a small join burst spends ~95% of its
time discovering, one identifier-keyed dict probe at a time, that there is
nothing to do.  This module assigns every proxy a **dense integer index**
(rings in hierarchy iteration order, members ring-contiguous within each
ring) and keeps the hot per-proxy/per-ring state in numpy arrays owned by
:class:`ColumnarStore`:

``ring_start``
    CSR offsets: ring ``r`` owns dense node indices
    ``ring_start[r]:ring_start[r+1]`` (ring-contiguous layout, so a ring's
    circulation order is one contiguous index range).
``node_ring`` / ``node_pos``
    Per-node ring index and position within the ring's circulation order.
``alive`` / ``ring_dead``
    Per-node liveness flags and the per-ring dead-member counts they roll
    up to.
``ring_applied_max``
    Per-ring applied-sequence high-water mark (columnar mirror of the
    per-GUID ``ring_applied_seq`` maps, maintained by the fast round).
``ring_tier`` / ``ring_parent_ring`` / ``ring_leader_pos`` /
``ring_child_total`` / ``ring_version0``
    Structural columns: tier, parent-ring index (-1 at the top), leader
    position in circulation order, number of child rings bridged by the
    ring's members, and each ring's mutation counter at store build time.
``ring_has_state``
    Conservative per-ring flag: True once a ring may hold membership-view
    state (see :class:`ColumnarKernel`).
``ring_holder_pos``
    Runtime column: the next holder's circulation position, kept in sync
    with the kernel's ``_ring_holder`` pointer by the fast round (and
    re-derived whenever an object-path round moved the pointer behind the
    column's back).

Coverage checks are vectorised: a batch's covered-ring set is computed by
sweeping the ``ring_parent_ring`` column from the operations' access-proxy
ring indices to the root (one gather per tier, all operations at once)
instead of climbing dict chains per entry per visit.

:class:`ColumnarKernel` subclasses :class:`TokenRoundKernel` and keeps
**all** protocol state (queues, seen-sets, applied maps, counters, holder
pointers, metrics) bit-identical to the object kernel.  Its ``run_round``
takes a fast path only when the columnar state proves the round cannot
change any membership view:

* ``batched_apply`` is on, tracing is off, and no hierarchy surgery has
  happened (``structure_dirty``);
* the ring's shape is unchanged (``version`` matches ``ring_version0``)
  and none of its members has failed (``ring_dead == 0``);
* every drained operation is a member operation whose coverage chain —
  computed by the vectorised parent sweep — does not include this ring;
* the ring has never held membership-view state (``ring_has_state``).

Under those conditions the object kernel's per-visit delta application is a
proven no-op at every member, so the fast path performs the identical
bookkeeping (drain, seen/applied marks, token/notify/ack hops, counters,
holder rotation, dispatch callbacks in the same order) without touching the
entity objects — member entities are reached positionally through dense
per-ring rows, never through identifier-keyed dict probes.  Any round that
fails a gate falls back to ``super().run_round`` and the ring is
conservatively marked ``ring_has_state`` — over-marking only costs speed,
never correctness.  ``pending_rings`` and ``propagate`` get the same
treatment: identical candidate verification and scheduling, with the
queued-work scans running over the dense rows.

Known limitation: state planted behind the kernel's back via
``NetworkEntityState.register_local_member`` on a ring the kernel never ran
an object-path round for is invisible to ``ring_has_state``.  No in-repo
caller does this (the only kernel-side direct mutation is the handoff
unregister at the old proxy, whose ring was necessarily marked when the
member's join circulated there); external code driving entities directly
should use the object backend.
"""

from __future__ import annotations

import io
import warnings
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.entity import NetworkEntityState
from repro.core.hierarchy import RingHierarchy, paused_gc
from repro.core.identifiers import NodeId, coerce_node
from repro.core.kernel import (
    DirectDispatch,
    PropagationReport,
    RoundResult,
    TokenRoundKernel,
    _RingDirtyMarker,
)
from repro.core.message_queue import QueuedMessage

__all__ = ["ColumnarStore", "ColumnarKernel"]


class ColumnarStore:
    """Dense-index struct-of-arrays view of a :class:`RingHierarchy`.

    Built once per kernel (or rehydrated from a topology snapshot's shipped
    arrays); the structural columns describe the hierarchy *at build time*
    and every consumer gates on ``structure_dirty`` / per-ring versions
    before trusting them.
    """

    __slots__ = (
        "ring_ids",
        "ring_index",
        "ring_start",
        "ring_tier",
        "ring_parent_ring",
        "ring_parent_pos",
        "ring_leader_pos",
        "ring_version0",
        "ring_child_total",
        "ring_version0_i",
        "ring_leader_pos_i",
        "ring_child_total_i",
        "ring_parent_ring_i",
        "ring_parent_pos_i",
        "ring_start_i",
        "ring_tier_i",
        "ring_dead",
        "ring_has_state",
        "ring_applied_max",
        "ring_holder_pos",
        "ring_work_hint",
        "ring_hint_wired",
        "node_ring",
        "node_pos",
        "alive",
        "alive_i",
        "bottom_tier",
        "structure_dirty",
        "rebuilt_from_mismatch",
    )

    def __init__(
        self,
        ring_ids: List[str],
        ring_start: np.ndarray,
        ring_tier: np.ndarray,
        ring_parent_ring: np.ndarray,
        ring_parent_pos: np.ndarray,
        ring_leader_pos: np.ndarray,
        ring_version0: np.ndarray,
        ring_child_total: np.ndarray,
        bottom_tier: int,
    ) -> None:
        ring_count = len(ring_ids)
        node_count = int(ring_start[-1]) if ring_count else 0
        self.ring_ids = ring_ids
        # dict(zip(...)) runs the insert loop in C (same trick as the ring's
        # position index).
        self.ring_index: Dict[str, int] = dict(zip(ring_ids, range(ring_count)))
        self.ring_start = ring_start
        self.ring_tier = ring_tier
        self.ring_parent_ring = ring_parent_ring
        self.ring_parent_pos = ring_parent_pos
        self.ring_leader_pos = ring_leader_pos
        self.ring_version0 = ring_version0
        self.ring_child_total = ring_child_total
        self.bottom_tier = bottom_tier
        # Scalar mirrors of the structural columns.  The fast round reads
        # these once per ring per round; a numpy scalar index boxes a new
        # array scalar (~10x a list index), so the per-round gates go
        # through plain int lists while the arrays stay canonical for the
        # vectorised sweeps and the snapshot payload.
        self.ring_version0_i = ring_version0.tolist()
        self.ring_leader_pos_i = ring_leader_pos.tolist()
        self.ring_child_total_i = ring_child_total.tolist()
        self.ring_parent_ring_i = ring_parent_ring.tolist()
        self.ring_parent_pos_i = ring_parent_pos.tolist()
        self.ring_start_i = ring_start.tolist()
        self.ring_tier_i = ring_tier.tolist()
        # Mutable per-ring / per-node hot state.  The per-ring columns are
        # written every round (holder position, applied high-water), so they
        # live as plain int lists for the same boxing reason; the per-node
        # columns stay numpy (bulk-built, rarely written).
        self.ring_dead = [0] * ring_count
        self.ring_has_state = [False] * ring_count
        self.ring_applied_max = [0] * ring_count
        self.ring_holder_pos = [-1] * ring_count
        # Per-ring queued-work hint: -2 = unknown (scan the row), -1 = no
        # member holds queued work, p >= 0 = *only* position p may hold
        # queued work (verified on every use).  Only rings whose dirty
        # marker the kernel wired (``ring_hint_wired``) ever leave -2 —
        # every insert funnels through the marker, which degrades the hint
        # to -2, so a "no work" claim can never go stale-low.
        self.ring_work_hint = [-2] * ring_count
        self.ring_hint_wired = [False] * ring_count
        counts = np.diff(ring_start) if ring_count else np.zeros(0, dtype=np.int64)
        self.node_ring = np.repeat(np.arange(ring_count, dtype=np.int32), counts)
        self.node_pos = (
            np.arange(node_count, dtype=np.int32)
            - np.repeat(ring_start[:-1], counts).astype(np.int32)
            if ring_count
            else np.zeros(0, dtype=np.int32)
        )
        self.alive = np.ones(node_count, dtype=np.bool_)
        # List mirror of ``alive``: the dense forward path reads one flag
        # per candidate target and a numpy scalar read would dominate it.
        self.alive_i = [True] * node_count
        self.structure_dirty = False
        # True when a shipped snapshot payload failed shape validation and
        # the store was rebuilt from the hierarchy instead (observable via
        # the ``harness.columnar_snapshot_rebuilt`` metric on the kernel).
        self.rebuilt_from_mismatch = False

    # -- construction -------------------------------------------------------

    @classmethod
    def from_hierarchy(cls, hierarchy: RingHierarchy) -> "ColumnarStore":
        """Build the columns by one pass over the hierarchy's ring table."""
        rings = hierarchy.rings
        ring_ids = list(rings.keys())
        ring_count = len(ring_ids)
        ring_values = list(rings.values())
        counts = np.fromiter(
            (len(r.members) for r in ring_values), dtype=np.int64, count=ring_count
        )
        ring_start = np.zeros(ring_count + 1, dtype=np.int64)
        np.cumsum(counts, out=ring_start[1:])
        ring_tier = np.fromiter(
            (r.tier for r in ring_values), dtype=np.int32, count=ring_count
        )
        ring_version0 = np.fromiter(
            (r.version for r in ring_values), dtype=np.int64, count=ring_count
        )
        ring_leader_pos = np.fromiter(
            (_leader_position(r) for r in ring_values),
            dtype=np.int32,
            count=ring_count,
        )
        ring_index = dict(zip(ring_ids, range(ring_count)))
        parent_node = hierarchy.parent_node
        ring_of_node = hierarchy.ring_of_node
        ring_parent_ring = np.full(ring_count, -1, dtype=np.int64)
        ring_parent_pos = np.full(ring_count, -1, dtype=np.int32)
        for r, ring_id in enumerate(ring_ids):
            parent = parent_node.get(ring_id)
            if parent is None:
                continue
            parent_ring_id = ring_of_node.get(parent)
            if parent_ring_id is None:
                continue
            parent_ring_idx = ring_index.get(parent_ring_id, -1)
            ring_parent_ring[r] = parent_ring_idx
            if parent_ring_idx >= 0:
                try:
                    ring_parent_pos[r] = ring_values[parent_ring_idx].members.index(
                        parent
                    )
                except ValueError:
                    pass
        ring_child_total = np.zeros(ring_count, dtype=np.int64)
        for node, child_ring_ids in hierarchy.child_rings.items():
            node_ring_id = ring_of_node.get(node)
            if node_ring_id is None:
                continue
            ring_child_total[ring_index[node_ring_id]] += len(child_ring_ids)
        return cls(
            ring_ids,
            ring_start,
            ring_tier,
            ring_parent_ring,
            ring_parent_pos,
            ring_leader_pos,
            ring_version0,
            ring_child_total,
            hierarchy.bottom_tier() if ring_count else 0,
        )

    # -- snapshot transport -------------------------------------------------

    def to_payload(self) -> bytes:
        """Serialise the structural columns (npz, no pickle)."""
        buffer = io.BytesIO()
        np.savez(
            buffer,
            ring_start=self.ring_start,
            ring_tier=self.ring_tier,
            ring_parent_ring=self.ring_parent_ring,
            ring_parent_pos=self.ring_parent_pos,
            ring_leader_pos=self.ring_leader_pos,
            ring_version0=self.ring_version0,
            ring_child_total=self.ring_child_total,
            bottom_tier=np.asarray([self.bottom_tier], dtype=np.int64),
        )
        return buffer.getvalue()

    @classmethod
    def from_payload(cls, hierarchy: RingHierarchy, payload: bytes) -> "ColumnarStore":
        """Rehydrate from shipped arrays; ring ids come from the hierarchy.

        Falls back to :meth:`from_hierarchy` when the arrays do not match
        the hierarchy's shape (a snapshot/hierarchy pairing bug would
        otherwise corrupt the fast path silently).  The fallback is loud:
        it emits a :class:`RuntimeWarning` and flags the returned store
        (``rebuilt_from_mismatch``) so the kernel can surface a metric — a
        stale pairing costs every cell its fast path, which used to happen
        with zero signal.
        """
        with np.load(io.BytesIO(payload), allow_pickle=False) as arrays:
            ring_start = arrays["ring_start"]
            ring_tier = arrays["ring_tier"]
            ring_parent_ring = arrays["ring_parent_ring"]
            ring_parent_pos = arrays["ring_parent_pos"]
            ring_leader_pos = arrays["ring_leader_pos"]
            ring_version0 = arrays["ring_version0"]
            ring_child_total = arrays["ring_child_total"]
            bottom_tier = int(arrays["bottom_tier"][0])
        rings = hierarchy.rings
        ring_ids = list(rings.keys())
        if len(ring_ids) != len(ring_tier) or int(ring_start[-1]) != sum(
            len(r.members) for r in rings.values()
        ):
            warnings.warn(
                "columnar snapshot payload does not match the hierarchy shape "
                f"(payload: {len(ring_tier)} rings / {int(ring_start[-1])} nodes, "
                f"hierarchy: {len(ring_ids)} rings / "
                f"{sum(len(r.members) for r in rings.values())} nodes); "
                "rebuilding the store from the hierarchy — the snapshot "
                "pairing is stale and the shipped arrays were discarded",
                RuntimeWarning,
                stacklevel=2,
            )
            store = cls.from_hierarchy(hierarchy)
            store.rebuilt_from_mismatch = True
            return store
        return cls(
            ring_ids,
            ring_start,
            ring_tier,
            ring_parent_ring,
            ring_parent_pos,
            ring_leader_pos,
            ring_version0,
            ring_child_total,
            bottom_tier,
        )

    # -- vectorised sweeps --------------------------------------------------

    def covered_ring_indices(self, ap_ring_indices: Sequence[int]) -> FrozenSet[int]:
        """Ring indices covering any of the given (bottom-tier) AP rings.

        Vectorised ancestor sweep: one ``ring_parent_ring`` gather per tier
        moves *all* chains up one level at once.  Matches
        ``TokenRoundKernel.ring_covers`` on an unmodified hierarchy: a
        non-bottom start ring covers nothing, chains include the start ring
        itself and stop at the root.
        """
        if not ap_ring_indices:
            return frozenset()
        current = np.unique(np.asarray(ap_ring_indices, dtype=np.int64))
        current = current[self.ring_tier[current] == self.bottom_tier]
        levels: List[np.ndarray] = []
        while current.size:
            levels.append(current)
            current = self.ring_parent_ring[current]
            current = np.unique(current[current >= 0])
        if not levels:
            return frozenset()
        return frozenset(np.concatenate(levels).tolist())

    def tier_ring_indices(self, tier: int) -> np.ndarray:
        """Store-order indices of every ring in ``tier`` (vectorised).

        Store order follows hierarchy iteration order, which for regular
        hierarchies is also lexicographic ring-id order — the same fan-out
        order the object query path derives from ``rings_in_tier``.  Only
        valid while ``structure_dirty`` is False; the serving layer gates on
        that before trusting the structural columns.
        """
        return np.nonzero(self.ring_tier == tier)[0]

    def tier_leader_rows(self, tier: int) -> Tuple[np.ndarray, np.ndarray]:
        """(ring indices, dense leader rows) for every led ring of ``tier``.

        The snapshot export hook for the serving layer: one boolean sweep
        over the structural columns yields the leader row of every ring in
        the tier (rings without a leader are dropped), so a fan-out query
        can gather all leader views without touching ring objects.
        """
        rings = self.tier_ring_indices(tier)
        leader_pos = self.ring_leader_pos[rings]
        led = leader_pos >= 0
        rings = rings[led]
        rows = self.ring_start[rings] + leader_pos[led]
        return rings, rows

    def dead_ring_count(self) -> int:
        """Rings with at least one failed member (diagnostics)."""
        return sum(1 for dead in self.ring_dead if dead)

    def summary(self) -> Dict[str, int]:
        """Cheap structural summary for tests and diagnostics."""
        return {
            "rings": len(self.ring_ids),
            "nodes": int(self.alive.shape[0]),
            "bottom_rings": int(np.count_nonzero(self.ring_tier == self.bottom_tier)),
            "rings_with_state": sum(1 for flag in self.ring_has_state if flag),
            "dead_nodes": int(np.count_nonzero(~self.alive)),
            "applied_max": max(self.ring_applied_max, default=0),
        }


def _leader_position(ring) -> int:
    """The leader's index in circulation order (-1 for no leader)."""
    leader = ring.leader
    if leader is None:
        return -1
    members = ring.members
    if members and members[0] is leader:
        return 0
    try:
        return members.index(leader)
    except ValueError:
        return -1


class ColumnarKernel(TokenRoundKernel):
    """The object kernel with a columnar no-op-round fast path.

    Drop-in subclass: construction, capture, repair, application and every
    piece of protocol state are inherited unchanged, so any round that is
    not *provably* a no-op behaves bit-identically by construction.  See
    the module docstring for the fast-path gates.
    """

    def __init__(self, *args, store_payload: Optional[bytes] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        with paused_gc():
            if store_payload is not None:
                self._store = ColumnarStore.from_payload(self.hierarchy, store_payload)
                if self._store.rebuilt_from_mismatch:
                    self.metrics.counter("harness.columnar_snapshot_rebuilt").increment()
            else:
                self._store = ColumnarStore.from_hierarchy(self.hierarchy)
            self._ring_rows = self._build_entity_rows()
            self._parent_plan, self._child_plan = self._build_forward_plans()
            # Ring objects in store order (ring ids always come from the
            # hierarchy's iteration order, payload path included).  Ring
            # objects are identity-stable after construction — the rings
            # dict is only assigned during hierarchy building — so the fast
            # paths can reach ``version``/``members`` by dense index
            # instead of probing the million-entry rings dict per round.
            self._ring_objs = list(self.hierarchy.rings.values())
            self._wire_work_hints()
        #: Covered-ring sets per drained batch, keyed by the operations'
        #: sequence tuple (sequences are unique per capture and aggregation
        #: preserves a collapsed operation's member AP, so the key is
        #: content-stable).  Cleared whenever coverage is invalidated.
        self._batch_cover: Dict[Tuple[int, ...], FrozenSet[int]] = {}
        #: (target ring, sequence tuple) pairs whose forward filtered to
        #: empty.  Seen-sets and applied high-waters only grow, so an
        #: empty-fresh verdict is permanent and the repeat forward (every
        #: child of an upper ring reports the same batch back up to the
        #: same parent) collapses to one set probe.
        self._fully_seen: set = set()
        self._fast_enabled = bool(self.config.batched_apply)
        # Per-ring aliases of the seen-set / applied-map entries, filled on
        # first use: the sets/dicts are only ever mutated in place, so the
        # dense row and the kernel's string-keyed mapping stay one object.
        ring_count = len(self._store.ring_ids)
        self._seen_rows: List[Optional[set]] = [None] * ring_count
        self._applied_rows: List[Optional[Dict[str, int]]] = [None] * ring_count
        # ProtocolConfig is frozen; hoist the per-round flag reads.
        self._disseminate_downward = self.config.disseminate_downward
        self._holder_ack_enabled = self.config.holder_ack_enabled
        # Direct (synchronous, receiver-effect-free) dispatch lets the fast
        # path inline notification delivery and skip no-op ack callbacks.
        self._direct_dispatch = type(self.dispatch) is DirectDispatch

    @property
    def store(self) -> ColumnarStore:
        """The columnar struct-of-arrays store (read-only structural view).

        The snapshot export hook for the serving layer: consumers must gate
        on ``store.structure_dirty`` before trusting the structural columns.
        """
        return self._store

    def tier_leader_views(self, tier: int):
        """Per-ring ``(ring, leader entity)`` pairs for ``tier``, ring-id order.

        The serving layer's leader-row gather: ring selection and leader
        rows come from one vectorised sweep over the structural columns
        (:meth:`ColumnarStore.tier_leader_rows`) and each leader entity is
        reached positionally through the dense per-ring rows — no rings-dict
        scan, no identifier-keyed entity probes.  Returns ``None`` whenever
        the columns cannot be trusted (hierarchy surgery happened, or a ring
        row fell back to object alignment); callers must then derive the
        fan-out from the hierarchy itself.
        """
        store = self._store
        if store.structure_dirty:
            return None
        rings_idx, rows = store.tier_leader_rows(tier)
        ring_objs = self._ring_objs
        entity_rows = self._ring_rows
        ring_ids = store.ring_ids
        ring_start = store.ring_start_i
        out = []
        for r, row in zip(rings_idx.tolist(), rows.tolist()):
            entities = entity_rows[r]
            if entities is None:
                return None
            out.append((ring_ids[r], ring_objs[r], entities[row - ring_start[r]]))
        out.sort(key=lambda item: item[0])
        return [(ring, entity) for _, ring, entity in out]

    def _build_entity_rows(self) -> List[Optional[List[NetworkEntityState]]]:
        """Dense per-ring entity rows aligned with circulation order.

        Entities built in-house (or passed pristine) iterate in exact
        (ring, member) order, so the rows come from one lockstep pass with
        identity checks only; otherwise fall back to per-node lookups.  A
        ring with members missing from the entity map gets ``None`` (its
        rounds stay on the object path, which raises the proper errors).
        """
        rings = self.hierarchy.rings.values()
        entities = self.entities
        rows: List[Optional[List[NetworkEntityState]]] = []
        entity_iter = iter(entities.values())
        aligned = True
        for ring in rings:
            row: List[NetworkEntityState] = []
            for node in ring.members:
                entity = next(entity_iter, None)
                if entity is None or (
                    entity.current is not node and entity.current != node
                ):
                    aligned = False
                    break
                row.append(entity)
            if not aligned:
                break
            rows.append(row)
        if aligned:
            return rows
        rows = []
        for ring in rings:
            row = []
            for node in ring.members:
                entity = entities.get(node)
                if entity is None:
                    row = None
                    break
                row.append(entity)
            rows.append(row)
        return rows

    def _wire_work_hints(self) -> None:
        """Hook the per-ring dirty markers into ``ring_work_hint``.

        The kernel assigns one :class:`_RingDirtyMarker` per ring to every
        member's queue wiring, so a ring's marker is reachable through any
        member (``row[0]``).  A marker is wired only when it really is that
        ring's own marker (its ``_ring_id`` resolves back to the same dense
        index); anything else leaves the ring permanently at hint -2, which
        only costs scans, never correctness.  Initial state: a ring outside
        the dirty set provably holds no queued work (the same every-insert
        hook guarantee the dirty set itself relies on), so wired rings
        start at -1 and dirty rings at -2.
        """
        store = self._store
        hints = store.ring_work_hint
        wired = store.ring_hint_wired
        ring_index = store.ring_index
        for idx, row in enumerate(self._ring_rows):
            if not row:
                continue
            marker = row[0].mq_hook
            if type(marker) is not _RingDirtyMarker:
                continue
            if ring_index.get(marker._ring_id) != idx:
                continue
            marker._hints = hints
            marker._hint_idx = idx
            wired[idx] = True
            hints[idx] = -1
        for ring_id in self._dirty_rings:
            idx = ring_index.get(ring_id)
            if idx is not None:
                hints[idx] = -2

    def _build_forward_plans(self):
        """Precomputed dense forward targets for the proven-no-op round.

        Parent/child pointers only change through ``exclude_entity``, which
        sets ``structure_dirty`` before any rewire, so under a clean
        structure the build-time wiring is authoritative and the fast round
        can forward by (ring index, position) without identifier-keyed dict
        probes.  Each plan entry is validated against the live entity
        pointers at build time; anything that does not line up stays
        ``None`` and falls back to the generic forward.

        Returns ``(parent_plan, child_plan)``:

        ``parent_plan[r]``
            ``(parent_ring_idx, parent_pos, parent_dense_idx)`` for the
            leader's Notification-to-Parent target, or ``None``.
        ``child_plan[r]``
            Per-position tuples of ``(child_ring_idx, child_pos,
            child_dense_idx)`` triples mirroring each member's ``children``
            list (only for rings that bridge child rings), or ``None``.
        """
        store = self._store
        rows = self._ring_rows
        rings = self.hierarchy.rings
        ring_of_node = self.hierarchy.ring_of_node
        ring_index = store.ring_index
        ring_start = store.ring_start_i
        ring_count = len(store.ring_ids)
        parent_plan: List[Optional[Tuple[int, int, int]]] = [None] * ring_count
        child_plan: List[Optional[List[Tuple]]] = [None] * ring_count
        for r in range(ring_count):
            row = rows[r]
            if row is None:
                continue
            lp = store.ring_leader_pos_i[r]
            pidx = store.ring_parent_ring_i[r]
            ppos = store.ring_parent_pos_i[r]
            if lp >= 0 and pidx >= 0 and ppos >= 0:
                prow = rows[pidx]
                if prow is not None and ppos < len(prow):
                    leader_entity = row[lp]
                    target = prow[ppos].current
                    parent = leader_entity.parent
                    if parent is not None and (parent is target or parent == target):
                        parent_plan[r] = (pidx, ppos, ring_start[pidx] + ppos)
            if not store.ring_child_total_i[r]:
                continue
            plan: List[Tuple] = []
            ok = True
            for entity in row:
                triples = []
                for child in entity.children:
                    child_ring_id = ring_of_node.get(child)
                    cidx = (
                        ring_index.get(child_ring_id)
                        if child_ring_id is not None
                        else None
                    )
                    crow = rows[cidx] if cidx is not None else None
                    if crow is None:
                        ok = False
                        break
                    try:
                        cpos = rings[child_ring_id].members.index(child)
                    except ValueError:
                        ok = False
                        break
                    dense_target = crow[cpos].current
                    if dense_target is not child and dense_target != child:
                        ok = False
                        break
                    triples.append((cidx, cpos, ring_start[cidx] + cpos))
                if not ok:
                    break
                plan.append(tuple(triples))
            if ok:
                child_plan[r] = plan
        return parent_plan, child_plan

    # -- state tracking overrides ------------------------------------------

    def fail_entity(self, node: "NodeId | str", now: float = 0.0) -> None:
        key = coerce_node(node)
        first_failure = key not in self.failed
        super().fail_entity(key, now)
        if not first_failure:
            return
        store = self._store
        ring_id = self.hierarchy.ring_of_node.get(key)
        if ring_id is None:
            return
        ring_idx = store.ring_index.get(ring_id)
        if ring_idx is None:
            return
        store.ring_dead[ring_idx] += 1
        ring = self.hierarchy.rings[ring_id]
        if ring.version == store.ring_version0_i[ring_idx]:
            try:
                pos = ring.members.index(key)
            except ValueError:
                return
            dense = store.ring_start_i[ring_idx] + pos
            store.alive[dense] = False
            store.alive_i[dense] = False

    def invalidate_coverage(self) -> None:
        # Hierarchy surgery: the structural columns no longer describe the
        # live hierarchy, so the fast path switches off globally.
        self._store.structure_dirty = True
        self._batch_cover.clear()
        self._fully_seen.clear()  # still valid; dropped only to bound memory
        super().invalidate_coverage()

    def apply_operations_at(self, node, ring, operations, now, batched=None):
        # Any application at a ring may create membership-view state there.
        ring_idx = self._store.ring_index.get(ring.ring_id)
        if ring_idx is not None:
            self._store.ring_has_state[ring_idx] = True
        return super().apply_operations_at(node, ring, operations, now, batched)

    # -- fast-path helpers --------------------------------------------------

    def _object_round(
        self, ring_idx: Optional[int], ring_id: str, holder, now: float
    ) -> RoundResult:
        """Fall back to the object kernel, conservatively marking the ring."""
        if ring_idx is not None:
            # The object path may apply operations (or repair) here; assume
            # the ring holds state from now on.  It also drains queues
            # behind the work hint's back, so the hint degrades to
            # "unknown" — a positive hint must always imply queued work.
            self._store.ring_has_state[ring_idx] = True
            self._store.ring_work_hint[ring_idx] = -2
        return super().run_round(ring_id, holder=holder, now=now)

    def _batch_covered(self, key: Tuple[int, ...], entries) -> FrozenSet[int]:
        cached = self._batch_cover.get(key)
        if cached is not None:
            return cached
        store = self._store
        ring_of_node = self.hierarchy.ring_of_node
        ring_index = store.ring_index
        ap_rings: List[int] = []
        for entry in entries:
            ap_ring_id = ring_of_node.get(entry.operation.member.ap)
            if ap_ring_id is None:
                continue
            ap_ring_idx = ring_index.get(ap_ring_id)
            if ap_ring_idx is not None:
                ap_rings.append(ap_ring_idx)
        covered = store.covered_ring_indices(ap_rings)
        self._batch_cover[key] = covered
        return covered

    def _fast_forward(
        self, sender: NodeId, target: NodeId, operations, now, seq_key=None
    ) -> int:
        """``forward_notification`` for the proven-no-op round.

        Identical filtering and delivery; the crashed-target repair path
        delegates to the inherited implementation.
        """
        target_entity = self.entities.get(target)
        if target_entity is None:
            return 0
        failed = self.failed
        if failed and target in failed:
            return self.forward_notification(sender, target, operations, now)
        target_ring_id = self.hierarchy.ring_of_node.get(target)
        if target_ring_id is None:
            return 0
        if target_ring_id not in self.hierarchy.rings:
            raise KeyError(target_ring_id)
        if seq_key is not None and (target_ring_id, seq_key) in self._fully_seen:
            return 0
        seen = self.ring_seen[target_ring_id]
        applied = self.ring_applied_seq.get(target_ring_id)
        if applied:
            # Inlined stale_for (one Python call per op adds up at scale).
            applied_get = applied.get
            fresh = []
            for op in operations:
                sequence = op.sequence
                if sequence in seen:
                    continue
                member = op.member
                if member is not None and sequence <= applied_get(member.guid.value, 0):
                    continue
                fresh.append(op)
        else:
            fresh = [op for op in operations if op.sequence not in seen]
        if not fresh:
            if seq_key is not None:
                self._fully_seen.add((target_ring_id, seq_key))
            return 0
        for op in fresh:
            seen.add(op.sequence)
        if self._direct_dispatch:
            # Inlined DirectDispatch.deliver_notification.  When the queue
            # has standard kernel wiring, also inline the no-pending-entry
            # insert case: the dirty-marking hook is an idempotent set add
            # (one call covers the batch) and a member op whose aggregation
            # key is absent is stored as-is, so the queue state is identical
            # to per-op ``insert`` calls.  Any op with a pending entry — and
            # any non-standard queue — goes through the real insert path.
            target_mq = target_entity.mq
            hook = target_mq.on_enqueue
            if target_mq.aggregate and type(hook) is _RingDirtyMarker:
                entries_map = target_mq._store()
                hook()
                for op in fresh:
                    key = op.member.guid.value
                    if key in entries_map:
                        target_mq.insert(op, sender=sender, now=now)
                    else:
                        target_mq.total_enqueued += 1
                        entries_map[key] = QueuedMessage(
                            operation=op, sender=sender, enqueued_at=now
                        )
            else:
                for op in fresh:
                    target_mq.insert(op, sender=sender, now=now)
        else:
            self.dispatch.deliver_notification(self, sender, target, fresh, now)
        self._c_notifications.increment()
        return 1

    def _dense_forward(
        self, sender: NodeId, target_idx: int, target_pos: int, operations, now, seq_key
    ) -> int:
        """``_fast_forward`` addressed by (ring index, position).

        Callers resolve the target through a build-time forward plan and
        check liveness through ``alive_i`` first, so the per-forward work
        collapses to the seen/applied filter and the queue insert — no
        entity, ring or seen-set lookups through identifier-keyed maps.
        Only valid under a clean structure (plan wiring == live wiring).
        """
        if (target_idx, seq_key) in self._fully_seen:
            return 0
        seen = self._seen_rows[target_idx]
        if seen is None:
            seen = self.ring_seen[self._store.ring_ids[target_idx]]
            self._seen_rows[target_idx] = seen
        applied = self._applied_rows[target_idx]
        if applied is None:
            # ``.get`` (not setdefault): the object path does not create an
            # applied map on forward, so neither may we; the alias row fills
            # once the target ring runs its own round.
            applied = self.ring_applied_seq.get(self._store.ring_ids[target_idx])
            if applied is not None:
                self._applied_rows[target_idx] = applied
        if applied:
            applied_get = applied.get
            fresh = []
            for op in operations:
                sequence = op.sequence
                if sequence in seen:
                    continue
                member = op.member
                if member is not None and sequence <= applied_get(member.guid.value, 0):
                    continue
                fresh.append(op)
        else:
            fresh = [op for op in operations if op.sequence not in seen]
        if not fresh:
            self._fully_seen.add((target_idx, seq_key))
            return 0
        for op in fresh:
            seen.add(op.sequence)
        target_entity = self._ring_rows[target_idx][target_pos]
        if self._direct_dispatch:
            # Same inlined delivery as ``_fast_forward``.
            target_mq = target_entity.mq
            hook = target_mq.on_enqueue
            if target_mq.aggregate and type(hook) is _RingDirtyMarker:
                # Work-hint refinement: the hook degrades the target ring's
                # hint to -2 ("unknown"); when the pre-insert hint proved no
                # *other* position held work (-1, or already this position)
                # the post-insert state is known precisely, so the target
                # ring's next round can skip its holder scan entirely.
                hints = hook._hints
                old_hint = (
                    hints[target_idx]
                    if hints is not None and hook._hint_idx == target_idx
                    else -2
                )
                entries_map = target_mq._store()
                hook()
                for op in fresh:
                    key = op.member.guid.value
                    if key in entries_map:
                        target_mq.insert(op, sender=sender, now=now)
                    else:
                        target_mq.total_enqueued += 1
                        entries_map[key] = QueuedMessage(
                            operation=op, sender=sender, enqueued_at=now
                        )
                if old_hint == -1 or old_hint == target_pos:
                    hints[target_idx] = target_pos if entries_map else -1
            else:
                for op in fresh:
                    target_mq.insert(op, sender=sender, now=now)
        else:
            self.dispatch.deliver_notification(
                self, sender, target_entity.current, fresh, now
            )
        self._c_notifications._value += 1
        return 1

    # -- columnar round scheduling -----------------------------------------

    def pending_rings(self) -> List[str]:
        store = self._store
        if not self._fast_enabled or store.structure_dirty:
            return super().pending_rings()
        return [ring_id for _, ring_id, _ in self._pending_pairs()]

    def _pending_pairs(self) -> List[Tuple[int, str, int]]:
        """Verified pending candidates as ``(tier, ring_id, ring_idx)``.

        Same dirty-set verification and cleanup as the object kernel's
        ``pending_rings``, but the queued-work check consults the per-ring
        work hint first: -1 retires the candidate with zero probes, a
        position hint is trusted outright (a positive hint always implies
        queued work: it is only ever written next to a non-empty insert,
        and every drain path either resets it or degrades it to -2), and
        only -2 falls back to the dense row scan.  Ring versions are not
        re-checked here: they only move through ``exclude_entity``, which
        sets ``structure_dirty`` before returning, and ``pending_rings``
        gates on a clean structure — ``propagate`` still re-validates the
        version per round as the defensive layer.  Sorted bottom-up then
        lexicographic — the object kernel's deterministic order — with
        tiers read from the store column instead of a rings-dict probe per
        candidate.
        """
        store = self._store
        dirty = self._dirty_rings
        if not dirty:
            return []
        pending: List[Tuple[int, str, int]] = []
        clean: List[str] = []
        failed = self.failed
        entities = self.entities
        ring_index = store.ring_index
        ring_dead = store.ring_dead
        ring_tier = store.ring_tier_i
        hints = store.ring_work_hint
        wired = store.ring_hint_wired
        rows = self._ring_rows
        for ring_id in dirty:
            ring_idx = ring_index.get(ring_id)
            has_work = False
            tier = 0
            if ring_idx is not None:
                tier = ring_tier[ring_idx]
                row = rows[ring_idx]
                if row is not None and not ring_dead[ring_idx]:
                    hint = hints[ring_idx]
                    if hint >= 0:
                        has_work = True
                    elif hint == -2:
                        # No failed member: scan the dense row positionally.
                        for entity in row:
                            if entity.mq_live and entity.mq._entries:
                                has_work = True
                                break
                        else:
                            if wired[ring_idx]:
                                hints[ring_idx] = -1
                    # hint == -1: provably no queued work, zero probes.
                else:
                    ring = self._ring_objs[ring_idx]
                    for node in ring.members:
                        if node not in failed and entities[node].has_queued_work():
                            has_work = True
                            break
            else:
                ring = self.hierarchy.rings.get(ring_id)
                if ring is not None:
                    tier = ring.tier
                    for node in ring.members:
                        if node not in failed and entities[node].has_queued_work():
                            has_work = True
                            break
            if has_work:
                pending.append((tier, ring_id, ring_idx))
            else:
                clean.append(ring_id)
        for ring_id in clean:
            dirty.discard(ring_id)
        pending.sort()
        return pending

    def propagate(
        self, now: float = 0.0, max_iterations: int = 10_000
    ) -> PropagationReport:
        store = self._store
        report = PropagationReport()
        rounds_append = report.rounds.append
        run_round = self.run_round
        failed = self.failed
        entities = self.entities
        ring_dead = store.ring_dead
        ring_version0 = store.ring_version0_i
        rows = self._ring_rows
        ring_objs = self._ring_objs
        hierarchy_ring = self.hierarchy.ring
        fused = self._fused_round
        # Propagation allocates short-lived, cycle-free objects (messages,
        # round results, operation tuples) by the hundred-thousand; without
        # the pause the generational collector re-walks the multi-million
        # object hierarchy heap every few thousand allocations and roughly
        # doubles large-scale propagate time.
        with paused_gc():
            for _ in range(max_iterations):
                if (
                    not self._fast_enabled
                    or store.structure_dirty
                    or self.trace.enabled
                ):
                    # Generic sweep: identical to the object kernel's loop
                    # (``pending_rings`` delegates to the object scan too).
                    pending = self.pending_rings()
                    if not pending:
                        return report
                    for ring_id in pending:
                        ring = hierarchy_ring(ring_id)
                        if all(node in failed for node in ring.members):
                            continue
                        if not any(
                            node not in failed and entities[node].has_queued_work()
                            for node in ring.members
                        ):
                            continue
                        rounds_append(run_round(ring_id, now=now))
                    continue
                pairs = self._pending_pairs()
                if not pairs:
                    return report
                for _tier, ring_id, ring_idx in pairs:
                    # Identical sweep semantics to the object kernel.  The
                    # object loop re-checks each pending ring for queued
                    # work before its round, but under a clean structure the
                    # re-check cannot fail: ``_pending_pairs`` verified work
                    # at sweep start and a round in another ring only ever
                    # *adds* entries to this ring's queues (drains touch the
                    # round's own holder; direct acks are no-ops) — any
                    # repair path that could rewire state sets
                    # ``structure_dirty``, which is re-read here per ring.
                    row = rows[ring_idx] if ring_idx is not None else None
                    if (
                        row is not None
                        and not store.structure_dirty
                        and not ring_dead[ring_idx]
                    ):
                        ring = ring_objs[ring_idx]
                        if ring.version == ring_version0[ring_idx]:
                            rounds_append(
                                fused(ring_idx, ring_id, ring.members, row, now)
                            )
                            continue
                    ring = hierarchy_ring(ring_id)
                    if all(node in failed for node in ring.members):
                        continue
                    if not any(
                        node not in failed and entities[node].has_queued_work()
                        for node in ring.members
                    ):
                        continue
                    rounds_append(run_round(ring_id, now=now))
        from repro.core.kernel import ProtocolError

        raise ProtocolError(
            f"propagation did not converge within {max_iterations} iterations"
        )

    # -- the fast round -----------------------------------------------------

    def run_round(
        self,
        ring_id: str,
        holder: Optional["NodeId | str"] = None,
        now: float = 0.0,
    ) -> RoundResult:
        store = self._store
        if not self._fast_enabled or store.structure_dirty or self.trace.enabled:
            if self._fast_enabled and not store.structure_dirty:
                # Traced rounds drain queues through the object path while
                # the hint machinery stays live: degrade the ring's hint so
                # a positive claim never outlives its queue entries.
                ring_idx = store.ring_index.get(ring_id)
                if ring_idx is not None:
                    store.ring_work_hint[ring_idx] = -2
            return super().run_round(ring_id, holder=holder, now=now)
        ring_idx = store.ring_index.get(ring_id)
        if ring_idx is None:
            return super().run_round(ring_id, holder=holder, now=now)
        ring = self.hierarchy.rings[ring_id]
        members = ring.members
        size = len(members)
        row = self._ring_rows[ring_idx]
        if (
            size == 0
            or row is None
            or ring.version != store.ring_version0_i[ring_idx]
            or store.ring_dead[ring_idx]
        ):
            return self._object_round(ring_idx, ring_id, holder, now)
        leader_pos = store.ring_leader_pos_i[ring_idx]
        if leader_pos >= 0:
            leader = members[leader_pos]
            if leader is not ring.leader and leader != ring.leader:
                return self._object_round(ring_idx, ring_id, holder, now)
        elif ring.leader is not None:
            return self._object_round(ring_idx, ring_id, holder, now)

        # Holder resolution (no member has failed, so the object kernel's
        # failed-holder error cannot apply here).
        if holder is not None:
            holder_id = coerce_node(holder)
            try:
                holder_pos = members.index(holder_id)
            except ValueError:
                # Not a member: the object path raises the proper error.
                return self._object_round(ring_idx, ring_id, holder, now)
            return self._fused_round(
                ring_idx, ring_id, members, row, now, holder_pos, holder_id
            )
        return self._fused_round(ring_idx, ring_id, members, row, now)

    def _fused_round(
        self,
        ring_idx: int,
        ring_id: str,
        members: Sequence[NodeId],
        row: Sequence[NetworkEntityState],
        now: float,
        holder_pos: int = -1,
        holder_id: Optional[NodeId] = None,
    ) -> RoundResult:
        """The proven-no-op round body, minus re-validation.

        ``propagate`` calls this directly for every sweep candidate that
        passed the cheap dense gates (row present, structure clean, no dead
        member, version unchanged); the structural facts ``run_round``
        re-validates per call — leader identity, holder membership — are
        invariant under a clean structure (they only change through
        ``exclude_entity``, which sets ``structure_dirty`` first), so the
        fused path trusts the build-time columns outright.  The public
        ``run_round`` keeps the full validation and delegates here.

        ``holder_pos < 0`` means "pick the holder": the work hint resolves
        it in O(1) when it names the single position holding queued work
        (first-with-work from the pointer degenerates to exactly that
        position), falling back to the pointer scan otherwise.
        """
        store = self._store
        hints = store.ring_work_hint
        if holder_pos < 0:
            hint = hints[ring_idx]
            if hint >= 0:
                entity = row[hint]
                if entity.mq_live and entity.mq._entries:
                    holder_pos = hint
                else:
                    holder_pos = self._fast_pick_holder(
                        ring_idx, ring_id, members, row
                    )
            else:
                holder_pos = self._fast_pick_holder(ring_idx, ring_id, members, row)
            holder_id = members[holder_pos]

        holder_entity = row[holder_pos]
        holder_mq = holder_entity.mq if holder_entity.mq_live else None
        entry_map = holder_mq._entries if holder_mq is not None else None
        entries = tuple(entry_map.values()) if entry_map else ()

        seq_key: Optional[Tuple[int, ...]] = None
        if entries:
            if store.ring_has_state[ring_idx]:
                return self._object_round(ring_idx, ring_id, holder_id, now)
            sequences: List[int] = []
            for entry in entries:
                operation = entry.operation
                if operation.member is None:
                    # Network-entity operation (repair traffic): let the
                    # object path handle it.
                    return self._object_round(ring_idx, ring_id, holder_id, now)
                sequences.append(operation.sequence)
            seq_key = tuple(sequences)
            covered = self._batch_covered(seq_key, entries)
            if ring_idx in covered:
                # This ring is in an operation's coverage chain: the apply
                # is not a no-op here.
                return self._object_round(ring_idx, ring_id, holder_id, now)

        # ---- proven no-op round: identical bookkeeping, no entity churn ----
        operations = tuple([entry.operation for entry in entries])
        if entry_map:
            entry_map.clear()  # drain_entries semantics
        # ``is not`` suffices for the holder test: identifiers are interned,
        # and an equal-but-distinct sender would be a member of this ring and
        # is dropped by the ring test either way.
        ring_of_node = self.hierarchy.ring_of_node
        child_senders = [
            entry.sender
            for entry in entries
            if entry.sender is not holder_id
            and ring_of_node.get(entry.sender) != ring_id
        ]

        seen = self._seen_rows[ring_idx]
        if seen is None:
            seen = self.ring_seen[ring_id]
            self._seen_rows[ring_idx] = seen
        applied = self._applied_rows[ring_idx]
        if applied is None:
            applied = self.ring_applied_seq.setdefault(ring_id, {})
            self._applied_rows[ring_idx] = applied
        applied_get = applied.get
        max_sequence = 0
        for operation in operations:
            sequence = operation.sequence
            seen.add(sequence)
            guid = operation.member.guid.value
            if sequence > applied_get(guid, 0):
                applied[guid] = sequence
            if sequence > max_sequence:
                max_sequence = sequence
        if max_sequence > store.ring_applied_max[ring_idx]:
            store.ring_applied_max[ring_idx] = max_sequence

        next(self._token_ids)  # same token-id stream as the object path
        order = members[holder_pos:] + members[:holder_pos]
        # RoundResult is a plain (non-slots) dataclass; building the field
        # dict directly skips the generated __init__ and the default
        # factories on the per-round hot path.
        result = RoundResult.__new__(RoundResult)
        result.__dict__ = {
            "ring_id": ring_id,
            "holder": holder_id,
            "operations": operations,
            "token_hops": 0,
            "notify_hops": 0,
            "ack_hops": 0,
            "retransmissions": 0,
            "visited": order,
            "repaired": [],
            "events": [],
        }
        self._c_rounds_started._value += 1

        dispatch = self.dispatch
        emit_token = dispatch.emits_token_messages
        failed = self.failed
        has_children = (
            self._disseminate_downward and store.ring_child_total_i[ring_idx]
        )
        size = len(members)
        token_hops = size if size >= 2 else 0
        notify_hops = 0
        forwarded_up = False
        forward = self._fast_forward
        lp = store.ring_leader_pos_i[ring_idx]

        if (operations or emit_token) and not emit_token and not has_children:
            # Childless ring, dispatch without token messages: the only
            # observable effect of the whole circulation is the leader's
            # upward forward, so the visit loop collapses to that one call.
            # A validated parent plan subsumes the ``parent_ok``/``parent``
            # probes: those flags only change through ``exclude_entity``
            # (structure goes dirty first), so under a clean structure the
            # build-time plan is the live wiring.
            if lp >= 0:
                pp = self._parent_plan[ring_idx]
                if pp is not None:
                    if store.alive_i[pp[2]]:
                        # Inlined ``_dense_forward`` early-out: when the
                        # parent ring already saw this whole batch the
                        # forward filters to nothing, so skip the call.
                        # This is every bottom ring's round after the
                        # first sibling reported the batch back up.
                        if (pp[0], seq_key) not in self._fully_seen:
                            notify_hops += self._dense_forward(
                                members[lp], pp[0], pp[1], operations, now, seq_key
                            )
                    else:
                        # Crashed parent: the inherited repair hook.
                        notify_hops += self.forward_notification(
                            members[lp], row[lp].parent, operations, now
                        )
                    forwarded_up = True
                else:
                    entity = row[lp]
                    if entity.parent_ok and entity.parent is not None:
                        notify_hops += forward(
                            members[lp], entity.parent, operations, now, seq_key
                        )
                        forwarded_up = True
        elif operations or emit_token:
            cplan = self._child_plan[ring_idx] if has_children else None
            alive_i = store.alive_i
            dense = self._dense_forward
            previous_node = holder_id
            pos = holder_pos
            for node in order:
                if node is not holder_id:
                    if emit_token:
                        dispatch.token_hop(self, previous_node, node, now)
                    previous_node = node
                if operations:
                    # Figure 3 lines 10-13: leader forwards to its parent.
                    # (Plan-first: see the collapse branch for why a built
                    # plan subsumes the ``parent_ok`` probes.)
                    if pos == lp:
                        pp = self._parent_plan[ring_idx]
                        if pp is not None:
                            if alive_i[pp[2]]:
                                notify_hops += dense(
                                    node, pp[0], pp[1], operations, now, seq_key
                                )
                            else:
                                notify_hops += self.forward_notification(
                                    node, row[pos].parent, operations, now
                                )
                            forwarded_up = True
                        else:
                            entity = row[pos]
                            if entity.parent_ok and entity.parent is not None:
                                notify_hops += forward(
                                    node, entity.parent, operations, now, seq_key
                                )
                                forwarded_up = True
                    # Figure 3 lines 14-16: notify child rings.  The
                    # child-total column keeps bottom rings (the vast
                    # majority) from ever probing the lazy children lists;
                    # the plan mirrors each member's children list (the
                    # object path skips crashed children without a forward).
                    if has_children:
                        if cplan is not None:
                            for cidx, cpos, cdense in cplan[pos]:
                                if not alive_i[cdense]:
                                    continue
                                notify_hops += dense(
                                    node, cidx, cpos, operations, now, seq_key
                                )
                        else:
                            entity = row[pos]
                            if entity.children:
                                for child in list(entity.children):
                                    if child in failed:
                                        continue
                                    notify_hops += forward(
                                        node, child, operations, now, seq_key
                                    )
                pos += 1
                if pos >= size:
                    pos = 0
            if emit_token and size >= 2:
                # Closing hop back to the holder.
                dispatch.token_hop(self, previous_node, holder_id, now)

        result.token_hops = token_hops
        result.notify_hops = notify_hops

        # Leader failed-before-its-turn fallback (cannot trigger with
        # ring_dead == 0 unless a mid-round repair elsewhere rewired the
        # leader's parent link; mirror the object path regardless).  Under
        # a clean structure the leader column is the live leader, so
        # ``members[lp]``/``row[lp]`` stand in for the ring-object probes.
        if operations and not forwarded_up and lp >= 0:
            leader_id = members[lp]
            leader_entity = row[lp]
            if leader_id not in failed:
                parent_target = self.upward_target(leader_entity, leader_id)
                if parent_target is not None:
                    result.notify_hops += self.forward_notification(
                        leader_id, parent_target, operations, now
                    )

        # Figure 3 lines 17-20: Holder-Acknowledgement to originating children.
        # (The single-sender case — virtually every dissemination round —
        # skips the dedup dict; ``increment`` is inlined like the other
        # counter bumps below.)
        if child_senders and operations and self._holder_ack_enabled:
            direct = self._direct_dispatch
            senders = (
                child_senders
                if len(child_senders) == 1
                else dict.fromkeys(child_senders)
            )
            for sender in senders:
                if sender in failed:
                    continue
                result.ack_hops += 1
                self._c_holder_ack._value += 1
                if not direct:
                    # DirectDispatch acks have no receiver-side effect.
                    dispatch.deliver_holder_ack(self, holder_id, sender, now)

        # Figure 3 lines 21-23: the holder pointer moves to the next member.
        next_pos = holder_pos + 1
        if next_pos >= size:
            next_pos = 0
        self._ring_holder[ring_id] = members[next_pos]
        store.ring_holder_pos[ring_idx] = next_pos

        # The dirty set only over-approximates rings with queued work; this
        # round's targets all live in other rings, so if no member holds
        # work now the candidate can be retired without waiting for the next
        # sweep's (cold-cache) verification scan to discard it.  The work
        # hint usually settles this without the row scan: the round drained
        # the holder's queue, so a hint still naming the holder (or -1)
        # proves the ring clean.  (-1/positive states only exist on wired
        # rings, so writing -1 back in those branches is always legal.)
        end_hint = hints[ring_idx]
        if end_hint == -1 or end_hint == holder_pos:
            hints[ring_idx] = -1
            self._dirty_rings.discard(ring_id)
        elif end_hint >= 0:
            entity = row[end_hint]
            if not (entity.mq_live and entity.mq._entries):
                hints[ring_idx] = -1
                self._dirty_rings.discard(ring_id)
        else:
            for entity in row:
                if entity.mq_live and entity.mq._entries:
                    break
            else:
                if store.ring_hint_wired[ring_idx]:
                    hints[ring_idx] = -1
                self._dirty_rings.discard(ring_id)

        self._c_rounds_completed._value += 1
        self._c_hops_token._value += token_hops
        self._c_hops_notify._value += result.notify_hops
        self._c_hops_ack._value += result.ack_hops
        return result

    def _fast_pick_holder(
        self,
        ring_idx: int,
        ring_id: str,
        members: Sequence[NodeId],
        row: Sequence[NetworkEntityState],
    ) -> int:
        """``pick_holder`` for a ring with no failed members: start at the
        holder pointer, first member with queued work, else the start."""
        size = len(members)
        start = self._ring_holder.get(ring_id)
        if start is None:
            start_pos = 0
        else:
            cached_pos = self._store.ring_holder_pos[ring_idx]
            if 0 <= cached_pos < size and members[cached_pos] is start:
                start_pos = cached_pos
            else:
                # An object-path round moved the pointer; re-derive.
                try:
                    start_pos = members.index(start)
                except ValueError:
                    start_pos = 0
        pos = start_pos
        for _ in range(size):
            entity = row[pos]
            if entity.mq_live and entity.mq._entries:
                return pos
            pos += 1
            if pos >= size:
                pos = 0
        return start_pos
