"""Membership Partition / Merge (the paper's stated future work).

Section 6 of the paper lists "Membership-Partition/Merge algorithms to provide
partitionable and self-organizable group membership services" as future work.
This module implements that extension on top of the ring-based hierarchy:

* :func:`detect_partitions` — given the set of currently operational entities,
  compute the partitions of the hierarchy: maximal sets of rings that can
  still exchange membership information.  A ring with two or more faulty
  members is itself split (paper Section 5.2), and a child ring whose parent
  node is faulty is cut off from the tiers above it.
* :class:`PartitionManager` — tracks partitions over time, exposes the
  Function-Well predicate (at most ``k`` partitions) used by the reliability
  analysis, and performs *merge*: when failed entities recover or rings are
  repaired, detached sub-hierarchies re-attach to the main hierarchy and the
  membership views are reconciled by union-merge, matching the paper's remark
  that partitioned rings "will merge with other partitions later".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.deltas import MembershipDelta
from repro.core.hierarchy import RingHierarchy
from repro.core.identifiers import NodeId, coerce_node
from repro.core.membership import MembershipView
from repro.core.ring import LogicalRing


@dataclass(frozen=True)
class Partition:
    """One partition of the hierarchy: the rings and entities it contains."""

    partition_id: int
    ring_ids: Tuple[str, ...]
    entities: Tuple[str, ...]
    contains_top: bool

    def __len__(self) -> int:
        return len(self.entities)


@dataclass
class PartitionReport:
    """Result of one partition detection pass."""

    partitions: List[Partition] = field(default_factory=list)
    faulty_entities: List[str] = field(default_factory=list)
    split_rings: List[str] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.partitions)

    def function_well(self, max_partitions: int = 1) -> bool:
        """The paper's Function-Well predicate: at most ``k`` partitions."""
        return self.count <= max_partitions

    def primary(self) -> Optional[Partition]:
        """The partition containing the topmost ring, if any."""
        for partition in self.partitions:
            if partition.contains_top:
                return partition
        return None


def _ring_segments(ring: LogicalRing, operational: Set[NodeId]) -> List[List[NodeId]]:
    """Contiguous alive arcs of a ring under the given operational set."""
    members = ring.members
    flags = [m in operational for m in members]
    if not members or not any(flags):
        return []
    faulty = sum(1 for f in flags if not f)
    if faulty <= 1:
        # Zero or one fault: detected and locally repaired, ring stays whole.
        return [[m for m, ok in zip(members, flags) if ok]]
    n = len(members)
    segments: List[List[NodeId]] = []
    # Walk the circle, starting right after a faulty slot so arcs are contiguous.
    start = next(i for i, ok in enumerate(flags) if not ok)
    current: List[NodeId] = []
    for offset in range(1, n + 1):
        i = (start + offset) % n
        if flags[i]:
            current.append(members[i])
        elif current:
            segments.append(current)
            current = []
    if current:
        segments.append(current)
    return segments


def detect_partitions(
    hierarchy: RingHierarchy, operational: Iterable["NodeId | str"]
) -> PartitionReport:
    """Compute the partitions of the hierarchy under a set of operational entities.

    Two ring segments belong to the same partition when they are connected by
    a usable leader→parent link: the child segment contains the child ring's
    (surviving) leader-side connection point and the parent node is alive.  In
    line with the paper's analysis, a segment of a ring with at most one fault
    keeps its connectivity both within the ring and to its parent/children; a
    ring with two or more faults contributes one component per surviving arc.
    """
    live: Set[NodeId] = {coerce_node(n) for n in operational}
    report = PartitionReport()
    report.faulty_entities = sorted(
        str(n) for n in hierarchy.ring_of_node if n not in live
    )

    # Build segments and a union-find over them.
    segment_of_node: Dict[NodeId, int] = {}
    segments: List[Tuple[str, List[NodeId]]] = []
    for ring_id, ring in hierarchy.rings.items():
        arcs = _ring_segments(ring, live)
        if len(arcs) > 1:
            report.split_rings.append(ring_id)
        for arc in arcs:
            index = len(segments)
            segments.append((ring_id, arc))
            for node in arc:
                segment_of_node[node] = index

    parent = list(range(len(segments)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    # Connect ring segments upward.  Only a ring's *primary* arc — the one
    # containing its surviving leader (the original leader if alive, otherwise
    # the smallest alive id, i.e. the deterministic re-election winner) — can
    # talk to the tier above; other arcs are cut off until a later merge.  The
    # primary arc attaches to the segment containing its parent node, or, when
    # the parent node itself is faulty, to the parent ring's surviving leader
    # (the protocol's repair re-attaches orphaned child rings there).
    def _primary_arc_index(ring_id: str) -> Optional[int]:
        ring = hierarchy.rings[ring_id]
        leader = ring.leader if ring.leader in live else None
        if leader is None:
            survivors = [m for m in ring.members if m in live]
            if not survivors:
                return None
            leader = min(survivors, key=lambda n: n.value)
        return segment_of_node.get(leader)

    for index, (ring_id, arc) in enumerate(segments):
        if index != _primary_arc_index(ring_id):
            continue
        parent_node = hierarchy.parent_node.get(ring_id)
        if parent_node is None:
            continue
        attach_to = None
        if parent_node in live:
            attach_to = segment_of_node.get(parent_node)
        else:
            parent_ring_id = hierarchy.ring_of_node.get(parent_node)
            if parent_ring_id is not None:
                attach_to = _primary_arc_index(parent_ring_id)
        if attach_to is None:
            continue
        union(index, attach_to)

    groups: Dict[int, List[int]] = {}
    for index in range(len(segments)):
        groups.setdefault(find(index), []).append(index)

    top_ring_id = hierarchy.topmost_ring().ring_id
    for pid, (root, segment_indices) in enumerate(sorted(groups.items())):
        ring_ids = sorted({segments[i][0] for i in segment_indices})
        entities = sorted({str(n) for i in segment_indices for n in segments[i][1]})
        report.partitions.append(
            Partition(
                partition_id=pid,
                ring_ids=tuple(ring_ids),
                entities=tuple(entities),
                contains_top=top_ring_id in ring_ids,
            )
        )
    return report


class PartitionManager:
    """Tracks partitions over a run and reconciles views on merge."""

    def __init__(self, hierarchy: RingHierarchy) -> None:
        self.hierarchy = hierarchy
        self.history: List[Tuple[float, int]] = []

    def assess(self, operational: Iterable["NodeId | str"], now: float = 0.0) -> PartitionReport:
        """Detect partitions and record the count in the history."""
        report = detect_partitions(self.hierarchy, operational)
        self.history.append((now, report.count))
        return report

    def function_well(
        self, operational: Iterable["NodeId | str"], max_partitions: int = 1
    ) -> bool:
        return detect_partitions(self.hierarchy, operational).function_well(max_partitions)

    def max_partitions_seen(self) -> int:
        return max((count for _, count in self.history), default=0)

    # -- merge -----------------------------------------------------------------

    @staticmethod
    def merge_delta(detached: Sequence[MembershipView]) -> MembershipDelta:
        """Compile the records of detached partitions into one re-admission delta.

        Records for the same member GUID across several detached views are
        net-filtered up front, so applying the delta to the primary view (and
        to every view the downward dissemination reaches) is a single pass.
        """
        return MembershipDelta.from_members(
            member for view in detached for member in view.members()
        )

    @classmethod
    def merge_views(cls, primary: MembershipView, detached: Sequence[MembershipView]) -> int:
        """Union-merge detached partitions' views into the primary view.

        Returns the number of member records the primary view gained.  The
        merge is applied as one batched :class:`MembershipDelta` rather than
        per-record.  The reciprocal direction (primary into detached) is
        performed by the caller per detached view if it also survives; in RGB
        the detached sub-hierarchy re-joins below some parent node and then
        receives the merged view through the normal downward dissemination.
        """
        return len(primary.apply_delta(cls.merge_delta(detached), time=0.0))

    def reattach_ring(self, ring_id: str, new_parent: "NodeId | str") -> None:
        """Re-attach a detached ring under a new parent node (self-organisation).

        Used after repair when the original parent entity crashed: the
        detached ring's leader contacts an operational entity of the tier
        above (locality criterion is out of scope here) and becomes its child.
        """
        parent = coerce_node(new_parent)
        if not self.hierarchy.has_node(parent):
            raise ValueError(f"new parent {new_parent} is not part of the hierarchy")
        ring = self.hierarchy.ring(ring_id)
        parent_ring = self.hierarchy.ring_of(parent)
        if parent_ring.tier != ring.tier + 1:
            raise ValueError(
                f"ring {ring_id!r} (tier {ring.tier}) can only re-attach to tier "
                f"{ring.tier + 1}, got entity in tier {parent_ring.tier}"
            )
        old_parent = self.hierarchy.parent_node.get(ring_id)
        if old_parent is not None:
            siblings = self.hierarchy.child_rings.get(old_parent, [])
            if ring_id in siblings:
                siblings.remove(ring_id)
        self.hierarchy.parent_node[ring_id] = parent
        self.hierarchy.child_rings.setdefault(parent, []).append(ring_id)
