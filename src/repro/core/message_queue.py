"""The self-optimising message queue of a network entity (paper Section 4.2).

Each network entity owns an ``MQ`` — a message queue "which is self-optimized
for aggregating some successive messages into one for further processing".
Membership change messages from attached mobile hosts, notifications from
child ring leaders and locally detected faults all land here; when the entity
starts a token round it drains the queue and the drained operations become the
token's aggregated ``OP``.

Aggregation rules
-----------------
Successive operations about the *same member* collapse:

* join followed by leave (before propagation) cancels to nothing;
* join followed by handoff collapses to a join at the new access proxy;
* handoff followed by handoff keeps only the latest attachment;
* leave/failure after any earlier operation supersedes it;
* duplicate identical operations collapse to one.

Operations about different members (or about network entities) never
interfere with each other and preserve arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.core.identifiers import NodeId
from repro.core.token import TokenOperation, TokenOperationType


@dataclass(frozen=True, slots=True)
class QueuedMessage:
    """One entry in a message queue."""

    operation: TokenOperation
    sender: NodeId
    enqueued_at: float


class MessageQueue:
    """Aggregating FIFO of membership change operations.

    Entries are kept in an insertion-ordered dict indexed by member GUID
    (network-entity operations and non-aggregated entries get synthetic keys),
    so every insert — including the aggregation merge — is O(1).  The seed
    implementation rescanned the whole queue per insert, which made large
    notification batches quadratic and dominated 100k-proxy propagations.

    Aggregation moves the merged entry to the back of the queue, exactly as
    the seed's rebuild did.

    The instance is ``__slots__``-compact and the entry dict is allocated on
    first insert: a million-proxy hierarchy creates one queue per entity at
    build time, and the overwhelming majority never hold a message.

    Parameters
    ----------
    owner:
        The network entity that owns this queue (for diagnostics).
    aggregate:
        When False the queue degrades to a plain FIFO with no collapsing; the
        ablation benchmark compares both modes.
    """

    __slots__ = (
        "owner",
        "aggregate",
        "_entries",
        "_unkeyed",
        "total_enqueued",
        "total_aggregated_away",
        "on_enqueue",
    )

    def __init__(self, owner: NodeId, aggregate: bool = True) -> None:
        self.owner = owner
        self.aggregate = aggregate
        self._entries: Optional[Dict[object, QueuedMessage]] = None
        self._unkeyed = 0
        self.total_enqueued = 0
        self.total_aggregated_away = 0
        #: Optional zero-argument callback invoked on every insert().  The
        #: kernel binds it to mark the owning ring as having pending work, so
        #: ``pending_rings`` never has to scan every queue of every ring —
        #: and the hook fires no matter which layer performed the insert.
        self.on_enqueue = None

    def __len__(self) -> int:
        entries = self._entries
        return len(entries) if entries is not None else 0

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def _store(self) -> Dict[object, QueuedMessage]:
        entries = self._entries
        if entries is None:
            entries = {}
            self._entries = entries
        return entries

    def insert(self, operation: TokenOperation, sender: NodeId, now: float) -> None:
        """Insert one operation (``MQ.Insert`` in the paper's pseudocode)."""
        self.total_enqueued += 1
        if self.on_enqueue is not None:
            self.on_enqueue()
        entries = self._store()
        entry = QueuedMessage(operation=operation, sender=sender, enqueued_at=now)
        if not self.aggregate:
            entries[self._unkeyed] = entry
            self._unkeyed += 1
            return
        if operation.member is None:
            # Network-entity operations: only collapse exact duplicates (the
            # earlier entry keeps its queue position).
            key = ("ne", operation.op_type, operation.entity)
            if key in entries:
                self.total_aggregated_away += 1
                return
            entries[key] = entry
            return
        key = operation.member.guid.value
        pending_for_member = entries.pop(key, None)
        merged = self._merge_member_ops(pending_for_member, entry)
        if merged is None:
            # The pair cancelled out entirely (join then leave).
            self.total_aggregated_away += 2 if pending_for_member is not None else 1
            return
        if pending_for_member is not None:
            self.total_aggregated_away += 1
        entries[key] = merged

    @staticmethod
    def _merge_member_ops(
        earlier: Optional[QueuedMessage], later: QueuedMessage
    ) -> Optional[QueuedMessage]:
        """Collapse two queued operations about the same member.

        "Earlier"/"later" follow the operations' capture *sequence*, not their
        arrival order: a lossy transport can deliver an older operation after
        a newer one, and the newer state must win the aggregation either way.
        """
        if earlier is None:
            return later
        if earlier.operation.sequence > later.operation.sequence:
            earlier, later = later, earlier
        e, l = earlier.operation, later.operation
        # Identical repeated operation: keep the earlier one.
        if e.op_type is l.op_type and e.member == l.member:
            return earlier
        if e.op_type is TokenOperationType.MEMBER_JOIN:
            if l.op_type in (TokenOperationType.MEMBER_LEAVE, TokenOperationType.MEMBER_FAILURE):
                return None  # never propagated: join cancelled by departure
            if l.op_type is TokenOperationType.MEMBER_HANDOFF:
                # Propagate a single join at the member's latest location.
                collapsed = replace(l, op_type=TokenOperationType.MEMBER_JOIN, previous_ap=None)
                return QueuedMessage(
                    operation=collapsed, sender=later.sender, enqueued_at=earlier.enqueued_at
                )
        if e.op_type is TokenOperationType.MEMBER_HANDOFF:
            if l.op_type is TokenOperationType.MEMBER_HANDOFF:
                # Keep the original previous_ap, latest destination.
                collapsed = replace(l, previous_ap=e.previous_ap)
                return QueuedMessage(
                    operation=collapsed, sender=later.sender, enqueued_at=earlier.enqueued_at
                )
        # Default: the later operation supersedes the earlier one.
        return later

    def drain(self) -> Tuple[TokenOperation, ...]:
        """Remove and return all queued operations in order."""
        store = self._entries
        if not store:
            return ()
        operations = tuple(entry.operation for entry in store.values())
        store.clear()
        return operations

    def drain_entries(self) -> Tuple[QueuedMessage, ...]:
        """Remove and return all queued entries (with sender metadata)."""
        store = self._entries
        if not store:
            return ()
        entries = tuple(store.values())
        store.clear()
        return entries

    def peek(self) -> Tuple[TokenOperation, ...]:
        """Queued operations without removing them."""
        store = self._entries
        if not store:
            return ()
        return tuple(entry.operation for entry in store.values())

    def senders(self) -> List[NodeId]:
        """Distinct senders of the currently queued entries."""
        seen: Dict[NodeId, None] = {}
        for entry in self._entries.values() if self._entries else ():
            seen.setdefault(entry.sender, None)
        return list(seen)

    def aggregation_ratio(self) -> float:
        """Fraction of enqueued messages absorbed by aggregation."""
        if self.total_enqueued == 0:
            return 0.0
        return self.total_aggregated_away / self.total_enqueued
