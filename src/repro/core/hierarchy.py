"""The ring-based hierarchy (paper Section 4.1, Figure 2).

The hierarchy stacks logical rings: the topmost tier holds a single ring of
border routers; each node of a ring in tier *t* may be the *parent* of one
ring in tier *t-1*; the leader of a child ring reports membership changes to
its parent node.  Only a portion of the network entities configured to run
the protocol participate.

Two constructions are provided:

* :meth:`HierarchyBuilder.from_topology` — builds the three-tier hierarchy of
  Figure 2 (AP rings per access gateway, AG rings per border router, one BR
  ring) from a generated 4-tier topology.
* :meth:`HierarchyBuilder.regular` — builds the *regular full hierarchy* used
  by the paper's analysis: height ``h``, every ring exactly ``r`` nodes, so
  ``n = r**h`` access proxies and ``tn = sum_{i=0}^{h-1} r**i`` rings.  For
  ``h > 3`` the extra levels model the paper's "sub-tiers" within a tier.
"""

from __future__ import annotations

import contextlib
import gc
from dataclasses import dataclass, field
from itertools import repeat
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.entity import EntityRole, NetworkEntityState
from repro.core.identifiers import GroupId, NodeId, coerce_group
from repro.core.ring import LogicalRing, RingError
from repro.topology.generator import GeneratedTopology


class HierarchyError(RuntimeError):
    """Raised for malformed hierarchies."""


@contextlib.contextmanager
def paused_gc() -> Iterator[None]:
    """Suspend the cyclic collector across a bulk construction burst.

    Building a million-proxy hierarchy allocates millions of long-lived,
    cycle-free objects; the generational collector re-traverses the growing
    heap every few thousand allocations, which roughly doubles construction
    time.  Unlike the cell runners' pause (``repro.workloads.matrix``), no
    ``gc.collect()`` runs on exit — the freshly built structures are all
    live, so a forced full scan would just re-pay the cost being avoided.
    Reentrant and a no-op when the collector is already disabled.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


_TIER_NAMES = {
    1: "Access Proxy Tier (APT)",
    2: "Access Gateway Tier (AGT)",
    3: "Border Router Tier (BRT)",
}


@dataclass
class RingHierarchy:
    """The assembled ring-based hierarchy.

    Structural queries only — protocol execution lives in
    :mod:`repro.core.one_round` and :mod:`repro.core.protocol`, which operate
    on the per-entity local state this class helps initialise.
    """

    group: GroupId
    rings: Dict[str, LogicalRing] = field(default_factory=dict)
    ring_of_node: Dict[NodeId, str] = field(default_factory=dict)
    parent_node: Dict[str, NodeId] = field(default_factory=dict)
    child_rings: Dict[NodeId, List[str]] = field(default_factory=dict)
    tier_labels: Dict[int, str] = field(default_factory=dict)

    # -- construction helpers ------------------------------------------------------

    def add_ring(self, ring: LogicalRing, parent: Optional[NodeId] = None) -> None:
        """Register ``ring``; ``parent`` is the node its leader reports to."""
        ring_id = ring.ring_id
        if ring_id in self.rings:
            raise HierarchyError(f"duplicate ring id {ring_id!r}")
        # One identifier-keyed probe per node (setdefault) instead of a
        # check pass plus an insert pass; conflicts roll back so a failed
        # add leaves the hierarchy untouched, as before.
        ring_of_node = self.ring_of_node
        members = ring.members
        for position, node in enumerate(members):
            existing = ring_of_node.setdefault(node, ring_id)
            if existing != ring_id:
                for added in members[:position]:
                    del ring_of_node[added]
                raise HierarchyError(
                    f"node {node} already belongs to ring {existing!r}"
                )
        self.rings[ring_id] = ring
        if parent is not None:
            self.parent_node[ring_id] = parent
            self.child_rings.setdefault(parent, []).append(ring_id)

    def _register_ring_trusted(self, ring: LogicalRing, parent: Optional[NodeId] = None) -> None:
        """Bulk-path :meth:`add_ring` for builder-generated rings.

        Skips the per-node duplicate probes (the builder generates globally
        unique ids; a deep :meth:`validate` still catches violations) and
        registers the whole member list through one C-level ``dict.update``.
        """
        ring_id = ring.ring_id
        self.rings[ring_id] = ring
        self.ring_of_node.update(zip(ring.members, repeat(ring_id)))
        if parent is not None:
            self.parent_node[ring_id] = parent
            self.child_rings.setdefault(parent, []).append(ring_id)

    # -- structural queries ------------------------------------------------------------

    def ring(self, ring_id: str) -> LogicalRing:
        try:
            return self.rings[ring_id]
        except KeyError:
            raise HierarchyError(f"unknown ring {ring_id!r}") from None

    def ring_of(self, node: "NodeId | str") -> LogicalRing:
        key = node if isinstance(node, NodeId) else NodeId(str(node))
        try:
            return self.rings[self.ring_of_node[key]]
        except KeyError:
            raise HierarchyError(f"node {node} is not in any ring") from None

    def has_node(self, node: "NodeId | str") -> bool:
        key = node if isinstance(node, NodeId) else NodeId(str(node))
        return key in self.ring_of_node

    def parent_of_ring(self, ring_id: str) -> Optional[NodeId]:
        return self.parent_node.get(ring_id)

    def parent_of_node(self, node: "NodeId | str") -> Optional[NodeId]:
        """The parent node of the ring ``node`` belongs to."""
        return self.parent_of_ring(self.ring_of(node).ring_id)

    def children_of_node(self, node: "NodeId | str") -> List[str]:
        """Ring ids whose parent node is ``node``."""
        key = node if isinstance(node, NodeId) else NodeId(str(node))
        return list(self.child_rings.get(key, []))

    def child_leaders(self, node: "NodeId | str") -> List[NodeId]:
        """Leaders of the child rings of ``node``."""
        leaders = []
        for ring_id in self.children_of_node(node):
            leader = self.rings[ring_id].leader
            if leader is not None:
                leaders.append(leader)
        return leaders

    def tiers(self) -> List[int]:
        """Distinct tier indices present, ascending."""
        return sorted({ring.tier for ring in self.rings.values()})

    def tier_name(self, tier: int) -> str:
        return self.tier_labels.get(tier, _TIER_NAMES.get(tier, f"Tier {tier}"))

    def rings_in_tier(self, tier: int) -> List[LogicalRing]:
        return sorted(
            (ring for ring in self.rings.values() if ring.tier == tier),
            key=lambda r: r.ring_id,
        )

    def bottom_tier(self) -> int:
        tiers = self.tiers()
        if not tiers:
            raise HierarchyError("hierarchy has no rings")
        return tiers[0]

    def top_tier(self) -> int:
        tiers = self.tiers()
        if not tiers:
            raise HierarchyError("hierarchy has no rings")
        return tiers[-1]

    def topmost_ring(self) -> LogicalRing:
        rings = self.rings_in_tier(self.top_tier())
        if len(rings) != 1:
            raise HierarchyError(
                f"expected exactly one topmost ring, found {len(rings)}"
            )
        return rings[0]

    def bottom_rings(self) -> List[LogicalRing]:
        return self.rings_in_tier(self.bottom_tier())

    def access_proxies(self) -> List[NodeId]:
        """All nodes in the bottommost rings (the paper's scalability ``n``)."""
        nodes: List[NodeId] = []
        for ring in self.bottom_rings():
            nodes.extend(ring.members)
        return nodes

    @property
    def height(self) -> int:
        """Number of ring tiers (the paper's ``h``)."""
        return len(self.tiers())

    @property
    def total_rings(self) -> int:
        """The paper's ``tn``."""
        return len(self.rings)

    def total_nodes(self) -> int:
        return len(self.ring_of_node)

    def logical_edge_count(self) -> int:
        """Ring edges plus one leader→parent edge per non-topmost ring."""
        edges = sum(ring.edge_count() for ring in self.rings.values())
        edges += sum(1 for ring_id in self.rings if ring_id in self.parent_node)
        return edges

    def ancestry(self, node: "NodeId | str") -> List[NodeId]:
        """Chain of parent nodes from ``node``'s ring up to the topmost ring.

        After repair surgery the chain can be *severed*: when a whole ring
        dies there is no surviving leader to re-attach its child rings to, so
        a child ring's parent link may point at an already-excised node.  The
        walk returns the chain as far as it can be resolved — the dangling
        parent is included (callers can still identify and e.g. crash-check
        it) but the walk stops there instead of raising.
        """
        chain: List[NodeId] = []
        current = node if isinstance(node, NodeId) else NodeId(str(node))
        while self.has_node(current):
            parent = self.parent_of_ring(self.ring_of(current).ring_id)
            if parent is None:
                break
            chain.append(parent)
            current = parent
        return chain

    def validate(self, deep: bool = True) -> None:
        """Structural invariants used by property tests.

        * every ring has a leader and at least one member;
        * every non-topmost ring has a parent node that itself belongs to a
          ring exactly one tier above;
        * parent links are acyclic and reach the topmost ring.

        ``deep=False`` skips the per-ring internal consistency re-derivation
        (:meth:`LogicalRing.validate` rebuilds each ring's position index to
        compare — pure overhead for rings the builders just constructed from
        scratch); all hierarchy-level invariants above are still enforced.
        """
        if not self.rings:
            raise HierarchyError("hierarchy has no rings")
        top = self.top_tier()
        for ring in self.rings.values():
            if deep:
                ring.validate()
            if ring.is_empty:
                raise HierarchyError(f"ring {ring.ring_id!r} is empty")
            if ring.leader is None:
                raise HierarchyError(f"ring {ring.ring_id!r} has no leader")
            parent = self.parent_node.get(ring.ring_id)
            if ring.tier == top:
                if parent is not None:
                    raise HierarchyError("topmost ring must not have a parent")
                continue
            if parent is None:
                raise HierarchyError(f"non-topmost ring {ring.ring_id!r} has no parent")
            parent_ring = self.ring_of(parent)
            if parent_ring.tier != ring.tier + 1:
                raise HierarchyError(
                    f"ring {ring.ring_id!r} (tier {ring.tier}) has parent in tier "
                    f"{parent_ring.tier}, expected {ring.tier + 1}"
                )
        # Every node's ancestry must terminate at the topmost ring.  A node's
        # chain is its ring's chain, so walk each *ring* once with memoisation
        # instead of walking all n nodes — the per-node walk alone dominated
        # million-proxy builds (O(n·h) identifier-keyed dict probes).
        top_ring = self.topmost_ring()
        reaches: Dict[str, bool] = {top_ring.ring_id: True}
        ring_of_node = self.ring_of_node
        ring_count = len(self.rings)
        for start_ring_id in self.rings:
            chain: List[str] = []
            current = start_ring_id
            known: Optional[bool] = None
            while True:
                known = reaches.get(current)
                if known is not None:
                    break
                chain.append(current)
                if len(chain) > ring_count:  # cycle guard
                    known = False
                    break
                parent = self.parent_node.get(current)
                if parent is None:
                    known = False
                    break
                parent_ring_id = ring_of_node.get(parent)
                if parent_ring_id is None:
                    known = False
                    break
                current = parent_ring_id
            for ring_id in chain:
                reaches[ring_id] = known
            if not known:
                node = self.rings[start_ring_id].members[0]
                raise HierarchyError(f"ancestry of {node} does not reach the topmost ring")

    # -- entity state wiring --------------------------------------------------------------

    def build_entity_states(
        self,
        roles: Optional[Dict[str, EntityRole]] = None,
        bulk: bool = True,
    ) -> Dict[NodeId, NetworkEntityState]:
        """Create per-entity local state with ring/parent/child pointers set.

        ``roles`` maps node-id strings to :class:`EntityRole`; nodes not listed
        get a role derived from their tier (bottom tier → AP, top → BR,
        everything in between → AG), which is also how the regular analytical
        hierarchies with sub-tiers are labelled.

        The default is the **bulk path**: ring pointers are assembled
        positionally from each ring's whole member list (no per-node
        successor/predecessor index probes) and child pointers come from one
        pass over the child-ring map.  ``bulk=False`` keeps the seed's
        per-node construction as the reference semantics; the two paths build
        identical state (property-tested in ``tests/test_bulk_build.py``).
        """
        if not bulk:
            return self._build_entity_states_incremental(roles)
        roles = roles or {}
        bottom, top = self.bottom_tier(), self.top_tier()
        group = self.group
        parent_node = self.parent_node
        states: Dict[NodeId, NetworkEntityState] = {}
        # Raw-slot construction: every field of NetworkEntityState is written
        # directly (one allocation, no __init__/__post_init__ dispatch), which
        # at a million entities is the difference between seconds and tens of
        # seconds.  Keep the write list in sync with the dataclass fields —
        # the bulk==incremental property test pins the equivalence.
        alloc = object.__new__
        state_cls = NetworkEntityState
        with paused_gc():
            for ring in self.rings.values():
                leader = ring.leader
                if leader is None:
                    raise HierarchyError(f"ring {ring.ring_id!r} has no leader")
                tier = ring.tier
                if tier == bottom:
                    default_role = EntityRole.ACCESS_PROXY
                elif tier == top:
                    default_role = EntityRole.BORDER_ROUTER
                else:
                    default_role = EntityRole.ACCESS_GATEWAY
                ring_id = ring.ring_id
                parent = parent_node.get(ring_id)
                parent_ok = parent is not None
                members = ring.members
                last = len(members) - 1
                # Only genuinely per-entity data is written; every
                # default-valued field (children, child_ok, queue wiring,
                # liveness flags) is left unset and served lazily by
                # ``NetworkEntityState.__getattr__`` on first read.
                for position, node in enumerate(members):
                    state = alloc(state_cls)
                    state.current = node
                    state.role = (
                        roles.get(node.value, default_role) if roles else default_role
                    )
                    state.group = group
                    state.ring_id = ring_id
                    state.leader = leader
                    state.previous = members[position - 1]
                    state.next_node = members[position + 1] if position < last else members[0]
                    state.parent = parent
                    state.ring_ok = True
                    state.parent_ok = parent_ok
                    states[node] = state
            # Child pointers: a node's children are the leaders of its child
            # rings — one pass over the child-ring map instead of a per-node
            # ``children_of_node`` probe-and-copy.
            rings = self.rings
            for parent, ring_ids in self.child_rings.items():
                state = states.get(parent)
                if state is None:
                    continue
                for ring_id in ring_ids:
                    leader = rings[ring_id].leader
                    if leader is not None:
                        state.add_child(leader)
                state.child_ok = bool(state.children)
        return states

    def _build_entity_states_incremental(
        self, roles: Optional[Dict[str, EntityRole]] = None
    ) -> Dict[NodeId, NetworkEntityState]:
        """The seed's per-node construction (reference for the bulk path)."""
        roles = roles or {}
        bottom, top = self.bottom_tier(), self.top_tier()
        states: Dict[NodeId, NetworkEntityState] = {}
        for ring in self.rings.values():
            for node in ring.members:
                role = roles.get(str(node))
                if role is None:
                    if ring.tier == bottom:
                        role = EntityRole.ACCESS_PROXY
                    elif ring.tier == top:
                        role = EntityRole.BORDER_ROUTER
                    else:
                        role = EntityRole.ACCESS_GATEWAY
                state = NetworkEntityState(current=node, role=role, group=self.group)
                if ring.leader is None:
                    raise HierarchyError(f"ring {ring.ring_id!r} has no leader")
                state.set_ring_pointers(
                    ring_id=ring.ring_id,
                    leader=ring.leader,
                    previous=ring.predecessor(node),
                    next_node=ring.successor(node),
                )
                state.set_parent(self.parent_node.get(ring.ring_id))
                states[node] = state
        # Child pointers: a node's children are the leaders of its child rings.
        for node, state in states.items():
            for ring_id in self.children_of_node(node):
                leader = self.rings[ring_id].leader
                if leader is not None:
                    state.add_child(leader)
            state.child_ok = bool(state.children)
        return states


class HierarchyBuilder:
    """Constructs :class:`RingHierarchy` instances."""

    def __init__(self, group: "GroupId | str" = "group-0") -> None:
        self.group = coerce_group(group)

    # -- from a generated 4-tier topology --------------------------------------------

    def from_topology(self, topology: GeneratedTopology) -> RingHierarchy:
        """Three-tier hierarchy: AP rings per AG, AG rings per BR, one BR ring."""
        arch = topology.architecture
        hierarchy = RingHierarchy(group=self.group)
        hierarchy.tier_labels.update(_TIER_NAMES)

        # Topmost: one ring of all border routers.
        br_nodes = [NodeId(br) for br in arch.border_routers]
        br_ring = LogicalRing(ring_id="brt-ring", tier=3, members=br_nodes)
        br_ring.elect_leader()
        hierarchy.add_ring(br_ring)

        # Access gateway rings: one per border router.
        for br in arch.border_routers:
            ags = [NodeId(ag) for ag in sorted(arch.ags_of_br(br))]
            if not ags:
                continue
            ring = LogicalRing(ring_id=f"agt-ring-{br}", tier=2, members=ags)
            ring.elect_leader()
            hierarchy.add_ring(ring, parent=NodeId(br))

        # Access proxy rings: one per access gateway.
        for ag in arch.access_gateways:
            aps = [NodeId(ap) for ap in sorted(arch.aps_of_ag(ag))]
            if not aps:
                continue
            ring = LogicalRing(ring_id=f"apt-ring-{ag}", tier=1, members=aps)
            ring.elect_leader()
            hierarchy.add_ring(ring, parent=NodeId(ag))

        hierarchy.validate()
        return hierarchy

    # -- regular analytical hierarchy ---------------------------------------------------

    def regular(self, ring_size: int, height: int, bulk: bool = True) -> RingHierarchy:
        """The full regular hierarchy of the paper's analysis.

        ``height`` tiers of rings; every ring has exactly ``ring_size`` nodes;
        tier indices run from 1 (bottommost, access proxies) to ``height``
        (topmost).  Node ids encode their position: ``L{tier}-{path}``.

        The default is the **bulk path**: identifiers are created through the
        vectorised intern table, whole member lists register via trusted bulk
        inserts, the (sorted-by-construction) first member is the leader and
        validation skips the per-ring index re-derivation.  ``bulk=False``
        keeps the seed's per-ring insert/elect/validate construction as the
        reference; both build identical hierarchies (property-tested in
        ``tests/test_bulk_build.py``).
        """
        if ring_size < 2:
            raise ValueError(f"ring_size must be >= 2, got {ring_size}")
        if height < 2:
            raise ValueError(f"height must be >= 2, got {height}")
        hierarchy = RingHierarchy(group=self.group)
        # Human-readable tier labels: bottom = APT, top = BRT, middle = AGT sub-tiers.
        for tier in range(1, height + 1):
            if tier == 1:
                hierarchy.tier_labels[tier] = "Access Proxy Tier (APT)"
            elif tier == height:
                hierarchy.tier_labels[tier] = "Border Router Tier (BRT)"
            else:
                hierarchy.tier_labels[tier] = f"Access Gateway Tier (AGT sub-tier {height - tier})"

        # Build top-down.  ``parents`` lists the nodes of the previous tier in
        # order.  Generated ids are zero-padded, so within every ring the
        # members are lexicographically ascending: the first member *is* the
        # minimal id, which makes the constructor's default leader identical
        # to deterministic election.
        top_tier = height
        register = (
            hierarchy._register_ring_trusted if bulk else hierarchy.add_ring
        )
        suffixes = [f"{i:04d}" for i in range(ring_size)]
        with paused_gc():
            if bulk:
                top_members = NodeId.make_interned(f"L{top_tier}-{s}" for s in suffixes)
                top_ring = LogicalRing.bulk(
                    f"ring-T{top_tier}-0000", top_tier, top_members
                )
            else:
                top_members = [NodeId(f"L{top_tier}-{i:04d}") for i in range(ring_size)]
                top_ring = LogicalRing(
                    ring_id=f"ring-T{top_tier}-0000", tier=top_tier, members=top_members
                )
                top_ring.elect_leader()
            register(top_ring)
            parents = list(top_members)

            make_bulk_ring = LogicalRing.bulk
            make_interned = NodeId.make_interned
            # Bulk path: the trusted-registration body is inlined (the per-ring
            # call overhead is measurable across the 111k rings of a
            # million-proxy build).
            rings_map = hierarchy.rings
            ring_of_node = hierarchy.ring_of_node
            parent_node_map = hierarchy.parent_node
            child_rings_map = hierarchy.child_rings
            for tier in range(top_tier - 1, 0, -1):
                next_parents: List[NodeId] = []
                extend = next_parents.extend
                for parent_index, parent in enumerate(parents):
                    prefix = f"L{tier}-{parent_index:04d}-"
                    ring_id = f"ring-T{tier}-{parent_index:04d}"
                    if bulk:
                        members = make_interned(suffixes, prefix)
                        ring = make_bulk_ring(ring_id, tier, members)
                        rings_map[ring_id] = ring
                        ring_of_node.update(zip(members, repeat(ring_id)))
                        parent_node_map[ring_id] = parent
                        child_rings_map.setdefault(parent, []).append(ring_id)
                    else:
                        members = [NodeId(prefix + s) for s in suffixes]
                        ring = LogicalRing(ring_id=ring_id, tier=tier, members=members)
                        ring.elect_leader()
                        register(ring, parent=parent)
                    extend(members)
                parents = next_parents

        if not bulk:
            # The bulk output is correct by construction (deterministic id
            # generation, one ring per parent, tiers descending by one) and
            # is continuously pinned against this validated reference path
            # by the bulk==incremental property suite; re-walking 111k rings
            # per million-proxy build would cost more than the check is
            # worth.  External/mutating construction still validates.
            hierarchy.validate()
        return hierarchy
