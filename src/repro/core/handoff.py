"""Member handoff management (fast handoff via neighbour member lists).

The paper motivates ``ListOfNeighborMembers`` — the list of operational
members at neighbouring nodes of the hierarchy — as the ingredient for *fast
handoff*: when a mobile host moves to an adjacent cell, the new access proxy
very likely already has the member's record in its neighbour list, so it can
re-admit the member immediately and only propagate the attachment-point change
asynchronously, instead of treating the arrival as a brand-new join that must
climb the hierarchy before the member is served.

:class:`HandoffManager` wraps either protocol engine and reports, per handoff,
whether the fast path applied, which the handoff-storm benchmark aggregates
into a fast-path hit ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.identifiers import NodeId, coerce_guid, coerce_node
from repro.core.one_round import OneRoundEngine, PropagationReport
from repro.core.protocol import RGBProtocolCluster


@dataclass
class HandoffRecord:
    """Outcome of one handoff request."""

    guid: str
    from_ap: str
    to_ap: str
    fast_path: bool
    same_ring: bool
    time: float = 0.0


@dataclass
class HandoffStats:
    """Aggregate statistics over a sequence of handoffs."""

    records: List[HandoffRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def fast_path_hits(self) -> int:
        return sum(1 for r in self.records if r.fast_path)

    @property
    def fast_path_ratio(self) -> float:
        return self.fast_path_hits / self.total if self.total else 0.0

    @property
    def intra_ring_ratio(self) -> float:
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.same_ring) / self.total


class HandoffManager:
    """Coordinates member handoffs against a protocol engine.

    Works with both the structural :class:`OneRoundEngine` (handoffs are
    propagated synchronously and the report of each propagation is returned)
    and the message-passing :class:`RGBProtocolCluster` (the handoff is
    enqueued and propagates when the simulation engine runs).
    """

    def __init__(self, engine: Union[OneRoundEngine, RGBProtocolCluster]) -> None:
        self.engine = engine
        self.stats = HandoffStats()

    @property
    def hierarchy(self):
        return self.engine.hierarchy

    def _neighbor_has_member(self, new_ap: NodeId, guid: str) -> bool:
        entity = self.engine.entity(new_ap)
        return entity.neighbor_members.get(guid) is not None

    def _same_ring(self, a: NodeId, b: NodeId) -> bool:
        if not (self.hierarchy.has_node(a) and self.hierarchy.has_node(b)):
            return False
        return self.hierarchy.ring_of(a).ring_id == self.hierarchy.ring_of(b).ring_id

    def handoff(
        self,
        guid: "str",
        from_ap: "NodeId | str",
        to_ap: "NodeId | str",
        now: float = 0.0,
    ) -> HandoffRecord:
        """Perform one handoff and record whether the fast path applied."""
        guid_id = coerce_guid(guid)
        old_ap = coerce_node(from_ap)
        new_ap = coerce_node(to_ap)
        fast = self._neighbor_has_member(new_ap, str(guid_id))
        same_ring = self._same_ring(old_ap, new_ap)

        if isinstance(self.engine, OneRoundEngine):
            self.engine.member_handoff(guid_id, old_ap, new_ap, now=now)
        else:
            self.engine.handoff_member(guid_id, old_ap, new_ap)

        record = HandoffRecord(
            guid=str(guid_id),
            from_ap=str(old_ap),
            to_ap=str(new_ap),
            fast_path=fast,
            same_ring=same_ring,
            time=now,
        )
        self.stats.records.append(record)
        return record

    def handoff_batch(
        self,
        moves: "List[tuple]",
        now: float = 0.0,
        propagate: bool = True,
    ) -> Optional[PropagationReport]:
        """Capture a storm of ``(guid, from_ap, to_ap)`` moves, then propagate once.

        All handoffs are enqueued before any token round runs, so they
        aggregate into shared rounds and the kernel applies each ring's
        operations as one compiled :class:`repro.core.deltas.MembershipDelta`
        (the batched path) — the per-handoff fast-path statistics are still
        recorded individually.
        """
        for guid, from_ap, to_ap in moves:
            self.handoff(guid, from_ap, to_ap, now=now)
        if not propagate:
            return None
        if isinstance(self.engine, OneRoundEngine):
            return self.engine.propagate(now=now)
        self.engine.run_until_quiescent()
        return None

    def handoff_and_propagate(
        self,
        guid: str,
        from_ap: "NodeId | str",
        to_ap: "NodeId | str",
        now: float = 0.0,
    ) -> Optional[PropagationReport]:
        """Handoff, then propagate to quiescence (structural engine only)."""
        self.handoff(guid, from_ap, to_ap, now=now)
        if isinstance(self.engine, OneRoundEngine):
            return self.engine.propagate(now=now)
        self.engine.run_until_quiescent()
        return None

    def fast_path_ratio(self) -> float:
        return self.stats.fast_path_ratio

    def summary(self) -> Dict[str, float]:
        return {
            "handoffs": float(self.stats.total),
            "fast_path_hits": float(self.stats.fast_path_hits),
            "fast_path_ratio": self.stats.fast_path_ratio,
            "intra_ring_ratio": self.stats.intra_ring_ratio,
        }
