"""Network entity data structures (paper Section 4.2).

A network entity (NE) is an access proxy, access gateway or border router
configured to run the protocol.  Each NE maintains only *local* information:
its own identity, the identities of its leader, previous and next neighbours
in its logical ring, its parent node (the entity in the next tier up whose
ring its leader reports to) and child node(s), the ring/parent/child health
flags, three member lists with different scopes and an aggregating message
queue.
"""

from __future__ import annotations

import enum
from dataclasses import MISSING, dataclass, field, fields as dataclass_fields
from typing import Callable, Dict, List, Optional

from repro.core.identifiers import GroupId, NodeId
from repro.core.member import MemberInfo
from repro.core.membership import MembershipView
from repro.core.message_queue import MessageQueue


#: Defaults served by ``NetworkEntityState.__getattr__`` for slots the raw
#: bulk builder leaves unset.  Derived from the dataclass fields at import
#: time (see the module bottom), so a future default-valued field is picked
#: up automatically instead of raising on first read of a bulk-built entity.
_LAZY_FIELD_DEFAULTS: Dict[str, object] = {}


class EntityRole(enum.Enum):
    """Which tier of Figure 2 an entity belongs to."""

    ACCESS_PROXY = "AP"
    ACCESS_GATEWAY = "AG"
    BORDER_ROUTER = "BR"

    @property
    def tier(self) -> int:
        """Tier index used by the hierarchy (AP=1, AG=2, BR=3)."""
        return {"AP": 1, "AG": 2, "BR": 3}[self.value]

    @classmethod
    def from_kind(cls, kind: str) -> "EntityRole":
        """Map a topology node kind string to a role."""
        for role in cls:
            if role.value == kind:
                return role
        raise ValueError(f"unknown network entity kind {kind!r}")


@dataclass(slots=True)
class NetworkEntityState:
    """The complete local state of one network entity.

    Mirrors the paper's NE data structure field for field:

    ``group``      → GID
    ``current``    → Current (this entity's own NodeID)
    ``leader``     → Leader
    ``previous`` / ``next_node`` → Previous / Next
    ``parent`` / ``child``       → Parent / Child
    ``ring_ok`` / ``parent_ok`` / ``child_ok`` → RingOK / ParentOK / ChildOK
    ``local_members``    → ListOfLocalMembers
    ``ring_members``     → ListOfRingMembers
    ``neighbor_members`` → ListOfNeighborMembers
    ``mq``               → MQ

    The three member views and the message queue are **materialised on first
    access** (their slots start unset; ``__getattr__`` fills them in).  A
    bulk-built million-proxy hierarchy creates none of them up front, and the
    vast majority of entities never hold a member or queue a message, so the
    per-entity footprint stays a single slotted object.  Once touched, the
    attribute is an ordinary slot — the laziness costs nothing on hot paths.
    ``mq_hook`` carries the kernel's dirty-ring ``on_enqueue`` callback so it
    can be wired without forcing the queue into existence.
    """

    current: NodeId
    role: EntityRole
    group: GroupId
    ring_id: str = ""
    leader: Optional[NodeId] = None
    previous: Optional[NodeId] = None
    next_node: Optional[NodeId] = None
    parent: Optional[NodeId] = None
    children: List[NodeId] = field(default_factory=list)
    ring_ok: bool = False
    parent_ok: bool = False
    child_ok: bool = False
    local_members: MembershipView = field(init=False, repr=False, compare=False)
    ring_members: MembershipView = field(init=False, repr=False, compare=False)
    neighbor_members: MembershipView = field(init=False, repr=False, compare=False)
    mq: MessageQueue = field(init=False, repr=False, compare=False)
    aggregate_mq: bool = True
    mq_hook: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )
    #: Liveness flags for the lazy slots above — plain bool reads let hot
    #: paths ask "does this entity have a queue/view at all?" without
    #: descriptor exceptions and without materialising anything.
    mq_live: bool = field(default=False, repr=False, compare=False)
    local_live: bool = field(default=False, repr=False, compare=False)
    ring_live: bool = field(default=False, repr=False, compare=False)
    neighbor_live: bool = field(default=False, repr=False, compare=False)

    def __getattr__(self, name: str):
        # Only ever reached for *unset* slots: materialise the lazy ones.
        # The raw-slot bulk builder (``RingHierarchy.build_entity_states``)
        # leaves every default-valued field unset; the defaults are served —
        # and cached into the slot — here on first read.
        if name == "mq":
            mq = MessageQueue(self.current, aggregate=self.aggregate_mq)
            mq.on_enqueue = self.mq_hook
            self.mq = mq
            self.mq_live = True
            return mq
        if name == "local_members":
            view = MembershipView("local", self.current, self.group)
            self.local_members = view
            self.local_live = True
            return view
        if name == "ring_members":
            view = MembershipView("ring", self.current, self.group)
            self.ring_members = view
            self.ring_live = True
            return view
        if name == "neighbor_members":
            view = MembershipView("neighbor", self.current, self.group)
            self.neighbor_members = view
            self.neighbor_live = True
            return view
        if name == "children":
            children: List[NodeId] = []
            self.children = children
            return children
        try:
            value = _LAZY_FIELD_DEFAULTS[name]
        except KeyError:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            ) from None
        setattr(self, name, value)
        return value

    def _mq_if_materialized(self) -> Optional[MessageQueue]:
        """The message queue if it exists, without creating it."""
        return self.mq if self.mq_live else None

    def has_queued_work(self) -> bool:
        """True when the (materialised) queue holds at least one entry."""
        return self.mq_live and bool(self.mq._entries)

    def set_mq_wiring(
        self, aggregate: bool, hook: Optional[Callable[[], None]]
    ) -> None:
        """Install queue aggregation/hook settings, lazily when possible."""
        self.aggregate_mq = aggregate
        self.mq_hook = hook
        mq = self._mq_if_materialized()
        if mq is not None:
            mq.aggregate = aggregate
            mq.on_enqueue = hook

    # -- pickling (skip unset lazy slots without materialising them) -----------

    def __getstate__(self):
        cls = type(self)
        state = {}
        for name in cls.__slots__:
            try:
                state[name] = getattr(cls, name).__get__(self)
            except AttributeError:
                continue
        return state

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # -- ring role ----------------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        """True when this entity is the leader of its logical ring."""
        return self.leader is not None and self.leader == self.current

    @property
    def child(self) -> Optional[NodeId]:
        """First child, mirroring the paper's singular ``Child`` field.

        The hierarchy allows an entity to bridge several child rings; the
        paper's data structure names a single ``Child`` and its pseudocode
        sends Notification-to-Child to it.  The protocol engine iterates
        :attr:`children`; this property exists for parity with the paper.
        """
        return self.children[0] if self.children else None

    def set_ring_pointers(
        self,
        ring_id: str,
        leader: NodeId,
        previous: NodeId,
        next_node: NodeId,
    ) -> None:
        """Install the local ring view (called by the hierarchy builder)."""
        self.ring_id = ring_id
        self.leader = leader
        self.previous = previous
        self.next_node = next_node
        self.ring_ok = True

    def set_parent(self, parent: Optional[NodeId]) -> None:
        self.parent = parent
        self.parent_ok = parent is not None

    def add_child(self, child: NodeId) -> None:
        if child not in self.children:
            self.children.append(child)
        self.child_ok = True

    def remove_child(self, child: NodeId) -> None:
        if child in self.children:
            self.children.remove(child)
        self.child_ok = bool(self.children)

    # -- member bookkeeping ----------------------------------------------------------

    def register_local_member(self, member: MemberInfo) -> bool:
        """Record a member attached directly to this entity (APs only)."""
        changed = self.local_members.add(member)
        if changed:
            self.ring_members.add(member)
        return changed

    def unregister_local_member(self, guid: str) -> bool:
        changed = self.local_members.remove(guid)
        self.ring_members.remove(guid)
        return changed

    def summary(self) -> Dict[str, object]:
        """Diagnostic snapshot used by tests and the examples.

        Reads the lazy views/queue without materialising them (an unset view
        is empty by definition).
        """
        cls = type(self)

        def _len(name: str) -> int:
            try:
                return len(getattr(cls, name).__get__(self))
            except AttributeError:
                return 0

        return {
            "current": str(self.current),
            "role": self.role.value,
            "ring_id": self.ring_id,
            "leader": str(self.leader) if self.leader else None,
            "previous": str(self.previous) if self.previous else None,
            "next": str(self.next_node) if self.next_node else None,
            "parent": str(self.parent) if self.parent else None,
            "children": [str(c) for c in self.children],
            "ring_ok": self.ring_ok,
            "parent_ok": self.parent_ok,
            "child_ok": self.child_ok,
            "local_members": _len("local_members"),
            "ring_members": _len("ring_members"),
            "neighbor_members": _len("neighbor_members"),
            "mq_pending": _len("mq"),
        }

# Populate the lazy defaults from the dataclass definition itself (plain
# defaults only — ``children`` has a factory and its own ``__getattr__``
# case; the view/queue slots are init=False and materialise structurally).
_LAZY_FIELD_DEFAULTS.update(
    {
        f.name: f.default
        for f in dataclass_fields(NetworkEntityState)
        if f.default is not MISSING
    }
)
