"""Network entity data structures (paper Section 4.2).

A network entity (NE) is an access proxy, access gateway or border router
configured to run the protocol.  Each NE maintains only *local* information:
its own identity, the identities of its leader, previous and next neighbours
in its logical ring, its parent node (the entity in the next tier up whose
ring its leader reports to) and child node(s), the ring/parent/child health
flags, three member lists with different scopes and an aggregating message
queue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.identifiers import GroupId, NodeId
from repro.core.member import MemberInfo
from repro.core.membership import MembershipView
from repro.core.message_queue import MessageQueue


class EntityRole(enum.Enum):
    """Which tier of Figure 2 an entity belongs to."""

    ACCESS_PROXY = "AP"
    ACCESS_GATEWAY = "AG"
    BORDER_ROUTER = "BR"

    @property
    def tier(self) -> int:
        """Tier index used by the hierarchy (AP=1, AG=2, BR=3)."""
        return {"AP": 1, "AG": 2, "BR": 3}[self.value]

    @classmethod
    def from_kind(cls, kind: str) -> "EntityRole":
        """Map a topology node kind string to a role."""
        for role in cls:
            if role.value == kind:
                return role
        raise ValueError(f"unknown network entity kind {kind!r}")


@dataclass
class NetworkEntityState:
    """The complete local state of one network entity.

    Mirrors the paper's NE data structure field for field:

    ``group``      → GID
    ``current``    → Current (this entity's own NodeID)
    ``leader``     → Leader
    ``previous`` / ``next_node`` → Previous / Next
    ``parent`` / ``child``       → Parent / Child
    ``ring_ok`` / ``parent_ok`` / ``child_ok`` → RingOK / ParentOK / ChildOK
    ``local_members``    → ListOfLocalMembers
    ``ring_members``     → ListOfRingMembers
    ``neighbor_members`` → ListOfNeighborMembers
    ``mq``               → MQ
    """

    current: NodeId
    role: EntityRole
    group: GroupId
    ring_id: str = ""
    leader: Optional[NodeId] = None
    previous: Optional[NodeId] = None
    next_node: Optional[NodeId] = None
    parent: Optional[NodeId] = None
    children: List[NodeId] = field(default_factory=list)
    ring_ok: bool = False
    parent_ok: bool = False
    child_ok: bool = False
    local_members: MembershipView = field(init=False)
    ring_members: MembershipView = field(init=False)
    neighbor_members: MembershipView = field(init=False)
    mq: MessageQueue = field(init=False)
    aggregate_mq: bool = True

    def __post_init__(self) -> None:
        self.local_members = MembershipView("local", self.current, self.group)
        self.ring_members = MembershipView("ring", self.current, self.group)
        self.neighbor_members = MembershipView("neighbor", self.current, self.group)
        self.mq = MessageQueue(self.current, aggregate=self.aggregate_mq)

    # -- ring role ----------------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        """True when this entity is the leader of its logical ring."""
        return self.leader is not None and self.leader == self.current

    @property
    def child(self) -> Optional[NodeId]:
        """First child, mirroring the paper's singular ``Child`` field.

        The hierarchy allows an entity to bridge several child rings; the
        paper's data structure names a single ``Child`` and its pseudocode
        sends Notification-to-Child to it.  The protocol engine iterates
        :attr:`children`; this property exists for parity with the paper.
        """
        return self.children[0] if self.children else None

    def set_ring_pointers(
        self,
        ring_id: str,
        leader: NodeId,
        previous: NodeId,
        next_node: NodeId,
    ) -> None:
        """Install the local ring view (called by the hierarchy builder)."""
        self.ring_id = ring_id
        self.leader = leader
        self.previous = previous
        self.next_node = next_node
        self.ring_ok = True

    def set_parent(self, parent: Optional[NodeId]) -> None:
        self.parent = parent
        self.parent_ok = parent is not None

    def add_child(self, child: NodeId) -> None:
        if child not in self.children:
            self.children.append(child)
        self.child_ok = True

    def remove_child(self, child: NodeId) -> None:
        if child in self.children:
            self.children.remove(child)
        self.child_ok = bool(self.children)

    # -- member bookkeeping ----------------------------------------------------------

    def register_local_member(self, member: MemberInfo) -> bool:
        """Record a member attached directly to this entity (APs only)."""
        changed = self.local_members.add(member)
        if changed:
            self.ring_members.add(member)
        return changed

    def unregister_local_member(self, guid: str) -> bool:
        changed = self.local_members.remove(guid)
        self.ring_members.remove(guid)
        return changed

    def summary(self) -> Dict[str, object]:
        """Diagnostic snapshot used by tests and the examples."""
        return {
            "current": str(self.current),
            "role": self.role.value,
            "ring_id": self.ring_id,
            "leader": str(self.leader) if self.leader else None,
            "previous": str(self.previous) if self.previous else None,
            "next": str(self.next_node) if self.next_node else None,
            "parent": str(self.parent) if self.parent else None,
            "children": [str(c) for c in self.children],
            "ring_ok": self.ring_ok,
            "parent_ok": self.parent_ok,
            "child_ok": self.child_ok,
            "local_members": len(self.local_members),
            "ring_members": len(self.ring_members),
            "neighbor_members": len(self.neighbor_members),
            "mq_pending": len(self.mq),
        }
