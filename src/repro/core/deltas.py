"""Batched membership deltas (the kernel's bulk-application currency).

The seed implementation applied every :class:`repro.core.token.TokenOperation`
to every member list one record at a time, re-deriving sorted GUID lists per
operation — an ``O(ops × view × log view)`` pattern that capped the Table I
scalability study far below the "millions of users" target.

A :class:`MembershipDelta` compiles an aggregated operation batch *once per
token round* into set-based form:

* per-GUID **net effect** — when a batch carries several operations about the
  same member (possible with MQ aggregation disabled), only the last one
  determines the final view state, so earlier ones are dropped up front;
* **pre-resolved records** — the ``with_status(...)`` record rewrite that
  :meth:`repro.core.membership.MembershipView.apply` performed per view is
  done once at compile time and shared by every view the delta is applied to
  (every member of every ring the token visits);
* **single-pass application** — :meth:`repro.core.membership.MembershipView.apply_all`
  consumes the delta with one dict operation per net change and O(1)
  membership probes instead of sorted-list scans.

Compiling is O(batch); applying is O(net changes) per view.  Applying a delta
to a :class:`repro.core.membership.MembershipView` leaves member lists
identical to sequential per-operation application (property-tested in
``tests/test_deltas_property.py``); only *intermediate* events for superseded
operations are elided.  Engine-level bottom-tier local/neighbour bookkeeping
likewise sees the net batch — the same outcome the aggregating message queue
produces on the default path, where a token never carries two operations
about one member in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.identifiers import GloballyUniqueId, NodeId
from repro.core.member import MemberInfo, MemberStatus
from repro.core.token import TokenOperation, TokenOperationType

_ADD_OPS = frozenset(
    (TokenOperationType.MEMBER_JOIN, TokenOperationType.MEMBER_HANDOFF)
)


@dataclass(frozen=True)
class DeltaEntry:
    """One net membership change: the operation plus its resolved record.

    ``resolved`` is the exact record a view stores when the entry is an
    addition (join/handoff with status already forced to OPERATIONAL), or
    ``None`` when the entry removes the member (leave/failure).
    ``guid_value`` is the member's GUID as a plain string, precomputed once so
    every view the delta visits probes its string-keyed store directly.
    """

    operation: TokenOperation
    resolved: Optional[MemberInfo]
    guid_value: str = ""

    @property
    def guid(self) -> GloballyUniqueId:
        assert self.operation.member is not None
        return self.operation.member.guid

    @property
    def is_addition(self) -> bool:
        return self.resolved is not None


class MembershipDelta:
    """The net, pre-resolved view change of one aggregated operation batch.

    Build one with :meth:`from_operations` (or incrementally through
    :class:`DeltaBuilder`) and hand it to
    :meth:`repro.core.membership.MembershipView.apply_all` — or to
    :meth:`repro.core.kernel.TokenRoundKernel.apply_operations_at`, which also
    maintains the local/neighbour lists of bottom-tier entities.
    """

    __slots__ = ("entries", "ne_operations", "source_count")

    def __init__(
        self,
        entries: Sequence[DeltaEntry],
        ne_operations: Sequence[TokenOperation] = (),
        source_count: int = 0,
    ) -> None:
        self.entries: Tuple[DeltaEntry, ...] = tuple(entries)
        self.ne_operations: Tuple[TokenOperation, ...] = tuple(ne_operations)
        self.source_count = source_count or (len(self.entries) + len(self.ne_operations))

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_operations(cls, operations: Iterable[TokenOperation]) -> "MembershipDelta":
        """Compile an operation sequence into its net, pre-resolved delta."""
        builder = DeltaBuilder()
        for op in operations:
            builder.add(op)
        return builder.build()

    @classmethod
    def from_members(
        cls, members: Iterable[MemberInfo], origin: Optional[NodeId] = None
    ) -> "MembershipDelta":
        """A delta that (re-)admits ``members`` — used by partition merges.

        The synthesised join operations carry ``sequence=0`` so they never
        collide with live token sequence numbers in ring seen-sets.
        """
        builder = DeltaBuilder()
        for member in members:
            builder.add(
                TokenOperation(
                    op_type=TokenOperationType.MEMBER_JOIN,
                    origin=origin if origin is not None else member.ap,
                    member=member,
                    sequence=0,
                )
            )
        return builder.build()

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries) + len(self.ne_operations)

    @property
    def is_empty(self) -> bool:
        return not self.entries and not self.ne_operations

    def guids(self) -> List[str]:
        """GUIDs touched by the member entries, in net-application order."""
        return [str(entry.guid) for entry in self.entries]

    def additions(self) -> List[MemberInfo]:
        return [entry.resolved for entry in self.entries if entry.resolved is not None]

    def removals(self) -> List[str]:
        return [str(entry.guid) for entry in self.entries if entry.resolved is None]

    def describe(self) -> str:
        parts = [entry.operation.describe() for entry in self.entries]
        parts.extend(op.describe() for op in self.ne_operations)
        return f"MembershipDelta[{', '.join(parts) or 'empty'}]"


class DeltaBuilder:
    """Accumulates token operations into a :class:`MembershipDelta`.

    Later operations about the same member supersede earlier ones (the same
    last-write-wins rule sequential view application follows), while the
    relative order of distinct members tracks the last occurrence of each, so
    event emission order matches the per-operation path for the common case of
    one operation per member per batch.
    """

    def __init__(self) -> None:
        self._member_entries: Dict[GloballyUniqueId, DeltaEntry] = {}
        self._ne_ops: List[TokenOperation] = []
        self._count = 0

    def add(self, operation: TokenOperation) -> "DeltaBuilder":
        self._count += 1
        if not operation.op_type.concerns_member or operation.member is None:
            self._ne_ops.append(operation)
            return self
        member = operation.member
        if operation.op_type in _ADD_OPS:
            resolved = (
                member
                if member.status is MemberStatus.OPERATIONAL
                else member.with_status(MemberStatus.OPERATIONAL)
            )
        else:
            resolved = None
        # Re-inserting moves the guid to the end: last occurrence order.
        self._member_entries.pop(member.guid, None)
        self._member_entries[member.guid] = DeltaEntry(
            operation=operation, resolved=resolved, guid_value=member.guid.value
        )
        return self

    def extend(self, operations: Iterable[TokenOperation]) -> "DeltaBuilder":
        for operation in operations:
            self.add(operation)
        return self

    def build(self) -> MembershipDelta:
        return MembershipDelta(
            entries=list(self._member_entries.values()),
            ne_operations=self._ne_ops,
            source_count=self._count,
        )
