"""Event tracing.

The trace recorder captures a structured log of what happened during a run:
message sends and deliveries, token hand-offs, membership events, faults and
repairs.  Tests use traces to assert ordering properties ("the leader notified
its parent only after the token completed the round"); examples use them to
print a readable narrative of the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    time: float
    category: str
    actor: str
    description: str
    details: Tuple[Tuple[str, Any], ...] = ()

    def detail(self, key: str, default: Any = None) -> Any:
        """Look up one ``details`` entry by key."""
        for k, v in self.details:
            if k == key:
                return v
        return default

    def format(self) -> str:
        """Human-readable one-line rendering."""
        extra = " ".join(f"{k}={v}" for k, v in self.details)
        base = f"[{self.time:10.3f}] {self.category:<12} {self.actor:<18} {self.description}"
        return f"{base} {extra}".rstrip()


class TraceRecorder:
    """Collects :class:`TraceEvent` records during a simulation run.

    Recording can be disabled (``enabled=False``) for large benchmark runs
    where the trace itself would dominate memory; the ``record`` call then
    becomes a near no-op.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._events: List[TraceEvent] = []
        self._dropped = 0

    def record(
        self,
        time: float,
        category: str,
        actor: str,
        description: str,
        **details: Any,
    ) -> None:
        """Append a trace record (no-op when disabled)."""
        if not self.enabled:
            return
        if self.capacity is not None and len(self._events) >= self.capacity:
            self._dropped += 1
            return
        self._events.append(
            TraceEvent(
                time=time,
                category=category,
                actor=actor,
                description=description,
                details=tuple(sorted(details.items())),
            )
        )

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    @property
    def dropped(self) -> int:
        """Number of records dropped because the capacity was reached."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def filter(
        self,
        category: Optional[str] = None,
        actor: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Return events matching the given category/actor/predicate."""
        out = []
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if actor is not None and event.actor != actor:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def categories(self) -> Dict[str, int]:
        """Histogram of record counts per category."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0

    def canonical_lines(self) -> List[str]:
        """Byte-stable one-line-per-event rendering for golden-trace tests.

        Times are fixed to six decimals and details are key-sorted (they
        already are, at record time), so two runs of the same seeded scenario
        produce identical output independent of platform or repr details.
        """
        lines = []
        for event in self._events:
            details = ",".join(f"{k}={v}" for k, v in event.details)
            lines.append(
                f"{event.time:.6f}|{event.category}|{event.actor}|{event.description}|{details}"
            )
        return lines

    def canonical_dump(self) -> str:
        """The canonical lines joined with newlines (trailing newline included)."""
        return "\n".join(self.canonical_lines()) + "\n"

    def format(self, limit: Optional[int] = None) -> str:
        """Multi-line rendering of (up to ``limit``) records."""
        events = self._events if limit is None else self._events[:limit]
        lines = [event.format() for event in events]
        if limit is not None and len(self._events) > limit:
            lines.append(f"... ({len(self._events) - limit} more records)")
        return "\n".join(lines)
