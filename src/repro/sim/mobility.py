"""Mobility and attachment modelling for mobile hosts.

The paper motivates RGB with three mobile-Internet characteristics: frequent
disconnection, frequent handoff and frequent failure.  The mobility model
generates the corresponding event stream for a population of mobile hosts:

* an :class:`AttachmentEvent` when a host first attaches to an access proxy
  (Member-Join at the protocol layer),
* a :class:`HandoffEvent` when a host moves from one access proxy to another
  (Member-Handoff),
* a detach when a host voluntarily leaves (Member-Leave).

Cell residency times are exponential; the destination access proxy of a
handoff is chosen among the neighbouring APs of the current one (or uniformly
at random when no neighbourhood structure is supplied), which mimics movement
between adjacent wireless cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class AttachmentEvent:
    """A mobile host attaches to (or detaches from) an access proxy."""

    time: float
    host_id: str
    ap_id: str
    attach: bool  # True = join, False = leave


@dataclass(frozen=True)
class HandoffEvent:
    """A mobile host moves from ``from_ap`` to ``to_ap``."""

    time: float
    host_id: str
    from_ap: str
    to_ap: str


@dataclass
class MobilityTrace:
    """The full generated event stream for one scenario."""

    attachments: List[AttachmentEvent] = field(default_factory=list)
    handoffs: List[HandoffEvent] = field(default_factory=list)

    def all_events(self) -> List[object]:
        """All events merged and sorted by time (ties: attachments first)."""
        merged: List[object] = list(self.attachments) + list(self.handoffs)
        merged.sort(key=lambda e: (e.time, isinstance(e, HandoffEvent)))
        return merged

    def events_for_host(self, host_id: str) -> List[object]:
        return [e for e in self.all_events() if getattr(e, "host_id") == host_id]

    def handoff_count(self) -> int:
        return len(self.handoffs)

    def __len__(self) -> int:
        return len(self.attachments) + len(self.handoffs)


class MobilityModel:
    """Generates attachment/handoff traces for a population of mobile hosts.

    Parameters
    ----------
    ap_ids:
        Access proxies hosts may attach to.
    neighbor_map:
        Optional adjacency between access proxies; handoffs prefer neighbours
        of the current AP.  Missing entries fall back to uniform choice.
    mean_residency:
        Mean time a host stays attached to one AP before handing off.
    mean_session:
        Mean total time a host stays in the group before leaving voluntarily.
    streams:
        Random streams; this model uses the ``"mobility"`` stream by default.
    stream_name:
        Name of the stream this model draws from.  Scenarios that run several
        mobility processes (or mobility next to other consumers of the
        ``"mobility"`` name) give each model its own stream so one process's
        draws can never shift another's.
    """

    def __init__(
        self,
        ap_ids: Sequence[str],
        streams: RandomStreams,
        neighbor_map: Optional[Mapping[str, Sequence[str]]] = None,
        mean_residency: float = 200.0,
        mean_session: float = 2000.0,
        stream_name: str = "mobility",
    ) -> None:
        if not ap_ids:
            raise ValueError("mobility model needs at least one access proxy")
        if mean_residency <= 0 or mean_session <= 0:
            raise ValueError("mean residency and session times must be positive")
        self.ap_ids = list(ap_ids)
        self.neighbor_map = {k: list(v) for k, v in (neighbor_map or {}).items()}
        self.mean_residency = mean_residency
        self.mean_session = mean_session
        self._rng = streams.stream(stream_name)

    def _pick_initial_ap(self) -> str:
        return self.ap_ids[int(self._rng.integers(len(self.ap_ids)))]

    def _pick_next_ap(self, current: str) -> str:
        neighbors = [ap for ap in self.neighbor_map.get(current, []) if ap != current]
        candidates = neighbors if neighbors else [ap for ap in self.ap_ids if ap != current]
        if not candidates:
            return current
        return candidates[int(self._rng.integers(len(candidates)))]

    def generate_host(self, host_id: str, arrival_time: float) -> MobilityTrace:
        """Trace for a single host: attach, hand off zero or more times, leave."""
        trace = MobilityTrace()
        session_length = float(self._rng.exponential(self.mean_session))
        leave_time = arrival_time + session_length
        current_ap = self._pick_initial_ap()
        trace.attachments.append(
            AttachmentEvent(time=arrival_time, host_id=host_id, ap_id=current_ap, attach=True)
        )
        t = arrival_time
        while True:
            residency = float(self._rng.exponential(self.mean_residency))
            t += residency
            if t >= leave_time:
                break
            next_ap = self._pick_next_ap(current_ap)
            if next_ap != current_ap:
                trace.handoffs.append(
                    HandoffEvent(time=t, host_id=host_id, from_ap=current_ap, to_ap=next_ap)
                )
                current_ap = next_ap
        trace.attachments.append(
            AttachmentEvent(time=leave_time, host_id=host_id, ap_id=current_ap, attach=False)
        )
        return trace

    def generate_population(
        self,
        num_hosts: int,
        arrival_rate: float,
        horizon: Optional[float] = None,
    ) -> MobilityTrace:
        """Trace for ``num_hosts`` hosts arriving as a Poisson process.

        ``arrival_rate`` is hosts per unit time.  Events after ``horizon`` are
        truncated (the final detach is clipped to the horizon) so scenario
        runs have a well-defined end.
        """
        if num_hosts <= 0:
            raise ValueError(f"num_hosts must be positive, got {num_hosts}")
        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
        combined = MobilityTrace()
        t = 0.0
        for i in range(num_hosts):
            t += float(self._rng.exponential(1.0 / arrival_rate))
            host_trace = self.generate_host(f"mh-{i:05d}", arrival_time=t)
            combined.attachments.extend(host_trace.attachments)
            combined.handoffs.extend(host_trace.handoffs)
        if horizon is not None:
            combined = _clip_trace(combined, horizon)
        combined.attachments.sort(key=lambda e: e.time)
        combined.handoffs.sort(key=lambda e: e.time)
        return combined


def _clip_trace(trace: MobilityTrace, horizon: float) -> MobilityTrace:
    """Drop events after ``horizon``; hosts still attached simply stay attached."""
    clipped = MobilityTrace()
    clipped.attachments = [e for e in trace.attachments if e.time <= horizon]
    clipped.handoffs = [e for e in trace.handoffs if e.time <= horizon]
    return clipped
