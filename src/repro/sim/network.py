"""Simulated network: nodes, links and latency models.

The network is a graph of :class:`NetworkNode` objects joined by
:class:`Link` objects.  The RGB hierarchy and its baselines sit *above* this
layer: a logical ring edge between two access proxies is realised as a path of
one or more physical links, but for the purposes of the paper's analysis a
logical edge counts as one "hop", so the transport reports both physical
latency and logical hop counts.

Latency model
-------------
Each link carries a :class:`LatencyModel` describing the delay distribution of
one traversal.  Three models match the three network tiers of the paper's
architecture:

* wireless edge (MH ⇄ AP): higher mean, higher variance, non-zero loss;
* intra-AS (AP ⇄ AG, AG ⇄ AG): moderate latency, small loss;
* inter-AS (AG ⇄ BR, BR ⇄ BR): wide-area latency, small loss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np


class NodeState(enum.Enum):
    """Operational state of a simulated node.

    The paper distinguishes temporary, voluntary and faulty disconnection of
    mobile hosts and crash faults of network entities; the simulator folds
    these into three node states plus per-event fault metadata.
    """

    UP = "up"
    DISCONNECTED = "disconnected"
    FAILED = "failed"


@dataclass(slots=True)
class LatencyModel:
    """Per-link delay distribution and loss probability.

    Delay is sampled as ``max(min_delay, normal(mean, std))``.  ``loss``
    is the independent probability that a single transmission is dropped.
    """

    mean: float
    std: float = 0.0
    min_delay: float = 0.01
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError(f"mean delay must be positive, got {self.mean}")
        if self.std < 0:
            raise ValueError(f"delay std must be non-negative, got {self.std}")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if self.min_delay <= 0:
            raise ValueError(f"min_delay must be positive, got {self.min_delay}")

    def sample_delay(self, rng: np.random.Generator) -> float:
        """Draw one traversal delay."""
        if self.std == 0.0:
            return max(self.min_delay, self.mean)
        return float(max(self.min_delay, rng.normal(self.mean, self.std)))

    def sample_loss(self, rng: np.random.Generator) -> bool:
        """Return True if this transmission should be dropped."""
        if self.loss == 0.0:
            return False
        return bool(rng.random() < self.loss)


#: Default latency models per tier, in abstract milliseconds.
WIRELESS_EDGE = LatencyModel(mean=8.0, std=3.0, loss=0.0)
INTRA_AS = LatencyModel(mean=2.0, std=0.5, loss=0.0)
INTER_AS = LatencyModel(mean=20.0, std=5.0, loss=0.0)


@dataclass(slots=True)
class NetworkNode:
    """A simulated host: a mobile host, AP, AG or BR.

    ``kind`` is a free-form string (``"MH"``, ``"AP"``, ``"AG"``, ``"BR"``)
    used by the topology layer and renderers; the network itself treats all
    nodes uniformly.  Slotted: a 100k-proxy cell instantiates one of these
    per entity and two :class:`Link` records per logical edge.
    """

    node_id: str
    kind: str
    state: NodeState = NodeState.UP
    tier: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def is_operational(self) -> bool:
        return self.state is NodeState.UP

    def __hash__(self) -> int:
        return hash(self.node_id)


@dataclass(slots=True)
class Link:
    """A bidirectional physical link between two nodes."""

    a: str
    b: str
    latency: LatencyModel
    up: bool = True

    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def other(self, node_id: str) -> str:
        if node_id == self.a:
            return self.b
        if node_id == self.b:
            return self.a
        raise KeyError(f"node {node_id!r} is not an endpoint of link {self.a!r}—{self.b!r}")


class Network:
    """The node/link graph.

    Besides holding the graph, the network answers the two questions the
    transport needs: "is this node able to communicate?" and "what is the
    latency/loss of the (direct or routed) path between these two nodes?".
    Routing is shortest-path by hop count over up links and is recomputed
    lazily when the topology or link states change.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, NetworkNode] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, List[str]] = {}
        self._routes_dirty = True
        self._route_cache: Dict[Tuple[str, str], Optional[List[str]]] = {}
        #: Strictly increasing counter bumped on every topology or node/link
        #: state change; lets callers (the transport's fire-and-forget lane)
        #: cache per-pair routing decisions and invalidate them exactly when
        #: something that could affect routing changed.
        self.topology_epoch = 0

    # -- construction ------------------------------------------------------

    def add_node(self, node: NetworkNode) -> NetworkNode:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._adjacency[node.node_id] = []
        self._routes_dirty = True
        self.topology_epoch += 1
        return node

    def add_link(self, a: str, b: str, latency: LatencyModel) -> Link:
        if a not in self._nodes or b not in self._nodes:
            missing = a if a not in self._nodes else b
            raise KeyError(f"cannot link unknown node {missing!r}")
        if a == b:
            raise ValueError(f"self-links are not allowed ({a!r})")
        key = self._link_key(a, b)
        if key in self._links:
            raise ValueError(f"duplicate link between {a!r} and {b!r}")
        link = Link(a=a, b=b, latency=latency)
        self._links[key] = link
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        self._routes_dirty = True
        self.topology_epoch += 1
        return link

    def add_nodes(self, nodes: Iterable[NetworkNode]) -> List[NetworkNode]:
        """Bulk :meth:`add_node`: one route/epoch invalidation per batch.

        The per-call variant bumps ``topology_epoch`` and re-dirties the
        route cache for every node — pure overhead when a generator installs
        a whole tier at once.
        """
        added: List[NetworkNode] = []
        registry = self._nodes
        adjacency = self._adjacency
        try:
            for node in nodes:
                if node.node_id in registry:
                    raise ValueError(f"duplicate node id {node.node_id!r}")
                registry[node.node_id] = node
                adjacency[node.node_id] = []
                added.append(node)
        finally:
            # A mid-batch validation error leaves the earlier inserts in
            # place (documented partial-batch semantics); route caches and
            # epoch-keyed consumers must still observe them.
            if added:
                self._routes_dirty = True
                self.topology_epoch += 1
        return added

    def add_links(self, links: Iterable[Tuple[str, str, LatencyModel]]) -> List[Link]:
        """Bulk :meth:`add_link`: one route/epoch invalidation per batch."""
        added: List[Link] = []
        registry = self._nodes
        link_map = self._links
        adjacency = self._adjacency
        link_key = self._link_key
        try:
            for a, b, latency in links:
                if a not in registry or b not in registry:
                    missing = a if a not in registry else b
                    raise KeyError(f"cannot link unknown node {missing!r}")
                if a == b:
                    raise ValueError(f"self-links are not allowed ({a!r})")
                key = link_key(a, b)
                if key in link_map:
                    raise ValueError(f"duplicate link between {a!r} and {b!r}")
                link = Link(a=a, b=b, latency=latency)
                link_map[key] = link
                adjacency[a].append(b)
                adjacency[b].append(a)
                added.append(link)
        finally:
            # See add_nodes: earlier inserts of a failed batch stay visible
            # to routing/epoch consumers.
            if added:
                self._routes_dirty = True
                self.topology_epoch += 1
        return added

    @staticmethod
    def _link_key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    # -- lookup -------------------------------------------------------------

    def node(self, node_id: str) -> NetworkNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"unknown node {node_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def link(self, a: str, b: str) -> Link:
        try:
            return self._links[self._link_key(a, b)]
        except KeyError:
            raise KeyError(f"no link between {a!r} and {b!r}") from None

    def has_link(self, a: str, b: str) -> bool:
        return self._link_key(a, b) in self._links

    def nodes(self, kind: Optional[str] = None) -> List[NetworkNode]:
        if kind is None:
            return list(self._nodes.values())
        return [n for n in self._nodes.values() if n.kind == kind]

    def node_ids(self, kind: Optional[str] = None) -> List[str]:
        return [n.node_id for n in self.nodes(kind)]

    def links(self) -> List[Link]:
        return list(self._links.values())

    def neighbors(self, node_id: str) -> List[str]:
        return list(self._adjacency.get(node_id, []))

    def __len__(self) -> int:
        return len(self._nodes)

    # -- state changes ------------------------------------------------------

    def set_node_state(self, node_id: str, state: NodeState) -> None:
        self.node(node_id).state = state
        self._routes_dirty = True
        self.topology_epoch += 1

    def set_link_state(self, a: str, b: str, up: bool) -> None:
        self.link(a, b).up = up
        self._routes_dirty = True
        self.topology_epoch += 1

    def operational_nodes(self, kind: Optional[str] = None) -> List[NetworkNode]:
        return [n for n in self.nodes(kind) if n.is_operational]

    # -- routing -------------------------------------------------------------

    def _rebuild_routes(self) -> None:
        self._route_cache.clear()
        self._routes_dirty = False

    def path(self, source: str, destination: str) -> Optional[List[str]]:
        """Shortest usable path (inclusive of endpoints), or ``None``.

        A path is usable when every intermediate node is operational and every
        link along it is up.  Endpoints must exist; the *source* must be
        operational, while destination reachability is what callers usually
        probe with this method.
        """
        if self._routes_dirty:
            self._rebuild_routes()
        key = (source, destination)
        if key in self._route_cache:
            return self._route_cache[key]

        if source not in self._nodes or destination not in self._nodes:
            missing = source if source not in self._nodes else destination
            raise KeyError(f"unknown node {missing!r}")
        if source == destination:
            self._route_cache[key] = [source]
            return [source]

        # Breadth-first search over operational nodes / up links.
        visited = {source}
        frontier: List[List[str]] = [[source]]
        result: Optional[List[str]] = None
        while frontier and result is None:
            next_frontier: List[List[str]] = []
            for partial in frontier:
                current = partial[-1]
                for neighbor in self._adjacency[current]:
                    if neighbor in visited:
                        continue
                    link = self._links[self._link_key(current, neighbor)]
                    if not link.up:
                        continue
                    node = self._nodes[neighbor]
                    if neighbor == destination:
                        if node.state is not NodeState.FAILED:
                            result = partial + [neighbor]
                            break
                        continue
                    if not node.is_operational:
                        continue
                    visited.add(neighbor)
                    next_frontier.append(partial + [neighbor])
                if result is not None:
                    break
            frontier = next_frontier
        self._route_cache[key] = result
        return result

    def path_latency(self, path: Iterable[str], rng: np.random.Generator) -> float:
        """Sampled end-to-end delay along ``path``."""
        nodes = list(path)
        total = 0.0
        for a, b in zip(nodes, nodes[1:]):
            total += self.link(a, b).latency.sample_delay(rng)
        return total

    def path_loses(self, path: Iterable[str], rng: np.random.Generator) -> bool:
        """True if any link along ``path`` drops this transmission."""
        nodes = list(path)
        for a, b in zip(nodes, nodes[1:]):
            if self.link(a, b).latency.sample_loss(rng):
                return True
        return False

    def connected_components(self, kinds: Optional[Iterable[str]] = None) -> List[List[str]]:
        """Connected components over operational nodes and up links.

        ``kinds`` restricts the reported membership of each component (for
        example ``{"AP"}`` to count partitions of the access-proxy tier), but
        connectivity is always computed over the full operational graph.
        """
        kind_filter = set(kinds) if kinds is not None else None
        seen: set[str] = set()
        components: List[List[str]] = []
        for node in self._nodes.values():
            if node.node_id in seen or not node.is_operational:
                continue
            stack = [node.node_id]
            seen.add(node.node_id)
            component: List[str] = []
            while stack:
                current = stack.pop()
                current_node = self._nodes[current]
                if kind_filter is None or current_node.kind in kind_filter:
                    component.append(current)
                for neighbor in self._adjacency[current]:
                    if neighbor in seen:
                        continue
                    if not self._nodes[neighbor].is_operational:
                        continue
                    if not self._links[self._link_key(current, neighbor)].up:
                        continue
                    seen.add(neighbor)
                    stack.append(neighbor)
            if component:
                components.append(sorted(component))
        return components
