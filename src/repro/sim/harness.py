"""Event-driven scenario harness: the kernel on top of the lossy sim stack.

Before this module, the ``sim`` layer (engine, transport, faults, mobility)
and the unified :class:`repro.core.kernel.TokenRoundKernel` were only loosely
connected: packaged scenarios stepped the kernel synchronously and the
fault/mobility machinery was unit-tested in isolation.  The harness closes
that gap:

* **Kernel rounds as events.**  Membership captures and notification
  deliveries schedule token rounds on the
  :class:`repro.sim.engine.SimulationEngine`; each round executes the
  kernel's Figure 3 state machine at its simulated time.
* **Messages through the transport.**  The kernel's
  :class:`repro.core.kernel.MessageDispatch` seam is bound to a
  :class:`TransportDispatch` that turns Notification-to-Parent/Child,
  Holder-Acknowledgement and per-hop token transmissions into real
  :class:`repro.sim.transport.Transport` messages subject to configurable
  latency and per-link loss.  Lost notifications are re-sent with backoff
  until they land (the paper's retransmission masking), so a lossy run
  converges to the same membership view as a lossless one.
* **Faults and mobility drive the protocol.**  A
  :class:`repro.sim.faults.FaultInjector` crash marks the entity failed in
  the kernel and lets the next token circulation *discover* it — the
  kernel's ring-repair surgery runs, instead of being simulated around.
  :class:`repro.sim.mobility.MobilityTrace` events replay as timed
  join/handoff/leave captures.

Every scenario-matrix cell (:mod:`repro.workloads.matrix`) composes against
this harness instead of hand-rolling a driver.
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.config import ProtocolConfig
from repro.core.events import MembershipEventBus
from repro.core.hierarchy import HierarchyBuilder, RingHierarchy, paused_gc
from repro.core.identifiers import NodeId, coerce_node
from repro.core.kernel import (
    KERNEL_BACKENDS,
    MessageDispatch,
    TokenRoundKernel,
    create_kernel,
    stale_for,
)
from repro.core.member import MemberInfo
from repro.core.partition import PartitionReport, detect_partitions
from repro.core.token import TokenOperation
from repro.sim.engine import SimulationEngine
from repro.sim.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.sim.mobility import AttachmentEvent, HandoffEvent, MobilityTrace
from repro.sim.network import LatencyModel, Network, NetworkNode, NodeState
from repro.sim.rng import RandomStreams
from repro.sim.stats import MetricRegistry, RunRecord
from repro.sim.trace import TraceRecorder
from repro.sim.transport import Message, Transport

#: Wire tags of the harness's three message classes.
MSG_NOTIFY = "rgb.notify"
MSG_TOKEN = "rgb.token"
MSG_HOLDER_ACK = "rgb.holder-ack"


class HarnessError(RuntimeError):
    """Raised for invalid harness configuration or usage."""


@dataclass(frozen=True)
class HarnessConfig:
    """Configuration of one :class:`ScenarioHarness` run.

    Parameters
    ----------
    ring_size, height:
        Shape of the regular hierarchy (``ring_size ** height`` access
        proxies), the paper's analytical topology.
    seed:
        Master seed for every named random stream of the run.
    loss:
        Per-link message loss probability (each logical edge of the harness
        network is one link; leader→parent paths are usually one link,
        holder-ack paths up to three).
    latency_mean, latency_std:
        Per-link delay distribution.  ``latency_std=0`` makes delays
        deterministic, which the golden-trace suite relies on.
    transport_retries:
        Link-level retransmissions the transport itself attempts per send.
    resend_limit, resend_backoff:
        Dispatch-level reliability: how often (and how spaced) an undelivered
        notification is re-sent before the harness re-routes or gives up.
    round_delay:
        Delay between an entity's queue becoming non-empty and the token
        round that drains it (the event-driven analogue of the structural
        engine's immediate round).
    crash_detection_delay:
        How long after an entity crash the perpetually circulating token is
        assumed to notice it (schedules a probe round in the crashed
        entity's ring).
    protocol:
        Kernel tunables; ``aggregation_delay`` is ignored by the harness
        (``round_delay`` plays that role on the event queue).
    trace_enabled, trace_capacity:
        Structured trace recording (golden-trace tests switch this on).
    record_sends:
        Keep the first and most recent dispatched notification per member so
        :meth:`ScenarioHarness.schedule_injection` can re-deliver them
        (duplicate/stale replay adversaries).  Off by default: recording
        never changes protocol behaviour, but the bookkeeping is wasted
        unless a scenario injects replays.
    backend:
        Kernel implementation (``"object"`` or ``"columnar"``); both produce
        bit-identical protocol state, the columnar backend trades a denser
        in-memory layout for large-scale propagation speed.
    """

    ring_size: int = 4
    height: int = 2
    seed: int = 0
    loss: float = 0.0
    latency_mean: float = 2.0
    latency_std: float = 0.5
    transport_retries: int = 2
    resend_limit: int = 25
    resend_backoff: float = 20.0
    round_delay: float = 1.0
    crash_detection_delay: float = 5.0
    protocol: ProtocolConfig = field(default_factory=lambda: ProtocolConfig(aggregation_delay=0.0))
    trace_enabled: bool = False
    trace_capacity: Optional[int] = None
    record_sends: bool = False
    backend: str = "object"

    def __post_init__(self) -> None:
        if self.backend not in KERNEL_BACKENDS:
            raise HarnessError(
                f"unknown kernel backend {self.backend!r}; expected one of "
                f"{KERNEL_BACKENDS}"
            )
        if self.ring_size < 2:
            raise HarnessError(f"ring_size must be >= 2, got {self.ring_size}")
        if self.height < 1:
            raise HarnessError(f"height must be >= 1, got {self.height}")
        if not 0.0 <= self.loss < 1.0:
            raise HarnessError(f"loss must be in [0, 1), got {self.loss}")
        if self.resend_limit < 0:
            raise HarnessError(f"resend_limit must be >= 0, got {self.resend_limit}")
        if self.round_delay <= 0 or self.resend_backoff <= 0:
            raise HarnessError("round_delay and resend_backoff must be positive")

    @property
    def num_proxies(self) -> int:
        return self.ring_size ** self.height


@dataclass
class HarnessResult:
    """Outcome summary of one harness run."""

    sim_time: float
    dispatched_events: int
    converged: bool
    ring_agreement: bool
    membership: int
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Full propagation: every queue drained and sampled rings agree."""
        return self.converged and self.ring_agreement


@dataclass
class _PendingNotification:
    """A notification the dispatch has sent but not yet seen delivered.

    ``target_ring_id`` remembers which ring's seen-set the operations were
    marked against at send time — after a repair excises the target, the ring
    itself survives, and a re-route must un-mark there or the surviving
    members would filter the retried operations as duplicates.
    """

    sender: NodeId
    target: NodeId
    operations: Tuple[TokenOperation, ...]
    target_ring_id: str
    attempts: int = 1
    #: Ring the sender belonged to at send time.  The operations a sender
    #: forwards were applied by its whole ring in the round that produced
    #: them, so when the sender dies mid-flight any surviving ring member
    #: can (and must) take over the send — without this, ring-applied state
    #: dies with the messenger.
    sender_ring_id: Optional[str] = None


class TransportDispatch(MessageDispatch):
    """Kernel dispatch that routes protocol messages over the transport.

    Notifications are *reliable within a budget*: the dispatch tracks every
    send and re-sends (with backoff) until the receiving entity's handler
    confirms insertion, re-routing via the kernel's repair logic when the
    target has crashed in the meantime, and giving up only after
    ``resend_limit`` attempts at a live target that stayed unreachable the
    whole time.  Token hops and holder-acknowledgements are fire-and-forget
    messages — their loss is already modelled by the kernel's retransmission
    counters and has no receiver-side state to lose.
    """

    emits_token_messages = True

    def __init__(self, harness: "ScenarioHarness") -> None:
        self.harness = harness
        self._pending: Dict[int, _PendingNotification] = {}
        self._ids = itertools.count(1)
        self._send_ff = harness.transport.send_fire_and_forget

    # -- MessageDispatch interface ------------------------------------------

    def deliver_notification(
        self,
        kernel: TokenRoundKernel,
        sender: NodeId,
        target: NodeId,
        operations: Sequence[TokenOperation],
        now: float,
    ) -> None:
        ring_id = kernel.hierarchy.ring_of(target).ring_id
        pending = _PendingNotification(
            sender,
            target,
            tuple(operations),
            ring_id,
            sender_ring_id=kernel.hierarchy.ring_of_node.get(sender),
        )
        if self.harness.config.record_sends:
            self.harness._record_sends(pending)
        self._transmit(pending)

    def deliver_holder_ack(
        self, kernel: TokenRoundKernel, holder: NodeId, target: NodeId, now: float
    ) -> None:
        self._send_ff(holder.value, target.value, MSG_HOLDER_ACK)

    def token_hop(
        self, kernel: TokenRoundKernel, sender: NodeId, receiver: NodeId, now: float
    ) -> None:
        self._send_ff(sender.value, receiver.value, MSG_TOKEN)

    # -- reliable notification plumbing -------------------------------------

    def _transmit(self, pending: _PendingNotification) -> None:
        harness = self.harness
        dispatch_id = next(self._ids)
        self._pending[dispatch_id] = pending
        receipt = harness.transport.send(
            str(pending.sender),
            str(pending.target),
            MSG_NOTIFY,
            {
                "dispatch_id": dispatch_id,
                "sender": str(pending.sender),
                "operations": pending.operations,
            },
            retries=harness.config.transport_retries,
        )
        if not receipt.accepted and receipt.reason == "no-path":
            # The minimal link graph lost its route (e.g. repair re-attached a
            # ring under a new parent).  The underlying IP network routes
            # anywhere, so materialise a recovery link and retry immediately.
            harness._ensure_link(str(pending.sender), str(pending.target))
            self._pending.pop(dispatch_id, None)
            self._transmit(pending)
            return
        if receipt.accepted and receipt.expected_delivery is not None:
            wait = (receipt.expected_delivery - harness.engine.now) + harness.config.resend_backoff
        else:
            wait = harness.config.resend_backoff

        def check(_engine: SimulationEngine) -> None:
            if dispatch_id not in self._pending:
                return  # delivered
            entry = self._pending.pop(dispatch_id)
            kernel = harness.kernel
            if (
                entry.target in kernel.failed
                or not kernel.hierarchy.has_node(entry.target)
                or entry.sender in kernel.failed
                or not kernel.hierarchy.has_node(entry.sender)
            ):
                # An endpoint crashed while the message was in flight;
                # resending as-is is pointless — re-route through the repair
                # logic now (a dead sender is succeeded by a surviving member
                # of its ring, a dead target by its repaired counterpart).
                harness._reroute_notification(entry)
                return
            if entry.attempts > harness.config.resend_limit:
                # The target is alive but has been unreachable for the whole
                # resend budget (e.g. an unhealed disconnection): genuinely
                # give up.  Un-mark the seen-set so a later notification from
                # another path may still carry the operations.
                harness.metrics.counter("harness.notify_abandoned").increment()
                seen = kernel.ring_seen.get(entry.target_ring_id)
                if seen is not None:
                    seen.difference_update(op.sequence for op in entry.operations)
                return
            harness.metrics.counter("harness.notify_resends").increment()
            entry.attempts += 1
            self._transmit(entry)

        harness.engine.schedule(wait, check, label=f"notify-check:{pending.target}")

    def on_delivered(self, message: Message) -> None:
        """Called by the harness handler when a notify message arrives."""
        dispatch_id = message.payload.get("dispatch_id")
        entry = self._pending.pop(int(dispatch_id), None) if dispatch_id is not None else None
        if entry is None:
            return  # duplicate or unknown — already handled
        self.harness._accept_notification(entry)


@dataclass(frozen=True)
class TopologySnapshot:
    """A frozen, fully built ring hierarchy for one shape.

    ``payload`` pickles the :class:`RingHierarchy` exactly as a fresh
    :class:`ScenarioHarness` would build it.  Rehydrating (``pickle.loads``)
    hands each cell its own private, mutable copy — identical to a fresh
    build bit for bit (interned identifiers re-intern on load) — so a matrix
    sweep builds each distinct shape once instead of once per loss-rate ×
    scenario cell.  Entity states and the link network are deliberately *not*
    frozen: they derive deterministically from the hierarchy through bulk
    paths that are faster than unpickling their object graphs, so each cell
    rebuilds them from its rehydrated hierarchy.

    Invalidation rules: a snapshot is keyed by ``(ring_size, height)`` only,
    because everything else a cell varies (loss, latency, seed, scenario,
    trace) lives outside the pickled state — the network is built per cell
    with the cell's latency model and all RNG draws happen after rehydration.
    Anything that changes the *built structure* (builder logic, ring layout)
    invalidates by construction: snapshots are process-local, never persisted
    to disk, and rebuilt on first use by every new process.

    ``columnar`` optionally ships the columnar backend's structural arrays
    (``ColumnarStore.to_payload``), so a cell running ``backend="columnar"``
    rehydrates the store straight from the arrays instead of re-deriving it
    from rehydrated ring objects.  The store validates the arrays against
    the hierarchy's shape on load and rebuilds on mismatch — loudly: the
    rebuild emits a :class:`RuntimeWarning` and increments the kernel's
    ``harness.columnar_snapshot_rebuilt`` metric, so a stale pairing costs
    speed, never correctness, and never goes unnoticed.
    """

    ring_size: int
    height: int
    payload: bytes
    columnar: Optional[bytes] = None


def build_topology_snapshot(ring_size: int, height: int) -> TopologySnapshot:
    """Build one harness hierarchy and freeze it for reuse across cells."""
    with paused_gc():
        hierarchy = HierarchyBuilder("harness").regular(ring_size=ring_size, height=height)
        payload = pickle.dumps(hierarchy, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            from repro.core.columnar import ColumnarStore

            columnar = ColumnarStore.from_hierarchy(hierarchy).to_payload()
        except ImportError:  # pragma: no cover - numpy is a hard dep in CI
            columnar = None
    return TopologySnapshot(
        ring_size=ring_size, height=height, payload=payload, columnar=columnar
    )


def _build_harness_network(hierarchy: RingHierarchy, latency: LatencyModel) -> Network:
    """One network node per hierarchy entity; links mirror the logical
    edges the protocol uses (ring circulation + member↔parent)."""
    network = Network()
    bottom = hierarchy.bottom_tier()
    top = hierarchy.top_tier()
    for ring in hierarchy.rings.values():
        kind = "AP" if ring.tier == bottom else ("BR" if ring.tier == top else "AG")
        network.add_nodes(
            NetworkNode(node_id=node.value, kind=kind, tier=ring.tier)
            for node in ring.members
        )
    links: List[Tuple[str, str, LatencyModel]] = []
    have = set()
    link_key = Network._link_key
    for ring_id, ring in hierarchy.rings.items():
        members = ring.members
        if len(members) > 1:
            for index, node in enumerate(members):
                succ = members[(index + 1) % len(members)]
                key = link_key(node.value, succ.value)
                if key not in have:
                    have.add(key)
                    links.append((node.value, succ.value, latency))
        parent = hierarchy.parent_node.get(ring_id)
        if parent is not None:
            for node in members:
                key = link_key(parent.value, node.value)
                if key not in have:
                    have.add(key)
                    links.append((parent.value, node.value, latency))
    network.add_links(links)
    return network


class ScenarioHarness:
    """Drives the token-round kernel through the discrete-event sim stack.

    ``snapshot`` (optional) supplies a :class:`TopologySnapshot` of the same
    hierarchy shape; the harness then rehydrates the frozen topology instead
    of rebuilding it — observable behaviour is bit-identical either way
    (pinned by ``tests/test_bulk_build.py``).
    """

    def __init__(
        self,
        config: Optional[HarnessConfig] = None,
        snapshot: Optional[TopologySnapshot] = None,
    ) -> None:
        self.config = config if config is not None else HarnessConfig()
        cfg = self.config
        self.streams = RandomStreams(cfg.seed)
        self.metrics = MetricRegistry()
        self.trace = TraceRecorder(enabled=cfg.trace_enabled, capacity=cfg.trace_capacity)
        self.event_bus = MembershipEventBus()
        self.engine = SimulationEngine()

        with paused_gc():
            if snapshot is not None:
                if (snapshot.ring_size, snapshot.height) != (cfg.ring_size, cfg.height):
                    raise HarnessError(
                        f"snapshot shape r={snapshot.ring_size} h={snapshot.height} does "
                        f"not match config r={cfg.ring_size} h={cfg.height}"
                    )
                hierarchy = pickle.loads(snapshot.payload)
            else:
                hierarchy = HierarchyBuilder("harness").regular(
                    ring_size=cfg.ring_size, height=cfg.height
                )
            self.hierarchy: RingHierarchy = hierarchy
            states = hierarchy.build_entity_states()
            self._latency = LatencyModel(
                mean=cfg.latency_mean,
                std=cfg.latency_std,
                loss=cfg.loss,
            )
            self.network = _build_harness_network(hierarchy, self._latency)
        self.transport = Transport(
            self.engine,
            self.network,
            self.streams,
            metrics=self.metrics,
            trace=self.trace,
            default_retries=cfg.transport_retries,
        )
        # Token hops and holder-acks have no receiver-side handler logic (see
        # _on_message); let the transport account for them without scheduling
        # a no-op delivery event each.  Trace-enabled (golden) runs still take
        # the fully evented path inside the transport.
        self.transport.mark_fire_and_forget(MSG_TOKEN, MSG_HOLDER_ACK)
        self.dispatch = TransportDispatch(self)
        kernel_kwargs = {}
        if cfg.backend != "object" and snapshot is not None and snapshot.columnar:
            kernel_kwargs["store_payload"] = snapshot.columnar
        self.kernel = create_kernel(
            self.hierarchy,
            backend=cfg.backend,
            config=cfg.protocol,
            metrics=self.metrics,
            event_bus=self.event_bus,
            trace=self.trace,
            dispatch=self.dispatch,
            entities=states,
            entities_pristine=True,
            **kernel_kwargs,
        )
        self.faults = FaultInjector(
            self.engine,
            self.network,
            self.streams,
            metrics=self.metrics,
            trace=self.trace,
        )
        self.faults.on_fault(self._on_fault)
        for node_id in self.kernel.entities:
            self.transport.register(str(node_id), self._on_message)

        self._round_scheduled: Set[str] = set()
        self._member_location: Dict[str, NodeId] = {}
        self._member_counter = 0
        # Per-member dispatched-notification log (record_sends only): the
        # first and the most recent send mentioning each member, as
        # single-operation pending entries ready to re-transmit.
        self._first_sends: Dict[str, _PendingNotification] = {}
        self._last_sends: Dict[str, _PendingNotification] = {}
        self._c_rounds = self.metrics.counter("harness.rounds")
        # Notifications whose reroute found no usable fallback target (the
        # sender's whole parent ring died).  Held — never silently dropped —
        # and re-offered whenever a repair re-shapes the hierarchy.
        self._dead_letters: List[_PendingNotification] = []
        self._dead_letter_epoch = self.kernel.coverage_epoch
        # Round-commit listeners (the serving layer's interleave seam):
        # called after every kernel round with (ring_id, sim_now), i.e. at
        # the exact point where membership views may have changed.
        self._round_listeners: List[Callable[[str, float], None]] = []

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _ensure_link(self, a: str, b: str) -> None:
        if not self.network.has_link(a, b):
            self.network.add_link(a, b, self._latency)
            self.metrics.counter("harness.recovery_links").increment()

    # ------------------------------------------------------------------
    # structural information
    # ------------------------------------------------------------------

    def access_proxies(self) -> List[str]:
        return [str(n) for n in self.hierarchy.access_proxies()]

    def ring_neighbor_map(self) -> Dict[str, List[str]]:
        """AP → other members of its bottom ring (handoff-storm locality)."""
        out: Dict[str, List[str]] = {}
        for ring in self.hierarchy.bottom_rings():
            for node in ring.members:
                out[node.value] = [m.value for m in ring.members if m != node]
        return out

    def operational_entities(self) -> List[NodeId]:
        """Entities that are up at both the kernel and the network level."""
        failed = self.kernel.failed
        out = []
        for node in self.kernel.entities:
            if node in failed:
                continue
            if self.network.has_node(node.value) and not self.network.node(node.value).is_operational:
                continue
            out.append(node)
        return out

    def global_membership(self) -> List[MemberInfo]:
        leader = self.hierarchy.topmost_ring().leader
        if leader is None:
            raise HarnessError("topmost ring has no leader")
        return self.kernel.entity(leader).ring_members.members()

    def global_guids(self) -> List[str]:
        return sorted(str(m.guid) for m in self.global_membership())

    def ring_agreement(self, verify_rings: Optional[int] = None) -> bool:
        """Every operational member of (sampled) rings holds the same view."""
        ring_ids = sorted(self.hierarchy.rings)
        if verify_rings is not None and verify_rings < len(ring_ids):
            stride = max(1, len(ring_ids) // verify_rings)
            ring_ids = ring_ids[::stride][:verify_rings]
        failed = self.kernel.failed
        for ring_id in ring_ids:
            views = [
                self.kernel.entity(node).ring_members
                for node in self.hierarchy.ring(ring_id).members
                if node not in failed
            ]
            if len(views) <= 1:
                continue
            first = views[0]
            if not all(first.agrees_with(view) for view in views[1:]):
                return False
        return True

    def partition_report(self) -> PartitionReport:
        return detect_partitions(self.hierarchy, self.operational_entities())

    # ------------------------------------------------------------------
    # timed workload scheduling
    # ------------------------------------------------------------------

    def schedule_join(self, time: float, ap: str, guid: Optional[str] = None) -> str:
        if guid is None:
            guid = f"member-{self._member_counter:06d}"
            self._member_counter += 1
        self.engine.schedule_at(
            time, lambda _e: self._capture_join(ap, guid), label=f"join:{guid}"
        )
        return guid

    def schedule_leave(self, time: float, guid: str) -> None:
        self.engine.schedule_at(time, lambda _e: self._capture_leave(guid), label=f"leave:{guid}")

    def schedule_failure(self, time: float, guid: str) -> None:
        self.engine.schedule_at(
            time, lambda _e: self._capture_member_failure(guid), label=f"fail:{guid}"
        )

    def schedule_handoff(self, time: float, guid: str, to_ap: str) -> None:
        self.engine.schedule_at(
            time, lambda _e: self._capture_handoff(guid, to_ap), label=f"handoff:{guid}"
        )

    def schedule_crash(self, time: float, node_id: str) -> None:
        """Crash a network entity through the fault injector at ``time``."""
        self.faults.apply_plan(FaultPlan().crash(node_id, time=time))

    def schedule_fault_plan(self, plan: FaultPlan) -> None:
        self.faults.apply_plan(plan)

    def schedule_injection(self, time: float, kind: str, member: str) -> None:
        """Re-deliver a recorded dispatch message about ``member`` at ``time``.

        ``kind="duplicate"`` re-transmits the most recent notification that
        mentioned the member (the network delivering the same message twice);
        ``kind="stale"`` re-transmits the *first* one — typically the
        member's original join, the classic resurrection hazard when it
        arrives after the member's leave already circulated.  Requires
        ``record_sends`` in the config; an injection with nothing recorded is
        counted (``harness.injections_skipped``), never silently dropped.
        """
        if kind not in ("duplicate", "stale"):
            raise HarnessError(f"unknown injection kind {kind!r}")
        if not self.config.record_sends:
            raise HarnessError("schedule_injection requires HarnessConfig(record_sends=True)")
        self.engine.schedule_at(
            time, lambda _e: self._inject_replay(kind, member), label=f"inject-{kind}:{member}"
        )

    def schedule_mobility_trace(self, trace: MobilityTrace) -> int:
        """Replay attachment/handoff events as timed captures; returns count."""
        count = 0
        for event in trace.all_events():
            if isinstance(event, AttachmentEvent):
                if event.attach:
                    self.schedule_join(event.time, event.ap_id, guid=event.host_id)
                else:
                    self.schedule_leave(event.time, event.host_id)
            elif isinstance(event, HandoffEvent):
                self.schedule_handoff(event.time, event.host_id, event.to_ap)
            count += 1
        return count

    # ------------------------------------------------------------------
    # capture handlers (run at their simulated times)
    # ------------------------------------------------------------------

    def _capturable(self, ap: "NodeId | str") -> Optional[NodeId]:
        key = coerce_node(ap)
        if key in self.kernel.failed or not self.hierarchy.has_node(key):
            self.metrics.counter("harness.captures_skipped").increment()
            return None
        return key

    def _capture_join(self, ap: str, guid: str) -> None:
        key = self._capturable(ap)
        if key is None:
            return
        op = self.kernel.make_join_op(key, guid)
        self.kernel.capture(key, op, self.engine.now)
        self._member_location[guid] = key
        self._schedule_round(self.hierarchy.ring_of(key).ring_id)

    def _capture_leave(self, guid: str) -> None:
        location = self._member_location.get(guid)
        key = self._capturable(location) if location is not None else None
        if key is None:
            return
        op = self.kernel.make_leave_op(key, guid)
        self.kernel.capture(key, op, self.engine.now)
        self._member_location.pop(guid, None)
        self._schedule_round(self.hierarchy.ring_of(key).ring_id)

    def _capture_member_failure(self, guid: str) -> None:
        location = self._member_location.get(guid)
        key = self._capturable(location) if location is not None else None
        if key is None:
            return
        op = self.kernel.make_failure_op(key, guid)
        self.kernel.capture(key, op, self.engine.now)
        self._member_location.pop(guid, None)
        self._schedule_round(self.hierarchy.ring_of(key).ring_id)

    def _capture_handoff(self, guid: str, to_ap: str) -> None:
        old = self._member_location.get(guid)
        new = self._capturable(to_ap)
        if old is None or new is None or old == new:
            self.metrics.counter("harness.captures_skipped").increment()
            return
        op = self.kernel.make_handoff_op(guid, old, new)
        self.kernel.capture(new, op, self.engine.now)
        self._member_location[guid] = new
        self._schedule_round(self.hierarchy.ring_of(new).ring_id)

    # ------------------------------------------------------------------
    # message and fault handling
    # ------------------------------------------------------------------

    def _record_sends(self, pending: _PendingNotification) -> None:
        """Log the send per mentioned member (record_sends only).

        Each entry is narrowed to the single operation about that member, so
        a replay re-delivers exactly the adversarial message, not whatever
        else happened to share the original notification.
        """
        for op in pending.operations:
            if op.member is None:
                continue
            entry = _PendingNotification(
                pending.sender,
                pending.target,
                (op,),
                pending.target_ring_id,
                sender_ring_id=pending.sender_ring_id,
            )
            key = str(op.member.guid)
            self._first_sends.setdefault(key, entry)
            self._last_sends[key] = entry

    def _inject_replay(self, kind: str, member: str) -> None:
        """Re-transmit the recorded first/last send about ``member`` now.

        The replayed copy goes through the ordinary dispatch machinery —
        transport loss, resends, reroute on a dead endpoint — and lands in
        :meth:`_accept_notification`, where the kernel's per-member sequence
        watermark (:func:`repro.core.kernel.stale_for`) must absorb it.
        """
        record = (self._first_sends if kind == "stale" else self._last_sends).get(member)
        if record is None:
            self.metrics.counter("harness.injections_skipped").increment()
            return
        self.metrics.counter(f"harness.injections_{kind}").increment()
        self.dispatch._transmit(
            _PendingNotification(
                record.sender,
                record.target,
                record.operations,
                record.target_ring_id,
                sender_ring_id=record.sender_ring_id,
            )
        )

    def _on_message(self, message: Message) -> None:
        if message.msg_type == MSG_NOTIFY:
            self.dispatch.on_delivered(message)
        # MSG_TOKEN / MSG_HOLDER_ACK carry no receiver-side state: the round
        # outcome is the kernel's, the transport already recorded the traffic.

    def _accept_notification(self, entry: _PendingNotification) -> None:
        """A notify message reached its destination: insert and run a round."""
        target = entry.target
        if target in self.kernel.failed or not self.hierarchy.has_node(target):
            self._reroute_notification(entry)
            return
        kernel = self.kernel
        entity = kernel.entity(target)
        ring_id = self.hierarchy.ring_of(target).ring_id
        now = self.engine.now
        inserted = False
        applied = kernel.ring_applied_seq.get(ring_id)
        for op in entry.operations:
            # A lost-and-resent notification can arrive after a newer
            # operation about the same member already circulated here; such
            # stale operations must not resurrect outdated state.
            if stale_for(applied, op):
                self.metrics.counter("harness.stale_ops_dropped").increment()
                continue
            entity.mq.insert(op, sender=entry.sender, now=now)
            inserted = True
        self.metrics.counter("harness.notifications_delivered").increment()
        if inserted:
            self._schedule_round(ring_id)

    def _reroute_notification(self, entry: _PendingNotification) -> None:
        """The target died (or vanished) while the notification was in flight.

        Un-mark the operations from the target ring's seen-set — they never
        arrived — and push them back through the kernel's forwarding logic,
        which repairs the failed target's ring and re-targets the surviving
        counterpart (new leader or new parent).
        """
        kernel = self.kernel
        target = entry.target
        sender = self._live_sender(entry)
        self.metrics.counter("harness.notify_rerouted").increment()
        # The operations never arrived: un-mark them from the ring they were
        # marked seen against, or the retry would be filtered as a duplicate.
        seen = kernel.ring_seen.get(entry.target_ring_id)
        if seen is not None:
            seen.difference_update(op.sequence for op in entry.operations)
        if sender is None:
            # The sender and its whole ring died with the operations in
            # flight; stash them — nothing on that side can re-send today,
            # but a later repair may re-shape a path.
            self.metrics.counter("harness.notify_dead_lettered").increment()
            self._dead_letters.append(entry)
            return
        if self.hierarchy.has_node(target) and target != sender:
            kernel.forward_notification(sender, target, entry.operations, self.engine.now)
            return
        # Already repaired away: fall back to the surviving counterpart —
        # the sender's current parent for upward notifications (the repair
        # surgery re-attached orphaned rings there), or the target ring's
        # post-repair leader for downward dissemination (mirroring what
        # ``forward_notification`` does when it runs the repair itself).
        fallback = self._reroute_fallback(sender, target, entry.target_ring_id)
        if fallback is not None:
            kernel.forward_notification(sender, fallback, entry.operations, self.engine.now)
            return
        # No usable fallback: the sender's whole parent ring died, so the
        # re-attachment surgery had nowhere to point the orphaned subtree
        # and the sender's parent slot still dangles at the excised target.
        # These operations were already un-marked from the seen-set; dropping
        # them here would lose them forever with no signal.  Dead-letter
        # them instead: account the loss and stash the entry so the next
        # repair that gives the sender a live parent re-injects them.
        self.metrics.counter("harness.notify_dead_lettered").increment()
        self._dead_letters.append(entry)

    def _live_sender(self, entry: _PendingNotification) -> Optional[NodeId]:
        """The entry's sender if it still lives, else a surviving member of
        the sender's ring (the operations are ring-applied state — any
        survivor legitimately re-sends them), else None."""
        kernel = self.kernel
        sender = entry.sender
        if sender not in kernel.failed and self.hierarchy.has_node(sender):
            return sender
        ring_id = entry.sender_ring_id or self.hierarchy.ring_of_node.get(sender)
        ring = self.hierarchy.rings.get(ring_id) if ring_id else None
        if ring is None:
            return None
        for candidate in itertools.chain((ring.leader,), ring.members):
            if (
                candidate is not None
                and candidate not in kernel.failed
                and self.hierarchy.has_node(candidate)
            ):
                return candidate
        return None

    def _reroute_fallback(
        self, sender: NodeId, target: NodeId, target_ring_id: str
    ) -> Optional[NodeId]:
        """The surviving counterpart for a notification whose target was
        repaired away, or None when there is none (yet)."""
        kernel = self.kernel
        hierarchy = self.hierarchy
        candidates: List[Optional[NodeId]] = []
        if sender in kernel.entities:
            # Upward path: the sender's parent slot, as re-attached by repair.
            candidates.append(kernel.entities[sender].parent)
            ring_id = hierarchy.ring_of_node.get(sender)
            candidates.append(hierarchy.parent_node.get(ring_id) if ring_id else None)
        # Downward/sibling path: the target ring's post-repair leader.
        ring = hierarchy.rings.get(target_ring_id)
        candidates.append(ring.leader if ring is not None else None)
        for candidate in candidates:
            if (
                candidate is not None
                and candidate != target
                and candidate not in kernel.failed
                and hierarchy.has_node(candidate)
            ):
                return candidate
        return None

    def _on_fault(self, event: FaultEvent) -> None:
        if event.kind is not FaultKind.CRASH:
            return  # disconnections/link faults act purely at the network level
        key = coerce_node(str(event.target))
        if key not in self.kernel.entities or key in self.kernel.failed:
            return
        if not self.hierarchy.has_node(key):
            return
        ring_id = self.hierarchy.ring_of(key).ring_id
        self.kernel.fail_entity(key, now=self.engine.now)
        # The perpetually circulating token notices the silent crash within a
        # circulation: schedule a probe round that walks the ring and repairs.
        self._schedule_round(ring_id, delay=self.config.crash_detection_delay)

    # ------------------------------------------------------------------
    # round scheduling
    # ------------------------------------------------------------------

    def add_round_listener(self, listener: Callable[[str, float], None]) -> None:
        """Register a callback fired after every committed kernel round.

        The serving layer hangs its snapshot-invalidation probe here: rounds
        are the only points where membership views change, so a listener
        firing at each commit brackets every torn-read window.
        """
        self._round_listeners.append(listener)

    def schedule_call(self, time: float, fn: Callable[[], None], label: str = "call") -> None:
        """Schedule an arbitrary callback at an absolute sim time.

        The query-interleave seam: a load generator schedules its query
        batches between the churn events already on the wheel, so reads and
        writes share one simulated clock.
        """
        self.engine.schedule_at(time, lambda _e: fn(), label=label)

    def serving_frontend(self, intermediate_tier: Optional[int] = None):
        """A :class:`repro.serving.frontend.ServingFrontend` over this harness.

        Convenience wiring: the frontend subscribes to round commits for
        snapshot invalidation and routes per-scheme queries against the
        kernel (columnar sweeps when the backend supports them, object walk
        otherwise).  Imported lazily to keep the sim layer import-light.
        """
        from repro.serving.frontend import ServingFrontend

        return ServingFrontend(self, intermediate_tier=intermediate_tier)

    def _schedule_round(self, ring_id: str, delay: Optional[float] = None) -> None:
        if ring_id in self._round_scheduled:
            return
        self._round_scheduled.add(ring_id)
        self.engine.schedule(
            self.config.round_delay if delay is None else delay,
            lambda _e: self._run_ring_round(ring_id),
            label=f"round:{ring_id}",
        )

    def _run_ring_round(self, ring_id: str) -> None:
        self._round_scheduled.discard(ring_id)
        kernel = self.kernel
        ring = self.hierarchy.rings.get(ring_id)
        if ring is None or ring.is_empty:
            return
        failed = kernel.failed
        entities = kernel.entities
        has_work = False
        operational = 0
        for n in ring.members:
            if n in failed:
                continue
            operational += 1
            if not has_work and entities[n].has_queued_work():
                has_work = True
        if operational == 0:
            return
        needs_repair = operational != len(ring.members)
        if not has_work and not needs_repair:
            return
        kernel.run_round(ring_id, now=self.engine.now)
        self._c_rounds.increment()
        for listener in self._round_listeners:
            listener(ring_id, self.engine.now)
        # A round may have run repair surgery; give dead-lettered
        # notifications a chance to find their re-attached fallback.
        self._retry_dead_letters()
        # Repair ops (or work queued at other members) trigger a follow-up
        # round — control of a fresh token passes along the ring.
        failed = kernel.failed
        for n in ring.members:
            if n not in failed and entities[n].has_queued_work():
                self._schedule_round(ring_id)
                break

    def _retry_dead_letters(self) -> bool:
        """Re-inject dead-lettered notifications once repair re-shapes things.

        A notification is dead-lettered when its reroute found no usable
        fallback — the sender's parent slot dangled at the excised target
        because the whole parent ring died.  Any later repair surgery
        (tracked via the kernel's coverage epoch) may have re-attached the
        sender's subtree under a live parent; re-offer the stashed
        operations then.  Entries whose fallback is still unusable stay
        stashed (and accounted) rather than being dropped.
        """
        if not self._dead_letters:
            return False
        kernel = self.kernel
        epoch = kernel.coverage_epoch
        if epoch == self._dead_letter_epoch:
            return False
        self._dead_letter_epoch = epoch
        kept: List[_PendingNotification] = []
        reinjected = False
        for entry in self._dead_letters:
            sender = self._live_sender(entry)
            fallback = None
            if sender is not None:
                fallback = self._reroute_fallback(sender, entry.target, entry.target_ring_id)
            if fallback is None or fallback == sender:
                kept.append(entry)
                continue
            self.metrics.counter("harness.notify_reinjected").increment()
            kernel.forward_notification(sender, fallback, entry.operations, self.engine.now)
            reinjected = True
        self._dead_letters = kept
        return reinjected

    @property
    def dead_letters(self) -> List[_PendingNotification]:
        """Dead-lettered notifications still awaiting a usable fallback."""
        return list(self._dead_letters)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def counter_values(self) -> Dict[str, int]:
        """Snapshot of every metric counter (name → value).

        The protocol-driver seam (:mod:`repro.baselines.driver`) measures
        per-change costs as deltas between two snapshots.
        """
        return {name: c.value for name, c in sorted(self.metrics.counters.items())}

    def run(self, until: Optional[float] = None) -> HarnessResult:
        """Drive the engine until quiescence (or ``until``) and summarise."""
        self.engine.run(until=until)
        # A crash landing after the last workload event can leave repair work
        # queued with no future event; sweep until genuinely quiescent.  The
        # sweep also re-offers dead-lettered notifications whose fallback a
        # late repair may have restored.
        while self.engine.pending() == 0 and (
            self._kick_pending_rings() or self._retry_dead_letters()
        ):
            self.engine.run(until=until)
        counters = self.counter_values()
        return HarnessResult(
            sim_time=self.engine.now,
            dispatched_events=self.engine.dispatched_events,
            converged=self.converged(),
            ring_agreement=self.ring_agreement(verify_rings=50),
            membership=len(self.global_membership()),
            counters=counters,
        )

    def _kick_pending_rings(self) -> bool:
        kicked = False
        for ring_id in self.kernel.pending_rings():
            self._schedule_round(ring_id)
            kicked = True
        return kicked

    def converged(self) -> bool:
        """No operational entity has queued work and no events are pending."""
        return self.engine.pending() == 0 and not self.kernel.pending_rings()

    def run_record(
        self, name: str, extra_values: Optional[Mapping[str, float]] = None, **params: object
    ) -> RunRecord:
        """Package the run's metrics as a :class:`repro.sim.stats.RunRecord`.

        ``extra_values`` lets callers fold in their own measurements (wall
        time, verdicts) so the record is complete at construction — it is
        frozen and must not be mutated afterwards.
        """
        values = {
            "sim_time": self.engine.now,
            "events": float(self.engine.dispatched_events),
            "membership": float(len(self.global_membership())),
        }
        if extra_values:
            values.update({k: float(v) for k, v in dict(extra_values).items()})
        return RunRecord.from_registry(
            name,
            self.metrics,
            params=dict(params, seed=self.config.seed, loss=self.config.loss,
                        proxies=self.config.num_proxies),
            values=values,
        )
