"""Event-driven simulation engine.

The engine is a classic calendar-queue discrete-event scheduler: events are
``(time, priority, sequence, callback)`` tuples kept in a binary heap; running
the engine repeatedly pops the earliest event, advances the virtual clock and
invokes the callback.  Callbacks may schedule further events.

Design notes
------------
* Determinism: ties on ``time`` are broken first by ``priority`` (lower runs
  first) and then by insertion order, so two runs with the same seed dispatch
  events in exactly the same order.
* Cancellation: events carry a handle; cancelling marks the heap entry dead
  rather than removing it (lazy deletion), which keeps cancellation O(1).
* The engine knows nothing about networks or protocols — those live in
  :mod:`repro.sim.transport` and :mod:`repro.core.protocol` and simply
  schedule callbacks here.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.sim.clock import VirtualClock

EventCallback = Callable[["SimulationEngine"], None]


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned from :meth:`SimulationEngine.schedule` and can be
    used to cancel the event before it fires.
    """

    __slots__ = ("time", "priority", "callback", "label", "_cancelled", "_dispatched", "_queue")

    def __init__(self, time: float, priority: int, callback: EventCallback, label: str) -> None:
        self.time = time
        self.priority = priority
        self.callback = callback
        self.label = label
        self._cancelled = False
        self._dispatched = False
        self._queue: Optional["EventQueue"] = None

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before dispatch."""
        return self._cancelled

    @property
    def dispatched(self) -> bool:
        """True once the engine has invoked the callback."""
        return self._dispatched

    def cancel(self) -> bool:
        """Cancel the event.  Returns ``False`` if it already ran."""
        if self._dispatched:
            return False
        if not self._cancelled:
            self._cancelled = True
            # Keep the owning queue's live count exact without scanning the
            # heap: the entry itself is removed lazily at pop time.
            queue = self._queue
            if queue is not None:
                queue._live -= 1
                self._queue = None
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self._cancelled else ("done" if self._dispatched else "pending")
        return f"Event(t={self.time:.3f}, prio={self.priority}, label={self.label!r}, {state})"


#: Heap entries are plain tuples ``(time, priority, sequence, event)``: tuple
#: comparison happens in C, which matters because heap sift compares entries
#: O(log n) times per push/pop on the simulator's hottest loop.
_HeapEntry = Tuple[float, int, int, Event]


class EventQueue:
    """Binary-heap event queue with lazy cancellation.

    Ordering is ``(time, priority, insertion order)`` — identical to the
    original dataclass-entry implementation, so two runs with the same seed
    still dispatch events in exactly the same order.
    """

    def __init__(self) -> None:
        self._heap: List[_HeapEntry] = []
        self._next_sequence = 0
        self._live = 0

    def push(self, event: Event) -> None:
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        heapq.heappush(self._heap, (event.time, event.priority, sequence, event))
        event._queue = self
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event._cancelled:
                continue
            event._queue = None
            self._live -= 1
            return event
        self._live = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event without popping it."""
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def __len__(self) -> int:
        return self._live

    def clear(self) -> None:
        for entry in self._heap:
            entry[3]._queue = None
        self._heap.clear()
        self._live = 0


class SimulationEngine:
    """Discrete-event scheduler owning the virtual clock.

    Parameters
    ----------
    max_events:
        Safety valve — :meth:`run` raises :class:`SimulationError` after this
        many dispatches, which catches accidental infinite token loops in
        protocol code under test.
    """

    def __init__(self, max_events: int = 10_000_000) -> None:
        self.clock = VirtualClock()
        self.queue = EventQueue()
        self.max_events = max_events
        self.dispatched_events = 0
        self._running = False
        self._stop_requested = False

    # -- scheduling -------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.clock.now

    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        event = Event(self.clock.now + delay, priority, callback, label)
        self.queue.push(event)
        return event

    def schedule_at(
        self,
        timestamp: float,
        callback: EventCallback,
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        if timestamp < self.clock.now:
            raise SimulationError(
                f"cannot schedule at {timestamp} which is before now={self.clock.now}"
            )
        event = Event(float(timestamp), priority, callback, label)
        self.queue.push(event)
        return event

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Dispatch exactly one event.  Returns ``False`` when queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event._dispatched = True
        self.dispatched_events += 1
        event.callback(self)
        return True

    def run(self, until: Optional[float] = None) -> int:
        """Run until the queue drains or the clock passes ``until``.

        Returns the number of events dispatched by this call.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run() call)")
        self._running = True
        self._stop_requested = False
        dispatched_before = self.dispatched_events
        queue = self.queue
        heap = queue._heap
        heappop = heapq.heappop
        clock = self.clock
        max_events = self.max_events
        try:
            # Inline peek + pop over the queue's heap: one heap operation per
            # dispatch instead of a peek/pop pair of method calls.
            while not self._stop_requested:
                while heap and heap[0][3]._cancelled:
                    heappop(heap)
                if not heap:
                    queue._live = 0
                    break
                if until is not None and heap[0][0] > until:
                    clock.advance_to(until)
                    break
                if self.dispatched_events - dispatched_before >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={self.max_events}; "
                        "likely a runaway event loop"
                    )
                event = heappop(heap)[3]
                queue._live -= 1
                event._queue = None
                clock._now = event.time  # monotonic: heap order guarantees it
                event._dispatched = True
                self.dispatched_events += 1
                event.callback(self)
        finally:
            self._running = False
        return self.dispatched_events - dispatched_before

    def run_until_quiescent(self, max_time: Optional[float] = None) -> int:
        """Alias of :meth:`run` that reads better at call sites."""
        return self.run(until=max_time)

    def stop(self) -> None:
        """Request the current :meth:`run` call to return after this event."""
        self._stop_requested = True

    def pending(self) -> int:
        """Number of events still waiting to be dispatched."""
        return len(self.queue)

    def reset(self) -> None:
        """Clear the queue and rewind the clock; counters are preserved."""
        self.queue.clear()
        self.clock.reset()
        self._stop_requested = False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SimulationEngine(now={self.clock.now:.3f}, pending={self.pending()}, "
            f"dispatched={self.dispatched_events})"
        )
