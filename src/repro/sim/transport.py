"""Message transport over the simulated network.

The transport connects protocol endpoints (anything exposing an
``on_message(message)`` callable registered with :meth:`Transport.register`)
through the :class:`repro.sim.network.Network`.  Sending a message:

1. resolves the current shortest usable path between the two nodes,
2. samples latency and loss per link along that path,
3. schedules delivery on the :class:`repro.sim.engine.SimulationEngine`, and
4. records counters (messages sent / delivered / dropped, physical and
   logical hops) in the :class:`repro.sim.stats.MetricRegistry`.

The paper's scalability metric counts *logical* hops — one logical hop per
protocol message between two network entities regardless of the physical path
length — so the transport tracks both.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from repro.sim.engine import SimulationEngine
from repro.sim.network import Network, NodeState
from repro.sim.rng import RandomStreams
from repro.sim.stats import MetricRegistry
from repro.sim.trace import TraceRecorder

MessageHandler = Callable[["Message"], None]


class TransportError(RuntimeError):
    """Raised for invalid transport usage (unknown endpoint, etc.)."""


@dataclass(frozen=True)
class Message:
    """A protocol message in flight.

    ``payload`` is an arbitrary mapping owned by the protocol layer; the
    transport never inspects it.
    """

    message_id: int
    source: str
    destination: str
    msg_type: str
    payload: Mapping[str, Any]
    sent_at: float
    logical_hop: bool = True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Message(#{self.message_id} {self.msg_type} "
            f"{self.source}->{self.destination} @{self.sent_at:.3f})"
        )


@dataclass(frozen=True)
class DeliveryReceipt:
    """Outcome of a :meth:`Transport.send` call."""

    message: Message
    accepted: bool
    reason: str = ""
    expected_delivery: Optional[float] = None


class Transport:
    """Delivers messages between registered endpoints.

    Parameters
    ----------
    engine, network, streams:
        The shared simulation substrate.
    metrics:
        Registry receiving transport counters and hop histograms.
    trace:
        Optional trace recorder for per-message records.
    default_retries:
        Number of automatic retransmissions when a transmission is lost.
        The paper assumes "token retransmission schemes" detect and mask
        single losses, so the default is 2.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        network: Network,
        streams: RandomStreams,
        metrics: Optional[MetricRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        default_retries: int = 2,
        retry_backoff: float = 5.0,
    ) -> None:
        self.engine = engine
        self.network = network
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.default_retries = default_retries
        self.retry_backoff = retry_backoff
        self._rng = streams.stream("transport")
        self._handlers: Dict[str, MessageHandler] = {}
        self._message_ids = itertools.count(1)
        self._partition_filter: Optional[Callable[[str, str], bool]] = None
        # Message types whose delivery has no receiver-side effect (the
        # protocol layer opts in via mark_fire_and_forget); see send().
        self._fire_and_forget: set = set()
        # Pre-bound counters/histograms: metrics.counter() is a dict probe per
        # call and send() runs a hundred thousand times per large scenario.
        self._c_sent = self.metrics.counter("transport.sent")
        self._c_logical = self.metrics.counter("transport.logical_hops")
        self._c_delivered = self.metrics.counter("transport.delivered")
        self._c_retrans = self.metrics.counter("transport.retransmissions")
        self._c_dropped = self.metrics.counter("transport.dropped")
        self._h_physical = self.metrics.histogram("transport.physical_hops")
        self._h_latency = self.metrics.histogram("transport.latency")
        self._sent_by_type: Dict[str, Any] = {}
        self._dropped_by_reason: Dict[str, Any] = {}
        # (source, destination) -> (topology_epoch, direct-link latency model
        # or None, multihop path / drop reason / None): the fire-and-forget
        # lane's routing decision, valid until the network's epoch moves.
        self._ff_cache: Dict[Tuple[str, str], tuple] = {}

    # -- endpoint registration ---------------------------------------------

    def register(self, node_id: str, handler: MessageHandler) -> None:
        """Register the message handler for ``node_id``."""
        if not self.network.has_node(node_id):
            raise TransportError(f"cannot register handler for unknown node {node_id!r}")
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        self._handlers.pop(node_id, None)

    def is_registered(self, node_id: str) -> bool:
        return node_id in self._handlers

    def set_partition_filter(self, predicate: Optional[Callable[[str, str], bool]]) -> None:
        """Install a predicate blocking delivery between node pairs.

        Used by partition experiments: ``predicate(src, dst)`` returning True
        means the pair cannot currently communicate even though both are up.
        """
        self._partition_filter = predicate

    def mark_fire_and_forget(self, *msg_types: str) -> None:
        """Declare message types whose arrival has no receiver-side effect.

        For such types (e.g. per-hop token transmissions, whose loss is
        modelled by the kernel's retransmission counters, not by receiver
        state) the transport accounts for the delivery at send time instead of
        scheduling a per-message engine event: all counters, histograms and
        RNG draws are identical, only the no-op dispatch is elided.  The fast
        lane is bypassed while tracing is enabled, because the trace must show
        each delivery at its simulated arrival time — golden-trace runs
        therefore take the fully evented path and stay byte-identical.

        The one observable difference is intentional and documented: a
        fire-and-forget message to a destination that crashes while the
        message is in flight counts as delivered rather than
        ``dropped.destination-down-at-delivery``, since the fast lane cannot
        see future node state.  No receiver logic exists for these types, so
        protocol behaviour is unaffected.
        """
        self._fire_and_forget.update(msg_types)

    # -- sending -------------------------------------------------------------

    def send(
        self,
        source: str,
        destination: str,
        msg_type: str,
        payload: Optional[Mapping[str, Any]] = None,
        *,
        logical_hop: bool = True,
        retries: Optional[int] = None,
    ) -> DeliveryReceipt:
        """Send a message; returns a receipt describing what was scheduled."""
        message = Message(
            message_id=next(self._message_ids),
            source=source,
            destination=destination,
            msg_type=msg_type,
            payload=dict(payload or {}),
            sent_at=self.engine.clock.now,
            logical_hop=logical_hop,
        )
        self._c_sent.increment()
        type_counter = self._sent_by_type.get(msg_type)
        if type_counter is None:
            type_counter = self.metrics.counter(f"transport.sent.{msg_type}")
            self._sent_by_type[msg_type] = type_counter
        type_counter.increment()
        if logical_hop and source != destination:
            self._c_logical.increment()

        if source == destination:
            # Local delivery: no network traversal, immediate dispatch.
            self._schedule_delivery(message, delay=0.0, physical_hops=0)
            return DeliveryReceipt(message, True, "local", self.engine.now)

        source_node = self.network.node(source)
        if not source_node.is_operational:
            self._drop(message, "source-not-operational")
            return DeliveryReceipt(message, False, "source-not-operational")

        if self._partition_filter is not None and self._partition_filter(source, destination):
            self._drop(message, "partitioned")
            return DeliveryReceipt(message, False, "partitioned")

        destination_node = self.network.node(destination)
        if destination_node.state is NodeState.FAILED:
            self._drop(message, "destination-failed")
            return DeliveryReceipt(message, False, "destination-failed")

        path = self.network.path(source, destination)
        if path is None:
            self._drop(message, "no-path")
            return DeliveryReceipt(message, False, "no-path")

        max_attempts = 1 + (self.default_retries if retries is None else retries)
        delay = 0.0
        rng = self._rng
        if len(path) == 2:
            # Direct link (the overwhelmingly common case on the minimal link
            # graph): sample the one link's model without building per-hop
            # lists.  Draw order matches path_latency + path_loses exactly.
            latency = self.network.link(path[0], path[1]).latency
            for _attempt in range(max_attempts):
                delay += latency.sample_delay(rng)
                if not latency.sample_loss(rng):
                    return self._accept(message, delay, 1)
                self._c_retrans.increment()
                delay += self.retry_backoff
        else:
            for _attempt in range(max_attempts):
                delay += self.network.path_latency(path, rng)
                if not self.network.path_loses(path, rng):
                    return self._accept(message, delay, len(path) - 1)
                self._c_retrans.increment()
                delay += self.retry_backoff

        self._drop(message, "lost-after-retries")
        return DeliveryReceipt(message, False, "lost-after-retries")

    def _accept(self, message: Message, delay: float, physical_hops: int) -> DeliveryReceipt:
        """Account for a transmission that will arrive ``delay`` from now."""
        now = self.engine.clock.now
        if message.msg_type in self._fire_and_forget and not self.trace.enabled:
            # No receiver-side effect and no trace to order: account for the
            # delivery immediately instead of scheduling a no-op engine event.
            self._h_physical.observe(physical_hops)
            self._c_delivered.increment()
            self._h_latency.observe(delay)
            return DeliveryReceipt(message, True, "scheduled", now + delay)
        self._schedule_delivery(message, delay=delay, physical_hops=physical_hops)
        return DeliveryReceipt(message, True, "scheduled", now + delay)

    def send_fire_and_forget(self, source: str, destination: str, msg_type: str) -> None:
        """Slim send for empty-payload messages with no receiver-side effect.

        Counter, histogram and RNG behaviour are identical to
        :meth:`send`; the :class:`Message`/:class:`DeliveryReceipt` objects
        and the per-message delivery event are elided.  While tracing is
        enabled — or for types not marked fire-and-forget — this defers to
        the fully evented :meth:`send` so traces stay byte-identical.
        """
        if self.trace.enabled or msg_type not in self._fire_and_forget:
            self.send(source, destination, msg_type, {})
            return
        next(self._message_ids)  # keep message ids aligned with the slow lane
        # Counters/histograms are this class's own types: bump their storage
        # directly rather than paying a method call per field per message.
        self._c_sent._value += 1
        type_counter = self._sent_by_type.get(msg_type)
        if type_counter is None:
            type_counter = self.metrics.counter(f"transport.sent.{msg_type}")
            self._sent_by_type[msg_type] = type_counter
        type_counter._value += 1
        if source != destination:
            self._c_logical._value += 1
        else:
            # Local delivery: immediate, lossless.
            self._h_physical._samples.append(0.0)
            self._c_delivered._value += 1
            self._h_latency._samples.append(0.0)
            return

        network = self.network
        epoch = network.topology_epoch
        key = (source, destination)
        cached = self._ff_cache.get(key)
        if cached is None or cached[0] != epoch:
            # Resolve once per (pair, topology epoch): node states and link
            # states can only change together with an epoch bump.
            if not network.node(source).is_operational:
                cached = (epoch, None, "source-not-operational")
            elif network.node(destination).state is NodeState.FAILED:
                cached = (epoch, None, "destination-failed")
            else:
                path = network.path(source, destination)
                if path is None:
                    cached = (epoch, None, "no-path")
                elif len(path) == 2:
                    cached = (epoch, network.link(path[0], path[1]).latency, None)
                else:
                    cached = (epoch, None, path)
            self._ff_cache[key] = cached
        latency = cached[1]
        tail = cached[2]
        # Drop-reason priority matches send(): source-not-operational first,
        # then the (always live) partition filter, then the rest.
        if tail == "source-not-operational":
            self._drop_untracked(tail)
            return
        if self._partition_filter is not None and self._partition_filter(source, destination):
            self._drop_untracked("partitioned")
            return

        rng = self._rng
        max_attempts = 1 + self.default_retries
        delay = 0.0
        if latency is not None:
            mean, std, min_delay, loss = (
                latency.mean, latency.std, latency.min_delay, latency.loss,
            )
            for _attempt in range(max_attempts):
                # Inlined LatencyModel.sample_delay / sample_loss: identical
                # draws in identical order.
                if std == 0.0:
                    sample = mean if mean > min_delay else min_delay
                else:
                    sample = rng.normal(mean, std)
                    sample = float(sample) if sample > min_delay else min_delay
                delay += sample
                if loss == 0.0 or not rng.random() < loss:
                    self._h_physical._samples.append(1.0)
                    self._c_delivered._value += 1
                    self._h_latency._samples.append(float(delay))
                    return
                self._c_retrans._value += 1
                delay += self.retry_backoff
        elif isinstance(tail, str):
            self._drop_untracked(tail)
            return
        else:
            path = tail
            for _attempt in range(max_attempts):
                delay += network.path_latency(path, rng)
                if not network.path_loses(path, rng):
                    self._h_physical._samples.append(float(len(path) - 1))
                    self._c_delivered._value += 1
                    self._h_latency._samples.append(float(delay))
                    return
                self._c_retrans._value += 1
                delay += self.retry_backoff
        self._drop_untracked("lost-after-retries")

    def _drop_untracked(self, reason: str) -> None:
        """Drop accounting for the fire-and-forget lane (trace is disabled)."""
        self._c_dropped.increment()
        reason_counter = self._dropped_by_reason.get(reason)
        if reason_counter is None:
            reason_counter = self.metrics.counter(f"transport.dropped.{reason}")
            self._dropped_by_reason[reason] = reason_counter
        reason_counter.increment()

    # -- delivery -------------------------------------------------------------

    def _schedule_delivery(self, message: Message, delay: float, physical_hops: int) -> None:
        self._h_physical.observe(physical_hops)

        def deliver(_engine: SimulationEngine) -> None:
            destination_node = self.network.node(message.destination)
            if not destination_node.is_operational:
                self._drop(message, "destination-down-at-delivery")
                return
            handler = self._handlers.get(message.destination)
            if handler is None:
                self._drop(message, "no-handler")
                return
            self._c_delivered.increment()
            now = self.engine.clock.now
            self._h_latency.observe(now - message.sent_at)
            if self.trace.enabled:
                self.trace.record(
                    now,
                    "deliver",
                    message.destination,
                    f"{message.msg_type} from {message.source}",
                    message_id=message.message_id,
                )
            handler(message)

        self.engine.schedule(delay, deliver, label=f"deliver:{message.msg_type}")

    def _drop(self, message: Message, reason: str) -> None:
        self.metrics.counter("transport.dropped").increment()
        self.metrics.counter(f"transport.dropped.{reason}").increment()
        self.trace.record(
            self.engine.now,
            "drop",
            message.source,
            f"{message.msg_type} to {message.destination}: {reason}",
            message_id=message.message_id,
        )

    # -- introspection ---------------------------------------------------------

    def sent_count(self, msg_type: Optional[str] = None) -> int:
        name = "transport.sent" if msg_type is None else f"transport.sent.{msg_type}"
        counter = self.metrics.counters.get(name)
        return counter.value if counter else 0

    def logical_hop_count(self) -> int:
        counter = self.metrics.counters.get("transport.logical_hops")
        return counter.value if counter else 0

    def delivered_count(self) -> int:
        counter = self.metrics.counters.get("transport.delivered")
        return counter.value if counter else 0

    def dropped_count(self) -> int:
        counter = self.metrics.counters.get("transport.dropped")
        return counter.value if counter else 0
