"""Message transport over the simulated network.

The transport connects protocol endpoints (anything exposing an
``on_message(message)`` callable registered with :meth:`Transport.register`)
through the :class:`repro.sim.network.Network`.  Sending a message:

1. resolves the current shortest usable path between the two nodes,
2. samples latency and loss per link along that path,
3. schedules delivery on the :class:`repro.sim.engine.SimulationEngine`, and
4. records counters (messages sent / delivered / dropped, physical and
   logical hops) in the :class:`repro.sim.stats.MetricRegistry`.

The paper's scalability metric counts *logical* hops — one logical hop per
protocol message between two network entities regardless of the physical path
length — so the transport tracks both.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from repro.sim.engine import SimulationEngine
from repro.sim.network import Network, NodeState
from repro.sim.rng import RandomStreams
from repro.sim.stats import MetricRegistry
from repro.sim.trace import TraceRecorder

MessageHandler = Callable[["Message"], None]


class TransportError(RuntimeError):
    """Raised for invalid transport usage (unknown endpoint, etc.)."""


@dataclass(frozen=True)
class Message:
    """A protocol message in flight.

    ``payload`` is an arbitrary mapping owned by the protocol layer; the
    transport never inspects it.
    """

    message_id: int
    source: str
    destination: str
    msg_type: str
    payload: Mapping[str, Any]
    sent_at: float
    logical_hop: bool = True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Message(#{self.message_id} {self.msg_type} "
            f"{self.source}->{self.destination} @{self.sent_at:.3f})"
        )


@dataclass(frozen=True)
class DeliveryReceipt:
    """Outcome of a :meth:`Transport.send` call."""

    message: Message
    accepted: bool
    reason: str = ""
    expected_delivery: Optional[float] = None


class Transport:
    """Delivers messages between registered endpoints.

    Parameters
    ----------
    engine, network, streams:
        The shared simulation substrate.
    metrics:
        Registry receiving transport counters and hop histograms.
    trace:
        Optional trace recorder for per-message records.
    default_retries:
        Number of automatic retransmissions when a transmission is lost.
        The paper assumes "token retransmission schemes" detect and mask
        single losses, so the default is 2.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        network: Network,
        streams: RandomStreams,
        metrics: Optional[MetricRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        default_retries: int = 2,
        retry_backoff: float = 5.0,
    ) -> None:
        self.engine = engine
        self.network = network
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.default_retries = default_retries
        self.retry_backoff = retry_backoff
        self._rng = streams.stream("transport")
        self._handlers: Dict[str, MessageHandler] = {}
        self._message_ids = itertools.count(1)
        self._partition_filter: Optional[Callable[[str, str], bool]] = None

    # -- endpoint registration ---------------------------------------------

    def register(self, node_id: str, handler: MessageHandler) -> None:
        """Register the message handler for ``node_id``."""
        if not self.network.has_node(node_id):
            raise TransportError(f"cannot register handler for unknown node {node_id!r}")
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        self._handlers.pop(node_id, None)

    def is_registered(self, node_id: str) -> bool:
        return node_id in self._handlers

    def set_partition_filter(self, predicate: Optional[Callable[[str, str], bool]]) -> None:
        """Install a predicate blocking delivery between node pairs.

        Used by partition experiments: ``predicate(src, dst)`` returning True
        means the pair cannot currently communicate even though both are up.
        """
        self._partition_filter = predicate

    # -- sending -------------------------------------------------------------

    def send(
        self,
        source: str,
        destination: str,
        msg_type: str,
        payload: Optional[Mapping[str, Any]] = None,
        *,
        logical_hop: bool = True,
        retries: Optional[int] = None,
    ) -> DeliveryReceipt:
        """Send a message; returns a receipt describing what was scheduled."""
        message = Message(
            message_id=next(self._message_ids),
            source=source,
            destination=destination,
            msg_type=msg_type,
            payload=dict(payload or {}),
            sent_at=self.engine.now,
            logical_hop=logical_hop,
        )
        self.metrics.counter("transport.sent").increment()
        self.metrics.counter(f"transport.sent.{msg_type}").increment()
        if logical_hop and source != destination:
            self.metrics.counter("transport.logical_hops").increment()

        if source == destination:
            # Local delivery: no network traversal, immediate dispatch.
            self._schedule_delivery(message, delay=0.0, physical_hops=0)
            return DeliveryReceipt(message, True, "local", self.engine.now)

        source_node = self.network.node(source)
        if not source_node.is_operational:
            self._drop(message, "source-not-operational")
            return DeliveryReceipt(message, False, "source-not-operational")

        if self._partition_filter is not None and self._partition_filter(source, destination):
            self._drop(message, "partitioned")
            return DeliveryReceipt(message, False, "partitioned")

        destination_node = self.network.node(destination)
        if destination_node.state is NodeState.FAILED:
            self._drop(message, "destination-failed")
            return DeliveryReceipt(message, False, "destination-failed")

        path = self.network.path(source, destination)
        if path is None:
            self._drop(message, "no-path")
            return DeliveryReceipt(message, False, "no-path")

        max_attempts = 1 + (self.default_retries if retries is None else retries)
        delay = 0.0
        for attempt in range(max_attempts):
            delay += self.network.path_latency(path, self._rng)
            if not self.network.path_loses(path, self._rng):
                self._schedule_delivery(message, delay=delay, physical_hops=len(path) - 1)
                return DeliveryReceipt(message, True, "scheduled", self.engine.now + delay)
            self.metrics.counter("transport.retransmissions").increment()
            delay += self.retry_backoff

        self._drop(message, "lost-after-retries")
        return DeliveryReceipt(message, False, "lost-after-retries")

    # -- delivery -------------------------------------------------------------

    def _schedule_delivery(self, message: Message, delay: float, physical_hops: int) -> None:
        self.metrics.histogram("transport.physical_hops").observe(physical_hops)

        def deliver(_engine: SimulationEngine) -> None:
            destination_node = self.network.node(message.destination)
            if not destination_node.is_operational:
                self._drop(message, "destination-down-at-delivery")
                return
            handler = self._handlers.get(message.destination)
            if handler is None:
                self._drop(message, "no-handler")
                return
            self.metrics.counter("transport.delivered").increment()
            self.metrics.histogram("transport.latency").observe(self.engine.now - message.sent_at)
            self.trace.record(
                self.engine.now,
                "deliver",
                message.destination,
                f"{message.msg_type} from {message.source}",
                message_id=message.message_id,
            )
            handler(message)

        self.engine.schedule(delay, deliver, label=f"deliver:{message.msg_type}")

    def _drop(self, message: Message, reason: str) -> None:
        self.metrics.counter("transport.dropped").increment()
        self.metrics.counter(f"transport.dropped.{reason}").increment()
        self.trace.record(
            self.engine.now,
            "drop",
            message.source,
            f"{message.msg_type} to {message.destination}: {reason}",
            message_id=message.message_id,
        )

    # -- introspection ---------------------------------------------------------

    def sent_count(self, msg_type: Optional[str] = None) -> int:
        name = "transport.sent" if msg_type is None else f"transport.sent.{msg_type}"
        counter = self.metrics.counters.get(name)
        return counter.value if counter else 0

    def logical_hop_count(self) -> int:
        counter = self.metrics.counters.get("transport.logical_hops")
        return counter.value if counter else 0

    def delivered_count(self) -> int:
        counter = self.metrics.counters.get("transport.delivered")
        return counter.value if counter else 0

    def dropped_count(self) -> int:
        counter = self.metrics.counters.get("transport.dropped")
        return counter.value if counter else 0
