"""Deterministic random-number streams.

Every stochastic component of the simulator (latency sampling, fault
injection, mobility, workload generation, Monte-Carlo reliability trials)
draws from its own named stream derived from a single experiment seed.  This
keeps experiments reproducible and, importantly, keeps the streams
*independent*: adding extra latency samples does not perturb the fault
schedule of an otherwise identical run.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np


class RandomStreams:
    """A family of independent, named :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Master seed for the experiment.  Streams are spawned with
        :class:`numpy.random.SeedSequence` children keyed by the stream name,
        so the same ``(seed, name)`` pair always yields the same stream.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this family was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if not name:
            raise ValueError("stream name must be a non-empty string")
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed deterministically from (master seed, name).
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self._seed, spawn_key=tuple(int(b) for b in digest)
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def streams(self, names: Iterable[str]) -> Dict[str, np.random.Generator]:
        """Materialise several named streams at once."""
        return {name: self.stream(name) for name in names}

    def substream(self, base: str, label: str) -> np.random.Generator:
        """The named stream ``"<base>.<label>"``.

        Components that run several independent stochastic *processes* (e.g.
        the fault injector's Poisson crash process and its transient
        disconnection process) must give each process its own substream:
        drawing from one then never shifts the draws of another, so adding a
        workload to a scenario cannot perturb an unrelated workload's
        schedule under the same master seed.
        """
        if not base or not label:
            raise ValueError("substream base and label must be non-empty strings")
        return self.stream(f"{base}.{label}")

    def fork(self, salt: int) -> "RandomStreams":
        """Return a new family whose master seed mixes in ``salt``.

        Used by Monte-Carlo drivers: trial ``i`` runs with ``streams.fork(i)``
        so trials are independent yet reproducible.
        """
        mixed = (self._seed * 1_000_003 + int(salt)) % (2**63 - 1)
        return RandomStreams(mixed)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
