"""Virtual simulation clock.

The clock is owned by the :class:`repro.sim.engine.SimulationEngine`; every
component that needs the current simulation time holds a reference to the
same :class:`VirtualClock` instance.  Time is a float measured in abstract
"time units"; the default latency models in :mod:`repro.sim.network` treat one
unit as one millisecond, but nothing in the engine depends on that
interpretation.
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised when the clock is moved backwards."""


class VirtualClock:
    """A monotonically advancing virtual clock.

    The clock only moves when the engine dispatches an event; user code reads
    :attr:`now` and never advances it directly (the engine uses
    :meth:`advance_to`).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises :class:`ClockError` if ``timestamp`` is in the past; equal
        timestamps are allowed (several events may share a dispatch time).
        """
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards: now={self._now}, requested={timestamp}"
            )
        self._now = float(timestamp)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock, used when an engine is reused between runs."""
        if start < 0:
            raise ValueError(f"clock cannot start at negative time, got {start}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"VirtualClock(now={self._now:.6f})"
