"""Discrete-event simulation substrate for the RGB reproduction.

The mobile-Internet testbed the paper assumes (wireless LANs, cellular and
satellite access networks feeding autonomous systems interconnected by BGP
border routers) is not available, so the protocol runs on this simulator
instead.  The substrate provides:

* :mod:`repro.sim.engine` — an event-driven scheduler with a virtual clock.
* :mod:`repro.sim.transport` — message delivery between simulated nodes with
  per-link latency distributions and loss.
* :mod:`repro.sim.network` — the node/link graph the transport routes over.
* :mod:`repro.sim.faults` — crash, transient-disconnect and link-fault
  injection (the paper folds link faults into node faults; we support both).
* :mod:`repro.sim.mobility` — handoff/attachment event generation for mobile
  hosts.
* :mod:`repro.sim.rng` / :mod:`repro.sim.stats` / :mod:`repro.sim.trace` —
  deterministic randomness, metric collection and event tracing.
* :mod:`repro.sim.harness` — the event-driven scenario harness that drives
  the token-round kernel through all of the above.
"""

from repro.sim.clock import VirtualClock
from repro.sim.engine import Event, EventQueue, SimulationEngine
from repro.sim.rng import RandomStreams
from repro.sim.network import Link, Network, NetworkNode, NodeState
from repro.sim.transport import Message, Transport, DeliveryReceipt
from repro.sim.faults import FaultInjector, FaultKind, FaultEvent, FaultPlan
from repro.sim.mobility import MobilityModel, HandoffEvent, AttachmentEvent
from repro.sim.stats import Counter, Histogram, MetricRegistry, RunRecord, TimeSeries
from repro.sim.trace import TraceEvent, TraceRecorder

# The harness sits *above* repro.core (which itself imports the sim
# submodules), so exporting it eagerly here would be circular.  PEP 562 lazy
# attribute access keeps `from repro.sim import ScenarioHarness` working.
_HARNESS_EXPORTS = ("HarnessConfig", "HarnessResult", "ScenarioHarness", "TransportDispatch")


def __getattr__(name):
    if name in _HARNESS_EXPORTS:
        from repro.sim import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "HarnessConfig",
    "HarnessResult",
    "ScenarioHarness",
    "TransportDispatch",
    "RunRecord",
    "VirtualClock",
    "Event",
    "EventQueue",
    "SimulationEngine",
    "RandomStreams",
    "Link",
    "Network",
    "NetworkNode",
    "NodeState",
    "Message",
    "Transport",
    "DeliveryReceipt",
    "FaultInjector",
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "MobilityModel",
    "HandoffEvent",
    "AttachmentEvent",
    "Counter",
    "Histogram",
    "MetricRegistry",
    "TimeSeries",
    "TraceEvent",
    "TraceRecorder",
]
