"""Fault injection.

The paper's reliability model (Section 5.2) assumes node faults with uniform
and independent probability ``f`` and folds link faults into node faults.
The injector supports:

* **Crash faults** — the node enters ``FAILED`` and never recovers on its own.
* **Transient disconnection** — the node enters ``DISCONNECTED`` and recovers
  after a configurable downtime (the paper's "temporary disconnection" of
  mobile hosts).
* **Link faults** — an individual link goes down (and optionally comes back).

Faults can be injected three ways: a pre-computed :class:`FaultPlan` (used by
Monte-Carlo reliability trials where each node is faulted with probability
``f`` at time zero), scheduled individual :class:`FaultEvent` objects (used by
scenario tests), or a Poisson process of random faults over a run (used by the
churn workloads).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.engine import SimulationEngine
from repro.sim.network import Network, NodeState
from repro.sim.rng import RandomStreams
from repro.sim.stats import MetricRegistry
from repro.sim.trace import TraceRecorder


class FaultKind(enum.Enum):
    """Kinds of injectable faults."""

    CRASH = "crash"
    DISCONNECT = "disconnect"
    RECONNECT = "reconnect"
    LINK_DOWN = "link-down"
    LINK_UP = "link-up"


@dataclass(frozen=True)
class FaultEvent:
    """A single scheduled fault.

    ``target`` is a node id for node faults or an ``(a, b)`` tuple for link
    faults.  ``duration`` only applies to DISCONNECT / LINK_DOWN events with
    automatic recovery; ``None`` means no automatic recovery.
    """

    time: float
    kind: FaultKind
    target: object
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"fault duration must be positive, got {self.duration}")


@dataclass
class FaultPlan:
    """A reproducible collection of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def crash(self, node_id: str, time: float = 0.0) -> "FaultPlan":
        return self.add(FaultEvent(time=time, kind=FaultKind.CRASH, target=node_id))

    def disconnect(self, node_id: str, time: float, duration: Optional[float] = None) -> "FaultPlan":
        return self.add(
            FaultEvent(time=time, kind=FaultKind.DISCONNECT, target=node_id, duration=duration)
        )

    def link_down(self, a: str, b: str, time: float, duration: Optional[float] = None) -> "FaultPlan":
        return self.add(
            FaultEvent(time=time, kind=FaultKind.LINK_DOWN, target=(a, b), duration=duration)
        )

    def sorted_events(self) -> List[FaultEvent]:
        return sorted(self.events, key=lambda e: (e.time, e.kind.value, str(e.target)))

    def __len__(self) -> int:
        return len(self.events)

    @staticmethod
    def uniform_node_faults(
        node_ids: Sequence[str],
        fault_probability: float,
        rng: np.random.Generator,
        time: float = 0.0,
    ) -> "FaultPlan":
        """Fault each node independently with probability ``fault_probability``.

        This is exactly the fault model behind the paper's Table II: uniform,
        independent node faults over the network entities of the hierarchy.
        """
        if not 0.0 <= fault_probability <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {fault_probability}")
        plan = FaultPlan()
        if fault_probability == 0.0:
            return plan
        draws = rng.random(len(node_ids))
        for node_id, draw in zip(node_ids, draws):
            if draw < fault_probability:
                plan.crash(node_id, time=time)
        return plan


class FaultInjector:
    """Applies fault plans and random fault processes to a network.

    Protocol layers can subscribe with :meth:`on_fault` to learn about faults
    as they are applied (failure detectors in the reproduction are driven by
    timeouts, but tests use the callback to assert detection latency).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        network: Network,
        streams: RandomStreams,
        metrics: Optional[MetricRegistry] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.engine = engine
        self.network = network
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        # Each random fault *process* draws from its own named substream, so
        # generating a crash plan never shifts the disconnection schedule (or
        # any other component's draws) under the same master seed.
        self._crash_rng = streams.substream("faults", "poisson")
        self._disconnect_rng = streams.substream("faults", "transient")
        self._listeners: List[Callable[[FaultEvent], None]] = []
        self.applied: List[FaultEvent] = []

    def on_fault(self, listener: Callable[[FaultEvent], None]) -> None:
        """Register a callback invoked whenever a fault is applied."""
        self._listeners.append(listener)

    # -- applying faults ------------------------------------------------------

    def apply_plan(self, plan: FaultPlan) -> None:
        """Schedule every event of ``plan`` on the engine."""
        for event in plan.sorted_events():
            self._schedule(event)

    def inject_now(self, event: FaultEvent) -> None:
        """Apply a fault immediately (without going through the engine queue)."""
        self._apply(event)

    def _schedule(self, event: FaultEvent) -> None:
        delay = max(0.0, event.time - self.engine.now)

        def fire(_engine: SimulationEngine) -> None:
            self._apply(event)

        self.engine.schedule(delay, fire, priority=-10, label=f"fault:{event.kind.value}")

    def _apply(self, event: FaultEvent) -> None:
        if event.kind is FaultKind.CRASH:
            self.network.set_node_state(str(event.target), NodeState.FAILED)
        elif event.kind is FaultKind.DISCONNECT:
            self.network.set_node_state(str(event.target), NodeState.DISCONNECTED)
            if event.duration is not None:
                recover = FaultEvent(
                    time=self.engine.now + event.duration,
                    kind=FaultKind.RECONNECT,
                    target=event.target,
                )
                self._schedule(recover)
        elif event.kind is FaultKind.RECONNECT:
            node = self.network.node(str(event.target))
            # A crashed node does not silently come back; only disconnections heal.
            if node.state is NodeState.DISCONNECTED:
                self.network.set_node_state(str(event.target), NodeState.UP)
        elif event.kind is FaultKind.LINK_DOWN:
            a, b = event.target  # type: ignore[misc]
            self.network.set_link_state(a, b, up=False)
            if event.duration is not None:
                recover = FaultEvent(
                    time=self.engine.now + event.duration,
                    kind=FaultKind.LINK_UP,
                    target=event.target,
                )
                self._schedule(recover)
        elif event.kind is FaultKind.LINK_UP:
            a, b = event.target  # type: ignore[misc]
            self.network.set_link_state(a, b, up=True)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown fault kind {event.kind}")

        self.applied.append(event)
        self.metrics.counter(f"faults.{event.kind.value}").increment()
        self.trace.record(
            self.engine.now, "fault", str(event.target), event.kind.value, duration=event.duration
        )
        for listener in self._listeners:
            listener(event)

    # -- random fault processes --------------------------------------------------

    def poisson_crashes(
        self,
        node_ids: Sequence[str],
        rate_per_node: float,
        horizon: float,
    ) -> FaultPlan:
        """Build a plan of crash faults from a per-node Poisson process.

        ``rate_per_node`` is the expected number of crashes per node per unit
        time; each node crashes at most once (first arrival within the horizon).
        """
        if rate_per_node < 0:
            raise ValueError(f"rate must be non-negative, got {rate_per_node}")
        plan = FaultPlan()
        if rate_per_node == 0:
            return plan
        for node_id in node_ids:
            first_arrival = float(self._crash_rng.exponential(1.0 / rate_per_node))
            if first_arrival <= horizon:
                plan.crash(node_id, time=first_arrival)
        return plan

    def transient_disconnections(
        self,
        node_ids: Sequence[str],
        rate_per_node: float,
        mean_downtime: float,
        horizon: float,
    ) -> FaultPlan:
        """Plan of transient disconnections with exponential downtimes."""
        if mean_downtime <= 0:
            raise ValueError(f"mean downtime must be positive, got {mean_downtime}")
        plan = FaultPlan()
        if rate_per_node == 0:
            return plan
        for node_id in node_ids:
            t = 0.0
            while True:
                t += float(self._disconnect_rng.exponential(1.0 / rate_per_node))
                if t > horizon:
                    break
                downtime = float(self._disconnect_rng.exponential(mean_downtime))
                plan.disconnect(node_id, time=t, duration=downtime)
                t += downtime
        return plan
