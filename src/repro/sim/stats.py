"""Metric collection for simulation runs.

Experiments record three kinds of metrics:

* :class:`Counter` — monotonically increasing totals (messages sent, token
  rounds completed, faults injected).
* :class:`Histogram` — distributions of per-sample values (propagation delay
  of a membership change, hop counts, query latencies).
* :class:`TimeSeries` — (time, value) samples for quantities that evolve over
  a run (membership size, number of partitions).

A :class:`MetricRegistry` groups them under string names so benchmark
harnesses can dump everything at the end of a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np


class Counter:
    """A monotonically non-decreasing integer counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot be decremented (amount={amount})")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name!r}, value={self._value})"


class Histogram:
    """A collection of scalar samples with summary statistics."""

    __slots__ = ("name", "_samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        self._samples.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Tuple[float, ...]:
        return tuple(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return float("nan")
        return float(np.mean(self._samples))

    def std(self) -> float:
        if not self._samples:
            return float("nan")
        return float(np.std(self._samples))

    def min(self) -> float:
        return float(min(self._samples)) if self._samples else float("nan")

    def max(self) -> float:
        return float(max(self._samples)) if self._samples else float("nan")

    def percentile(self, q: float) -> float:
        """q-th percentile (q in [0, 100])."""
        if not self._samples:
            return float("nan")
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self._samples, q))

    def summary(self) -> Dict[str, float]:
        """Summary dictionary used by the benchmark report printers."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "std": self.std(),
            "min": self.min(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max(),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean():.3f})"


class TimeSeries:
    """(time, value) samples for a quantity observed over a run."""

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"time series {self.name!r} must be recorded in time order "
                f"(last={self._times[-1]}, new={time})"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    @property
    def times(self) -> Tuple[float, ...]:
        return tuple(self._times)

    @property
    def values(self) -> Tuple[float, ...]:
        return tuple(self._values)

    def last(self) -> float:
        if not self._values:
            raise ValueError(f"time series {self.name!r} has no samples")
        return self._values[-1]

    def value_at(self, time: float) -> float:
        """Value of the most recent sample at or before ``time`` (step function)."""
        if not self._times:
            raise ValueError(f"time series {self.name!r} has no samples")
        idx = int(np.searchsorted(self._times, time, side="right")) - 1
        if idx < 0:
            raise ValueError(f"no sample at or before time {time} in {self.name!r}")
        return self._values[idx]

    def __len__(self) -> int:
        return len(self._times)


@dataclass
class MetricRegistry:
    """Named collection of counters, histograms and time series."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    series: Dict[str, TimeSeries] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

    def snapshot(self) -> Dict[str, object]:
        """Flat dictionary of every metric, for report printing."""
        out: Dict[str, object] = {}
        for name, counter in sorted(self.counters.items()):
            out[f"counter.{name}"] = counter.value
        for name, hist in sorted(self.histograms.items()):
            out[f"histogram.{name}"] = hist.summary()
        for name, series in sorted(self.series.items()):
            out[f"timeseries.{name}"] = {
                "samples": len(series),
                "last": series.last() if len(series) else None,
            }
        return out

    def merge_counters(self, other: Mapping[str, int]) -> None:
        """Add raw counter values (used when aggregating Monte-Carlo trials)."""
        for name, value in other.items():
            self.counter(name).increment(int(value))


@dataclass(frozen=True)
class RunRecord:
    """Flat, serialisable summary of one simulation run.

    The scenario-matrix runner emits one record per cell; the table renderers
    in :mod:`repro.analysis.tables` and the benchmark harness consume them
    without needing the live :class:`MetricRegistry` objects.
    """

    name: str
    params: Dict[str, object] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    values: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_registry(
        cls,
        name: str,
        registry: "MetricRegistry",
        params: Mapping[str, object] = (),
        values: Mapping[str, float] = (),
    ) -> "RunRecord":
        return cls(
            name=name,
            params=dict(params),
            counters={n: c.value for n, c in sorted(registry.counters.items())},
            values={k: float(v) for k, v in dict(values).items()},
        )

    def counter(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def value(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)

    def to_json(self) -> Dict[str, object]:
        """JSON-ready dictionary (stable key order)."""
        return {
            "name": self.name,
            "params": dict(sorted(self.params.items())),
            "values": dict(sorted(self.values.items())),
            "counters": dict(sorted(self.counters.items())),
        }
