"""Diurnal mobility: sinusoidal arrivals, Pareto sessions, local handoffs.

Production populations are neither stationary nor exponential: arrival rates
swing with the time of day and session lengths are heavy-tailed, so a few
members stay attached across many handoffs while most churn out quickly.
Arrivals follow a non-homogeneous Poisson process (thinning against a
``1 + amplitude * sin`` rate curve); each member's session length is drawn
from a Pareto distribution with the configured mean; while attached, the
member hands off within its bottom-ring AP block at exponential residency
times — the locality assumption the paper's handoff analysis makes.
"""

from __future__ import annotations

import math

from repro.workloads.spec import CompileContext, ScenarioFamily, register_family


class DiurnalMobilityFamily(ScenarioFamily):
    name = "diurnal_mobility"
    title = "sinusoidal arrivals, heavy-tailed sessions, ring-local handoffs"
    defaults = {
        # Simulated seconds per diurnal cycle; the run covers two cycles.
        "day": 240.0,
        # Peak-to-mean arrival swing (0 = homogeneous Poisson).
        "amplitude": 0.8,
        # Pareto shape; 1 < alpha <= 2 gives the heavy tail (infinite
        # variance at alpha <= 2) observed in session-length traces.
        "pareto_alpha": 1.5,
        # Mean session length and mean per-AP residency, in sim seconds.
        "mean_session": 90.0,
        "mean_residency": 25.0,
    }

    def build_workload(self, ctx: CompileContext) -> None:
        n = ctx.num_sites
        hosts = max(3, ctx.spec.events // 4)
        day = float(ctx.params["day"])
        amplitude = float(ctx.params["amplitude"])
        alpha = float(ctx.params["pareto_alpha"])
        if alpha <= 1.0:
            raise ValueError(f"pareto_alpha must be > 1 (finite mean), got {alpha}")
        mean_session = float(ctx.params["mean_session"])
        mean_residency = float(ctx.params["mean_residency"])
        horizon = 2.0 * day
        rate0 = max(hosts / day, 1e-9)
        peak = rate0 * (1.0 + abs(amplitude))

        arrivals = ctx.stream("arrivals")
        sessions = ctx.stream("sessions")
        moves = ctx.stream("handoffs")

        # Pareto with mean `mean_session`: scale x_m = mean * (alpha-1)/alpha,
        # sampled by inversion; capped so one tail draw cannot dwarf the run.
        x_m = mean_session * (alpha - 1.0) / alpha

        t = 0.0
        count = 0
        while count < hosts and t < horizon:
            t += float(arrivals.exponential(1.0 / peak))
            if t >= horizon:
                break
            rate = rate0 * (1.0 + amplitude * math.sin(2.0 * math.pi * t / day))
            if float(arrivals.uniform()) * peak > rate:
                continue  # thinned: off-peak instants accept fewer arrivals
            member = f"dm-{count:04d}"
            site = int(arrivals.integers(0, n))
            ctx.emit(t, "join", member=member, site=site)
            session = min(
                x_m / (1.0 - float(sessions.uniform())) ** (1.0 / alpha),
                6.0 * day,
            )
            block_start = (site // ctx.ring_size) * ctx.ring_size
            block = min(ctx.ring_size, n - block_start)
            now = t
            current = site
            while block > 1:
                now += float(moves.exponential(mean_residency))
                if now >= t + session or now >= horizon:
                    break
                nxt = block_start + int(moves.integers(0, block))
                if nxt == current:
                    continue  # residency elapsed but the draw stayed home
                ctx.emit(now, "handoff", member=member, site=nxt)
                current = nxt
            if t + session < horizon:
                ctx.emit(t + session, "leave", member=member)
            count += 1


register_family(DiurnalMobilityFamily())
