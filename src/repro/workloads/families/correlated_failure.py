"""Correlated branch-router failure: one subtree dies, killing many rings.

After a warm-up population attaches across the hierarchy, the whole subtree
under one tier-``root_tier`` node crashes at a single instant — the subtree
root first, then each interior tier top-down, then every access proxy in the
block.  This is the scenario the ring hierarchy's repair surgery was designed
for (and the one that partitions a representative-based tree): many logical
rings lose members at once, whole bottom rings die with their message queues,
and the surviving rings must excise the branch, failure-propagate every
member attached beneath it and re-attach orphaned structure.

Aftermath joins at surviving proxies then check that the repaired hierarchy
still propagates — the head-to-head convergence/cost table in
``BENCH_ablation.json`` comes from replaying this script through all four
protocols.

Known honest DISAGREE this family pins: RGB retains the member attached at
the *last* access proxy of the annihilated bottom ring (a ghost).  The
paper's detection mechanism (Section 5.2) is token retransmission *within a
ring* — each AP crash is noticed and repaired by the surviving ring peers,
which failure-propagate that AP's members one by one; but when the final
peer dies there is no surviving observer left inside the ring, so nobody
emits the last member's MEMBER_FAILURE.  The toy baselines use global
knowledge and remove everyone.  A correlated failure that annihilates an
entire bottom ring therefore defeats ring-internal failure detection — a
genuine model gap, not an implementation bug, and the golden conformance
test pins it as such.
"""

from __future__ import annotations

from repro.workloads.spec import CompileContext, ScenarioFamily, register_family


class CorrelatedFailureFamily(ScenarioFamily):
    name = "correlated_failure"
    title = "a tier-N subtree crashes at once; survivors repair and re-attach"
    defaults = {
        # Tier of the subtree root to kill; 0 means "the topmost internal
        # tier" (the whole branch under one branch-router member).  Clamped
        # to [2, height].
        "root_tier": 0,
        # Fresh members joining surviving proxies after the crash.
        "aftermath": 6,
    }

    def build_workload(self, ctx: CompileContext) -> None:
        # Warm-up: one member per event, round-robin across every proxy, so
        # the victim subtree holds a representative share of the population.
        for i in range(ctx.spec.events):
            ctx.emit(0.75 * i, "join", member=f"cf-{i:04d}", site=i % ctx.num_sites)

    def build_faults(self, ctx: CompileContext) -> None:
        n, r, h = ctx.num_sites, ctx.ring_size, ctx.height
        tier = int(ctx.params["root_tier"]) or h
        tier = max(2, min(tier, h))
        block = r ** (tier - 1)
        rng = ctx.stream("subtree")
        start = int(rng.integers(0, n // block)) * block
        fail_at = 0.75 * ctx.spec.events + 40.0
        # Top-down: the subtree root, then each interior tier, then the APs.
        # Ties in time keep emission order (the finalize sort is stable), so
        # the branch dies root-first — the worst case for upward paths.
        for t in range(tier, 1, -1):
            sub_block = r ** (t - 1)
            for sub_start in range(start, start + block, sub_block):
                ctx.emit(fail_at, "crash", site=sub_start, tier=t)
        for ap in range(start, start + block):
            ctx.emit(fail_at, "crash", site=ap, tier=1)

    def build_injections(self, ctx: CompileContext) -> None:
        # Not an injection family, but the aftermath joins belong after the
        # faults in the pipeline ordering: fresh members must land on the
        # *repaired* hierarchy.  The victim block is read back off the crash
        # events the fault pass already emitted, not re-drawn.
        n = ctx.num_sites
        crashed = {e.site for e in ctx.events if e.kind == "crash" and e.tier == 1}
        survivors = [i for i in range(n) if i not in crashed]
        fail_at = 0.75 * ctx.spec.events + 40.0
        pick = ctx.stream("aftermath")
        for i in range(int(ctx.params["aftermath"])):
            site = survivors[int(pick.integers(0, len(survivors)))]
            ctx.emit(fail_at + 60.0 + 2.0 * i, "join", member=f"cf-after-{i:02d}", site=site)


register_family(CorrelatedFailureFamily())
