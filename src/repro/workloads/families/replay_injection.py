"""Duplicate/stale message replay injected at the dispatch seam.

A lossy, retrying network re-delivers old messages: the same notification
twice (duplicate), or a long-delayed copy of a message the protocol has since
superseded (stale replay — the classic resurrection hazard: a member's
original *join* arriving after its *leave* already circulated).

This family builds a steady population, a set of join-then-leave "stale
victim" members, and then injects, at the dispatch seam, (a) re-deliveries of
the most recent recorded message about still-present members and (b) replays
of the *original join* message of the departed victims.  The RGB kernel's
per-member sequence watermark (``stale_for``: drop when
``op.sequence <= applied``) must absorb both without resurrecting anybody;
the toy baselines re-apply whatever arrives, so a stale join *does* resurrect
the departed member — the honest cross-protocol DISAGREE the golden test
pins.
"""

from __future__ import annotations

from repro.workloads.spec import CompileContext, ScenarioFamily, register_family


class ReplayInjectionFamily(ScenarioFamily):
    name = "replay_injection"
    title = "re-deliver recorded messages: duplicates + stale join replays"
    # The harness must record per-member dispatch sends so the injector has
    # real messages to replay.
    record_sends = True
    defaults = {
        # Duplicate re-deliveries of the latest message of present members.
        "duplicates": 4,
        # Stale replays of the original join of departed members.
        "stale_replays": 4,
    }

    def _victim(self, index: int) -> str:
        return f"ri-stale-{index:02d}"

    def build_workload(self, ctx: CompileContext) -> None:
        n = ctx.num_sites
        for i in range(ctx.spec.events):
            ctx.emit(2.0 * i, "join", member=f"ri-{i:04d}", site=i % n)
        stales = int(ctx.params["stale_replays"])
        t0 = 2.0 * ctx.spec.events + 10.0
        for i in range(stales):
            ctx.emit(t0 + 2.0 * i, "join", member=self._victim(i), site=(3 * i) % n)
            ctx.emit(t0 + 2.0 * i + 30.0, "leave", member=self._victim(i))

    def build_injections(self, ctx: CompileContext) -> None:
        stales = int(ctx.params["stale_replays"])
        duplicates = int(ctx.params["duplicates"])
        t0 = 2.0 * ctx.spec.events + 10.0
        # Stale replays fire well after every victim's leave has propagated.
        for i in range(stales):
            ctx.emit(t0 + 90.0 + 2.0 * i, "inject_stale", member=self._victim(i))
        pick = ctx.stream("duplicates")
        present = [f"ri-{i:04d}" for i in range(ctx.spec.events)]
        for i in range(duplicates):
            target = present[int(pick.integers(0, len(present)))]
            ctx.emit(t0 + 150.0 + 3.0 * i, "inject_duplicate", member=target)


register_family(ReplayInjectionFamily())
