"""Flash crowd: a join burst worth ~10% of the proxy count hits one region.

The adversarial shape the paper's uniform churn never produces: a background
trickle keeps the whole hierarchy mildly busy while, within a few seconds, a
burst of fresh members all join access proxies under *one* tier-``region_tier``
node.  Every ring on the path from that region to the root sees a
disproportionate share of the aggregate load, which is exactly where the
token's operation aggregation should (or should not) absorb the spike.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.spec import CompileContext, ScenarioFamily, register_family


class FlashCrowdFamily(ScenarioFamily):
    name = "flash_crowd"
    title = "join burst worth fraction*proxies into one region within seconds"
    defaults = {
        # Burst size as a fraction of the proxy count (floor of 4 members).
        "fraction": 0.10,
        # Seconds the whole burst arrives within.
        "window": 6.0,
        # The region is the AP block under one tier-`region_tier` node.
        "region_tier": 2,
        # Background trickle joins across the rest of the hierarchy.
        "background": True,
    }

    def build_workload(self, ctx: CompileContext) -> None:
        n = ctx.num_sites
        background = 0
        if ctx.params["background"]:
            background = min(ctx.spec.events, n)
            for i in range(background):
                ctx.emit(1.5 * i, "join", member=f"bg-{i:04d}", site=i % n)

        region_tier = max(1, min(int(ctx.params["region_tier"]), ctx.height))
        block = min(ctx.ring_size ** (region_tier - 1), n)
        region_rng = ctx.stream("region")
        region_start = int(region_rng.integers(0, max(n // block, 1))) * block

        burst = max(4, round(float(ctx.params["fraction"]) * n))
        window = float(ctx.params["window"])
        arrivals = ctx.stream("arrivals")
        start = 1.5 * background + 10.0
        offsets = np.sort(arrivals.uniform(0.0, window, size=burst))
        targets = arrivals.integers(0, block, size=burst)
        for i in range(burst):
            ctx.emit(
                start + float(offsets[i]),
                "join",
                member=f"fc-{i:04d}",
                site=region_start + int(targets[i]),
            )


register_family(FlashCrowdFamily())
