"""Adversarial scenario families (declarative, compiled by the spec pipeline).

Importing this package registers every built-in family with
:mod:`repro.workloads.spec`:

* :mod:`~repro.workloads.families.flash_crowd` — a burst of joins worth ~10%
  of the proxy count lands in one region within seconds;
* :mod:`~repro.workloads.families.correlated_failure` — a branch router's
  whole subtree dies top-down, killing many rings at once;
* :mod:`~repro.workloads.families.diurnal_mobility` — sinusoidal arrivals
  with heavy-tailed (Pareto) session lengths and local handoffs;
* :mod:`~repro.workloads.families.replay_injection` — duplicate and stale
  message replay at the dispatch seam.

Each family contributes *events*, never harness code: the compiled
:class:`repro.workloads.spec.FaultScript` replays identically through the
event-driven RGB harness and — via the protocol-neutral op replay in
:mod:`repro.workloads.matrix` — through every baseline protocol driver.
"""

from repro.workloads.families.correlated_failure import CorrelatedFailureFamily
from repro.workloads.families.diurnal_mobility import DiurnalMobilityFamily
from repro.workloads.families.flash_crowd import FlashCrowdFamily
from repro.workloads.families.replay_injection import ReplayInjectionFamily

__all__ = [
    "CorrelatedFailureFamily",
    "DiurnalMobilityFamily",
    "FlashCrowdFamily",
    "ReplayInjectionFamily",
]
