"""Parallel scenario-matrix execution.

Shards the cells of a :class:`repro.workloads.matrix.ScenarioMatrix` (or
:class:`repro.workloads.matrix.AblationSweep`) across a ``multiprocessing``
pool.  The design leans entirely on the determinism contract of the cell
runner:

* **Per-cell seeding.**  Every stochastic component of a cell draws from
  :class:`repro.sim.rng.RandomStreams` streams derived from
  ``(cell.seed, stream name)``.  No module-level RNG or process-global
  counter feeds a cell (the last such leak — the module-level token-id
  counter in :mod:`repro.core.token` — was removed when this runner landed),
  so a cell's :class:`repro.sim.stats.RunRecord` does not depend on which
  worker runs it, in which order, or whether any pool is involved at all:
  ``run_cells(jobs=4)`` is bit-identical to ``run_cells(jobs=1)`` up to
  wall-clock fields (property-tested in ``tests/test_parallel_matrix.py``).
* **Worker-side serialisation.**  Workers return plain dataclasses
  (:class:`repro.workloads.matrix.CellResult` carrying a ``RunRecord``) that
  pickle cleanly; the live harness never crosses the process boundary.
* **Failure isolation.**  A crashing cell is captured as a
  :class:`CellFailure` (with its traceback) and the remaining cells keep
  running; the caller decides whether a partial sweep is acceptable.

CLI::

    PYTHONPATH=src python -m repro.workloads.matrix --sizes 1000 --jobs 4
    PYTHONPATH=src python benchmarks/run_bench.py --matrix --jobs 4
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.identifiers import clear_intern_tables
from repro.sim.harness import TopologySnapshot
from repro.sim.stats import RunRecord
from repro.workloads.matrix import (
    AblationSweep,
    CellResult,
    MatrixCell,
    ScenarioMatrix,
    TopologySnapshotCache,
    run_ablation_cell,
    run_matrix_cell,
)

#: RunRecord value keys that legitimately differ between two runs of the same
#: cell (wall-clock measurements); everything else must match bit-for-bit.
NONDETERMINISTIC_VALUE_KEYS = frozenset(
    {"wall_seconds", "build_seconds", "events_per_second"}
)


@dataclass(frozen=True)
class CellFailure:
    """A cell whose worker raised instead of returning a result."""

    cell: MatrixCell
    error: str
    traceback: str


@dataclass
class ParallelRunReport:
    """Outcome of a (possibly parallel) sweep over matrix cells."""

    results: List[CellResult] = field(default_factory=list)
    failures: List[CellFailure] = field(default_factory=list)
    jobs: int = 1
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def records(self) -> List[RunRecord]:
        return [r.record for r in self.results]

    def raise_if_failed(self) -> None:
        if self.failures:
            first = self.failures[0]
            raise RuntimeError(
                f"{len(self.failures)} matrix cell(s) failed; first: "
                f"{first.cell.label}: {first.error}\n{first.traceback}"
            )


def record_fingerprint(record: RunRecord) -> Dict[str, object]:
    """Canonical, comparison-ready form of a :class:`RunRecord`.

    Drops the wall-clock value keys (the only fields allowed to differ
    between a sequential and a parallel run of the same cell) and sorts
    everything else, so two fingerprints are equal iff the runs were
    bit-identical in converged state, cost totals and counters.
    """
    return {
        "name": record.name,
        "params": dict(sorted(record.params.items())),
        "values": {
            key: value
            for key, value in sorted(record.values.items())
            if key not in NONDETERMINISTIC_VALUE_KEYS
        },
        "counters": dict(sorted(record.counters.items())),
    }


def result_fingerprint(result: CellResult) -> Dict[str, object]:
    """Fingerprint of a full :class:`CellResult` (record + cell outcome)."""
    return {
        "cell": result.cell.label,
        "record": record_fingerprint(result.record),
        "workload_events": result.workload_events,
        "dispatched_events": result.dispatched_events,
        "converged": result.converged,
        "ring_agreement": result.ring_agreement,
        "membership": result.membership,
    }


#: Worker payload: (cell, events per cell, use the sequential ablation replay,
#: snapshot-table key or None).
_WorkerPayload = Tuple[MatrixCell, int, bool, Optional[Tuple[int, int]]]
_WorkerOutcome = Tuple[str, Union[CellResult, CellFailure]]

#: Frozen topology snapshots by (ring_size, height), installed in each worker
#: by the pool initializer (and in this process for the jobs=1 path).  The
#: payloads carry only the *key*: shipping the snapshot bytes once per worker
#: instead of once per cell keeps the pickle traffic through the pool's pipes
#: independent of the cell count.
_WORKER_SNAPSHOTS: Dict[Tuple[int, int], TopologySnapshot] = {}


def _install_worker_snapshots(snapshots: Dict[Tuple[int, int], TopologySnapshot]) -> None:
    """Pool initializer: make the sweep's snapshots visible to this worker."""
    _WORKER_SNAPSHOTS.clear()
    _WORKER_SNAPSHOTS.update(snapshots)


def _run_cell_worker(payload: _WorkerPayload) -> _WorkerOutcome:
    """Run one cell in a pool worker; never raises (failure isolation)."""
    cell, events, ablation, snapshot_key = payload
    try:
        if ablation:
            result = run_ablation_cell(cell, events=events)
        else:
            snapshot = (
                _WORKER_SNAPSHOTS.get(snapshot_key) if snapshot_key is not None else None
            )
            result = run_matrix_cell(cell, events=events, snapshot=snapshot)
        return ("ok", result)
    except BaseException as exc:  # noqa: BLE001 - isolate *any* cell crash
        return (
            "error",
            CellFailure(cell=cell, error=repr(exc), traceback=traceback.format_exc()),
        )
    finally:
        # Pool workers are long-lived and process many cells; without this
        # each finished cell's interned node/GUID identifiers stay pinned
        # for the worker's lifetime (the sweep-level analogue of the reset
        # in ScenarioMatrix.run).  Snapshots re-intern on rehydration and
        # results carry only plain strings, so output is unaffected.
        clear_intern_tables()


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap workers); spawn otherwise.

    Determinism must not depend on the start method: fork is the *harder*
    case (workers inherit the parent's full module state mid-run), and the
    equivalence property suite runs under it on Linux.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_cells(
    cells: Sequence[MatrixCell],
    events: int = 24,
    jobs: int = 1,
    ablation: bool = False,
    progress: bool = False,
) -> ParallelRunReport:
    """Run ``cells`` with ``jobs`` worker processes (1 = in-process, no pool).

    Results come back in input order regardless of completion order, so a
    parallel sweep serialises to exactly the same report as a sequential one.
    """
    if events < 1:
        raise ValueError(f"events must be >= 1, got {events}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    start = time.perf_counter()

    # Freeze each distinct topology shape once in the parent; workers get the
    # whole table through the pool initializer (for fork pools the bytes are
    # inherited copy-on-write, for spawn pools they ship once per worker).
    snapshot_table: Dict[Tuple[int, int], TopologySnapshot] = {}
    payloads: List[_WorkerPayload] = []
    if not ablation:
        cache = TopologySnapshotCache()
        for cell in cells:
            snapshot = cache.for_cell(cell)
            key = None
            if snapshot is not None:
                key = (snapshot.ring_size, snapshot.height)
                snapshot_table[key] = snapshot
            payloads.append((cell, events, ablation, key))
    else:
        payloads = [(cell, events, ablation, None) for cell in cells]
    jobs = min(jobs, max(1, len(payloads)))

    report = ParallelRunReport(jobs=jobs)
    if jobs == 1:
        _install_worker_snapshots(snapshot_table)
        _collect(report, map(_run_cell_worker, payloads), progress)
    else:
        context = _pool_context()
        pool = context.Pool(
            processes=jobs,
            initializer=_install_worker_snapshots,
            initargs=(snapshot_table,),
        )
        try:
            # imap (not imap_unordered): input-order results, streamed so the
            # progress line appears as each cell completes.
            _collect(report, pool.imap(_run_cell_worker, payloads, chunksize=1), progress)
        finally:
            pool.close()
            pool.join()
    report.wall_seconds = time.perf_counter() - start
    return report


def _collect(
    report: ParallelRunReport, outcomes: Iterable[_WorkerOutcome], progress: bool
) -> None:
    for status, value in outcomes:
        if status == "ok":
            report.results.append(value)
            if progress:
                state = "ok" if (value.converged and value.ring_agreement) else "INCOMPLETE"
                print(
                    f"{value.cell.label:<52} {value.wall_seconds:7.2f}s "
                    f"{value.dispatched_events:>8} events  {state}",
                    flush=True,
                )
        else:
            report.failures.append(value)
            if progress:
                print(f"{value.cell.label:<52} FAILED: {value.error}", flush=True)


def run_matrix(
    matrix: ScenarioMatrix, jobs: int = 1, progress: bool = False
) -> ParallelRunReport:
    """Sweep a :class:`ScenarioMatrix`, sharding cells across ``jobs`` workers."""
    return run_cells(
        matrix.cells(),
        events=matrix.events_per_cell,
        jobs=jobs,
        ablation=False,
        progress=progress,
    )


def run_ablation(
    sweep: AblationSweep, jobs: int = 1, progress: bool = False
) -> ParallelRunReport:
    """Sweep an :class:`AblationSweep` through the pool (sequential replay per cell)."""
    return run_cells(
        sweep.cells(),
        events=sweep.events_per_cell,
        jobs=jobs,
        ablation=True,
        progress=progress,
    )
