"""Churn workload: joins, voluntary leaves and member failures over time.

The generator produces a time-ordered list of :class:`ChurnEvent` records that
can be replayed against any membership engine (RGB, flat ring, tree, gossip).
Rates are Poisson; the member population is tracked so leaves/failures only
target currently joined members.

Departure targets are sampled in O(1) from a parallel member list kept in
sync with the population map (swap-remove on departure), so generating a
100k-event trace is linear in the event count — the seed implementation
re-sorted the whole population on every departure, which made large traces
O(n² log n).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.rng import RandomStreams


class ChurnKind(enum.Enum):
    JOIN = "join"
    LEAVE = "leave"
    FAILURE = "failure"


@dataclass(frozen=True)
class ChurnEvent:
    """One churn event: a member joins, leaves or fails at an access proxy."""

    time: float
    kind: ChurnKind
    member: str
    ap: str


@dataclass
class ChurnWorkload:
    """Generator of churn event sequences.

    Parameters
    ----------
    ap_ids:
        Access proxies members can join at.
    join_rate:
        Expected joins per unit time.  May be zero for a pure-departure trace,
        in which case ``initial_members`` must be positive (otherwise the
        trace could never contain an event).
    leave_rate, failure_rate:
        Expected departures per unit time *per joined member*.
    initial_members:
        Members already joined (at seeded random proxies) when the trace
        starts; no join events are emitted for them, but departures may
        target them.
    horizon:
        Length of the generated trace.
    seed:
        Seed for the ``"churn"`` random stream.
    """

    ap_ids: Sequence[str]
    join_rate: float = 0.5
    leave_rate: float = 0.001
    failure_rate: float = 0.0005
    initial_members: int = 0
    horizon: float = 1000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.ap_ids:
            raise ValueError("churn workload needs at least one access proxy")
        if self.join_rate < 0:
            raise ValueError(f"join_rate must be >= 0, got {self.join_rate}")
        for name, value in (("leave_rate", self.leave_rate), ("failure_rate", self.failure_rate)):
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.initial_members < 0:
            raise ValueError(f"initial_members must be >= 0, got {self.initial_members}")
        if self.join_rate == 0 and self.initial_members == 0:
            raise ValueError(
                "join_rate == 0 with no initial members can never produce an event; "
                "set join_rate > 0 or initial_members > 0"
            )
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")

    def generate(self) -> List[ChurnEvent]:
        """Generate the time-ordered churn trace."""
        rng = RandomStreams(self.seed).stream("churn")
        events: List[ChurnEvent] = []
        population: Dict[str, str] = {}  # member -> ap
        # Parallel list of the population's members for O(1) uniform sampling;
        # departures swap-remove so no per-event sort or rebuild is needed.
        members: List[str] = []
        member_index: Dict[str, int] = {}

        def add_member(member: str, ap: str) -> None:
            population[member] = ap
            member_index[member] = len(members)
            members.append(member)

        def remove_member_at(index: int) -> str:
            member = members[index]
            last = members[-1]
            members[index] = last
            member_index[last] = index
            members.pop()
            del member_index[member]
            return member

        for index in range(self.initial_members):
            ap = self.ap_ids[int(rng.integers(len(self.ap_ids)))]
            add_member(f"churn-{self.seed}-init-{index:06d}", ap)

        t = 0.0
        counter = 0
        while True:
            departure_rate = (self.leave_rate + self.failure_rate) * len(population)
            total_rate = self.join_rate + departure_rate
            if total_rate <= 0:
                # join_rate == 0 and the population drained (or departure rates
                # are zero): no further event can ever occur — terminate
                # instead of feeding 1/0 into the exponential sampler.
                break
            t += float(rng.exponential(1.0 / total_rate))
            if t > self.horizon:
                break
            if departure_rate > 0 and rng.random() < departure_rate / total_rate:
                member = remove_member_at(int(rng.integers(len(members))))
                ap = population.pop(member)
                is_failure = rng.random() < self.failure_rate / (self.leave_rate + self.failure_rate) \
                    if (self.leave_rate + self.failure_rate) > 0 else False
                kind = ChurnKind.FAILURE if is_failure else ChurnKind.LEAVE
                events.append(ChurnEvent(time=t, kind=kind, member=member, ap=ap))
            else:
                member = f"churn-{self.seed}-{counter:06d}"
                counter += 1
                ap = self.ap_ids[int(rng.integers(len(self.ap_ids)))]
                add_member(member, ap)
                events.append(ChurnEvent(time=t, kind=ChurnKind.JOIN, member=member, ap=ap))
        return events

    @staticmethod
    def summarize(events: Sequence[ChurnEvent]) -> Dict[str, int]:
        """Event counts per kind."""
        counts = {kind.value: 0 for kind in ChurnKind}
        for event in events:
            counts[event.kind.value] += 1
        counts["total"] = len(events)
        return counts
