"""Churn workload: joins, voluntary leaves and member failures over time.

The generator produces a time-ordered list of :class:`ChurnEvent` records that
can be replayed against any membership engine (RGB, flat ring, tree, gossip).
Rates are Poisson; the member population is tracked so leaves/failures only
target currently joined members.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.rng import RandomStreams


class ChurnKind(enum.Enum):
    JOIN = "join"
    LEAVE = "leave"
    FAILURE = "failure"


@dataclass(frozen=True)
class ChurnEvent:
    """One churn event: a member joins, leaves or fails at an access proxy."""

    time: float
    kind: ChurnKind
    member: str
    ap: str


@dataclass
class ChurnWorkload:
    """Generator of churn event sequences.

    Parameters
    ----------
    ap_ids:
        Access proxies members can join at.
    join_rate:
        Expected joins per unit time.
    leave_rate, failure_rate:
        Expected departures per unit time *per joined member*.
    horizon:
        Length of the generated trace.
    seed:
        Seed for the ``"churn"`` random stream.
    """

    ap_ids: Sequence[str]
    join_rate: float = 0.5
    leave_rate: float = 0.001
    failure_rate: float = 0.0005
    horizon: float = 1000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.ap_ids:
            raise ValueError("churn workload needs at least one access proxy")
        if self.join_rate <= 0:
            raise ValueError(f"join_rate must be positive, got {self.join_rate}")
        for name, value in (("leave_rate", self.leave_rate), ("failure_rate", self.failure_rate)):
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")

    def generate(self) -> List[ChurnEvent]:
        """Generate the time-ordered churn trace."""
        rng = RandomStreams(self.seed).stream("churn")
        events: List[ChurnEvent] = []
        population: Dict[str, str] = {}  # member -> ap
        t = 0.0
        counter = 0
        while True:
            departure_rate = (self.leave_rate + self.failure_rate) * max(len(population), 0)
            total_rate = self.join_rate + departure_rate
            t += float(rng.exponential(1.0 / total_rate))
            if t > self.horizon:
                break
            if departure_rate > 0 and rng.random() < departure_rate / total_rate:
                member = sorted(population)[int(rng.integers(len(population)))]
                ap = population.pop(member)
                is_failure = rng.random() < self.failure_rate / (self.leave_rate + self.failure_rate) \
                    if (self.leave_rate + self.failure_rate) > 0 else False
                kind = ChurnKind.FAILURE if is_failure else ChurnKind.LEAVE
                events.append(ChurnEvent(time=t, kind=kind, member=member, ap=ap))
            else:
                member = f"churn-{self.seed}-{counter:06d}"
                counter += 1
                ap = self.ap_ids[int(rng.integers(len(self.ap_ids)))]
                population[member] = ap
                events.append(ChurnEvent(time=t, kind=ChurnKind.JOIN, member=member, ap=ap))
        return events

    @staticmethod
    def summarize(events: Sequence[ChurnEvent]) -> Dict[str, int]:
        """Event counts per kind."""
        counts = {kind.value: 0 for kind in ChurnKind}
        for event in events:
            counts[event.kind.value] += 1
        counts["total"] = len(events)
        return counts
