"""Scenario-matrix runner: {protocol} × {scenario} × {scale} × {loss}.

Sweeps the event-driven :class:`repro.sim.harness.ScenarioHarness` over

* **scenarios** — ``churn`` (Poisson join/leave/failure),
  ``handoff_storm`` (a mobility burst over an attached population),
  ``partition_merge`` (transient disconnections splitting a ring, then
  healing) and ``mobility_trace`` (a full attach/handoff/detach population
  trace);
* **scales** — 1 000 / 10 000 / 100 000 access proxies (the paper's regular
  hierarchies at r=10, h=3/4/5; any ``r**h`` with 2 ≤ r ≤ 16 works);
* **loss rates** — 0 / 1 / 5 % per-link message loss;
* **protocols** — ``rgb`` (the kernel through the harness) plus the
  baselines behind the :class:`repro.baselines.driver.MembershipProtocol`
  seam: ``flat_ring``, ``gossip`` and ``tree``.

RGB cells run the full event-driven harness (batched rounds, faults and
mobility at their simulated times); baseline cells replay the *same seeded
workload trace* sequentially through the protocol driver, which is also what
:func:`run_ablation_cell` does for every protocol — including RGB — when a
head-to-head per-change cost comparison is wanted
(``benchmarks/run_bench.py --ablation`` → ``BENCH_ablation.json``).

Every cell is fully seeded through :class:`repro.sim.rng.RandomStreams`, so
cells are independently reproducible, and emits one
:class:`repro.sim.stats.RunRecord` that :func:`repro.analysis.tables.render_matrix`
/ :func:`repro.analysis.tables.render_ablation` render.

CLI::

    PYTHONPATH=src python -m repro.workloads.matrix --sizes 1000 --events 24
    PYTHONPATH=src python -m repro.workloads.matrix --protocols rgb gossip tree
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.baselines.driver import (
    PROTOCOL_NAMES,
    BaseProtocolDriver,
    build_protocol,
    ring_shape_for_proxies as shape_for_proxies,
)
from repro.core.identifiers import clear_intern_tables
from repro.core.kernel import KERNEL_BACKENDS
from repro.sim.faults import FaultPlan
from repro.sim.harness import (
    HarnessConfig,
    ScenarioHarness,
    TopologySnapshot,
    build_topology_snapshot,
)
from repro.sim.mobility import AttachmentEvent, HandoffEvent, MobilityModel
from repro.sim.rng import RandomStreams
from repro.sim.stats import RunRecord
from repro.workloads.churn import ChurnKind, ChurnWorkload
from repro.workloads.handoffs import HandoffStorm
from repro.workloads.spec import FaultScript, ScenarioSpec, compile_spec, schedule_script

#: The original (non-adversarial) matrix scenarios.  Adversarial families
#: from :mod:`repro.workloads.families` register themselves as additional
#: scenarios; :func:`scenario_names` lists everything runnable.
SCENARIOS: Tuple[str, ...] = ("churn", "handoff_storm", "partition_merge", "mobility_trace")
SIZES: Tuple[int, ...] = (1_000, 10_000, 100_000)
LOSS_RATES: Tuple[float, ...] = (0.0, 0.01, 0.05)
PROTOCOLS: Tuple[str, ...] = PROTOCOL_NAMES


@dataclass(frozen=True)
class ScenarioDefinition:
    """One runnable scenario: how to schedule it on the RGB harness and how
    to express it as a protocol-neutral op list for the ablation replay.

    ``schedule(harness, cell, events)`` returns the scheduled event count (or
    ``(count, partition_counts)`` for scenarios that probe partitions);
    ``ops(cell, events, sites)`` returns :class:`WorkloadOp` records;
    ``record_sends`` asks the harness to log dispatch sends (replay-injection
    scenarios).
    """

    name: str
    schedule: Callable[[ScenarioHarness, "MatrixCell", int], object]
    ops: Callable[["MatrixCell", int, Sequence[str]], List["WorkloadOp"]]
    record_sends: bool = False


_SCENARIO_REGISTRY: Dict[str, ScenarioDefinition] = {}


def register_scenario(definition: ScenarioDefinition) -> ScenarioDefinition:
    """Register a scenario; later registrations with the same name win."""
    _SCENARIO_REGISTRY[definition.name] = definition
    return definition


def _compile_cell_script(cell: "MatrixCell", events: int) -> FaultScript:
    return compile_spec(
        ScenarioSpec(
            family=cell.scenario,
            num_proxies=cell.num_proxies,
            loss=cell.loss,
            seed=cell.seed,
            events=events,
        )
    ).script


def _family_definition(name: str, record_sends: bool) -> ScenarioDefinition:
    """Adapt a declarative scenario family to the matrix registry: compile
    the cell's spec to a fault script, then either schedule it on the
    harness or lower it to neutral ops — one code path per direction for
    *every* family."""

    def schedule(harness: ScenarioHarness, cell: "MatrixCell", events: int) -> int:
        return schedule_script(harness, _compile_cell_script(cell, events))

    def ops(cell: "MatrixCell", events: int, sites: Sequence[str]) -> List["WorkloadOp"]:
        return script_to_ops(_compile_cell_script(cell, events), sites)

    return ScenarioDefinition(name=name, schedule=schedule, ops=ops, record_sends=record_sends)


def _register_families() -> None:
    from repro.workloads import spec as spec_mod

    for name in spec_mod.available_families():
        if name not in _SCENARIO_REGISTRY:
            register_scenario(
                _family_definition(name, spec_mod.get_family(name).record_sends)
            )


def scenario_names() -> Tuple[str, ...]:
    """Every runnable scenario: the legacy four plus registered families."""
    _register_families()
    return tuple(sorted(_SCENARIO_REGISTRY))


def get_scenario(name: str) -> ScenarioDefinition:
    if name not in _SCENARIO_REGISTRY:
        _register_families()
    try:
        return _SCENARIO_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r} (available: "
            f"{', '.join(sorted(_SCENARIO_REGISTRY))})"
        ) from None


@dataclass(frozen=True)
class MatrixCell:
    """One cell of the scenario matrix.

    ``backend`` selects the kernel implementation for ``rgb`` cells
    (``"object"`` or ``"columnar"``).  It deliberately stays out of the
    cell's :class:`RunRecord` params: both backends produce bit-identical
    records (pinned by ``tests/test_columnar_backend.py``), so the
    fingerprint must not depend on which one ran.
    """

    scenario: str
    num_proxies: int
    loss: float
    seed: int = 0
    protocol: str = "rgb"
    backend: str = "object"

    def __post_init__(self) -> None:
        get_scenario(self.scenario)  # raises with the available-scenario list
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r} (have {PROTOCOLS})")
        if self.backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r} (have {KERNEL_BACKENDS})"
            )
        shape_for_proxies(self.num_proxies)  # validates early

    @property
    def label(self) -> str:
        base = (
            f"{self.protocol}/{self.scenario}/n={self.num_proxies}"
            f"/loss={self.loss:g}/seed={self.seed}"
        )
        if self.backend != "object":
            base += f"/backend={self.backend}"
        return base


@dataclass
class CellResult:
    """Outcome of one matrix cell."""

    cell: MatrixCell
    record: RunRecord
    wall_seconds: float
    workload_events: int
    dispatched_events: int
    converged: bool
    ring_agreement: bool
    membership: int

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.dispatched_events / self.wall_seconds


@contextlib.contextmanager
def _gc_paused() -> Iterator[None]:
    """Suspend the cyclic garbage collector for the duration of one cell.

    A cell run is allocation-heavy (one object burst per simulated message)
    but creates essentially no reference cycles, so the collector's periodic
    generational scans are pure overhead on the hot loop — measurably >10% of
    a 10k-proxy cell.  Reference counting still frees everything promptly;
    the deferred cycle pass runs in the ``gc.collect()`` on exit.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()
        gc.collect()


def _build_harness(
    cell: MatrixCell,
    trace_enabled: bool = False,
    snapshot: Optional[TopologySnapshot] = None,
    record_sends: bool = False,
) -> ScenarioHarness:
    ring_size, height = shape_for_proxies(cell.num_proxies)
    return ScenarioHarness(
        HarnessConfig(
            ring_size=ring_size,
            height=height,
            seed=cell.seed,
            loss=cell.loss,
            trace_enabled=trace_enabled,
            record_sends=record_sends,
            backend=cell.backend,
        ),
        snapshot=snapshot,
    )


class TopologySnapshotCache:
    """Process-local cache of frozen harness topologies, one per shape.

    A matrix sweep visits the same ``(ring_size, height)`` configuration for
    every loss-rate × scenario × seed cell; this cache builds it once,
    freezes it via pickle (:func:`repro.sim.harness.build_topology_snapshot`)
    and hands every cell its own rehydrated copy.  Only ``rgb`` cells consume
    snapshots — baseline drivers build their own (much cheaper) site state.
    See the snapshot docstring for the invalidation rules.
    """

    def __init__(self) -> None:
        self._snapshots: Dict[Tuple[int, int], TopologySnapshot] = {}

    def __len__(self) -> int:
        return len(self._snapshots)

    def for_shape(self, ring_size: int, height: int) -> TopologySnapshot:
        key = (ring_size, height)
        snapshot = self._snapshots.get(key)
        if snapshot is None:
            snapshot = build_topology_snapshot(ring_size, height)
            self._snapshots[key] = snapshot
        return snapshot

    def for_cell(self, cell: MatrixCell) -> Optional[TopologySnapshot]:
        """The cell's snapshot (building it on first use); None for baselines."""
        if cell.protocol != "rgb":
            return None
        ring_size, height = shape_for_proxies(cell.num_proxies)
        return self.for_shape(ring_size, height)


# ----------------------------------------------------------------------
# per-scenario workload wiring
# ----------------------------------------------------------------------


def _schedule_churn(harness: ScenarioHarness, cell: MatrixCell, events: int) -> int:
    workload = ChurnWorkload(
        ap_ids=harness.access_proxies(),
        join_rate=1.0,
        leave_rate=0.02,
        failure_rate=0.01,
        horizon=max(4.0 * events, 8.0),
        seed=cell.seed,
    )
    scheduled = 0
    for event in workload.generate():
        if scheduled >= events:
            break
        if event.kind is ChurnKind.JOIN:
            harness.schedule_join(event.time, event.ap, guid=event.member)
        elif event.kind is ChurnKind.LEAVE:
            harness.schedule_leave(event.time, event.member)
        else:
            harness.schedule_failure(event.time, event.member)
        scheduled += 1
    return scheduled


def _schedule_handoff_storm(harness: ScenarioHarness, cell: MatrixCell, events: int) -> int:
    aps = harness.access_proxies()
    population = min(max(4, events // 2), len(aps), 64)
    attachment = {f"hs-{i:04d}": aps[i % len(aps)] for i in range(population)}
    for index, (member, ap) in enumerate(attachment.items()):
        harness.schedule_join(0.5 * index, ap, guid=member)
    storm_start = 0.5 * population + 25.0
    storm = HandoffStorm(
        attachment=attachment,
        neighbor_map=harness.ring_neighbor_map(),
        handoffs=events,
        locality=0.8,
        duration=max(2.0 * events, 10.0),
        seed=cell.seed,
    )
    generated = storm.generate()
    for event in generated:
        harness.schedule_handoff(storm_start + event.time, event.member, event.to_ap)
    return population + len(generated)


def _schedule_partition_merge(
    harness: ScenarioHarness, cell: MatrixCell, events: int
) -> Tuple[int, List[int]]:
    """Split one bottom ring with ≥2 transient disconnections, then heal.

    Returns the scheduled event count and a list the partition counts are
    recorded into at the split and post-heal instants.
    """
    aps = harness.access_proxies()
    joins = min(max(4, events), len(aps), 48)
    for index in range(joins):
        harness.schedule_join(0.5 * index, aps[index % len(aps)], guid=f"pm-{index:04d}")
    victim_ring = harness.hierarchy.bottom_rings()[0]
    # Two *non-adjacent* members: a ring with two faults splits into separate
    # arcs (paper §5.2), which is what makes the partition count exceed one.
    # Rings smaller than 4 cannot split that way (any two members are
    # adjacent), so those shapes get a single disconnection — still a
    # disconnect/heal cycle, just without a guaranteed split.
    members = victim_ring.members
    if len(members) >= 4:
        victims = [members[0].value, members[2].value]
    else:
        victims = [members[0].value]
    split_at = 0.5 * joins + 40.0
    downtime = 120.0
    plan = FaultPlan()
    for victim in victims:
        plan.disconnect(victim, time=split_at, duration=downtime)
    harness.schedule_fault_plan(plan)
    # Joins captured elsewhere while the ring is split keep the rest of the
    # hierarchy moving; they must still converge globally after the heal.
    spare_aps = [ap for ap in aps if ap not in victims]
    for index in range(min(8, len(spare_aps))):
        harness.schedule_join(
            split_at + 10.0 + index, spare_aps[index], guid=f"pm-mid-{index:02d}"
        )
    partition_counts: List[int] = []
    harness.engine.schedule_at(
        split_at + downtime / 2.0,
        lambda _e: partition_counts.append(harness.partition_report().count),
        label="assess:split",
    )
    harness.engine.schedule_at(
        split_at + downtime + 60.0,
        lambda _e: partition_counts.append(harness.partition_report().count),
        label="assess:healed",
    )
    return joins + min(8, len(spare_aps)), partition_counts


def _schedule_mobility_trace(harness: ScenarioHarness, cell: MatrixCell, events: int) -> int:
    model = MobilityModel(
        ap_ids=harness.access_proxies(),
        streams=harness.streams,
        neighbor_map=harness.ring_neighbor_map(),
        mean_residency=30.0,
        mean_session=120.0,
        stream_name="mobility.matrix",
    )
    hosts = max(3, events // 6)
    trace = model.generate_population(
        num_hosts=hosts, arrival_rate=0.25, horizon=max(40.0 * hosts, 200.0)
    )
    return harness.schedule_mobility_trace(trace)


# ----------------------------------------------------------------------
# protocol-agnostic workload extraction (the ablation path)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadOp:
    """One protocol-neutral workload event, replayable through any driver.

    ``tier`` qualifies ``crash`` ops: 1 crashes the capture site itself,
    ``t > 1`` crashes its tier-``t`` ancestor (protocols without an internal
    hierarchy skip those, counted).
    """

    time: float
    kind: str  # join / leave / handoff / crash / inject_duplicate / inject_stale
    member: str = ""
    site: str = ""  # join origin, handoff destination, or crashed site
    tier: int = 1


def _block_neighbor_map(sites: Sequence[str], block: int) -> Dict[str, List[str]]:
    """Index-blocked adjacency mirroring the RGB bottom rings, so handoff
    locality is defined identically for every protocol."""
    out: Dict[str, List[str]] = {}
    for start in range(0, len(sites), block):
        chunk = list(sites[start : start + block])
        for site in chunk:
            out[site] = [s for s in chunk if s != site]
    return out


def _ops_churn(cell: MatrixCell, events: int, sites: Sequence[str]) -> List[WorkloadOp]:
    ops: List[WorkloadOp] = []
    workload = ChurnWorkload(
        ap_ids=list(sites),
        join_rate=1.0,
        leave_rate=0.02,
        failure_rate=0.01,
        horizon=max(4.0 * events, 8.0),
        seed=cell.seed,
    )
    for event in workload.generate()[:events]:
        if event.kind is ChurnKind.JOIN:
            ops.append(WorkloadOp(event.time, "join", event.member, event.ap))
        else:
            # Voluntary leave and member failure both remove the member;
            # every protocol pays one full removal propagation.
            ops.append(WorkloadOp(event.time, "leave", event.member))
    return ops


def _ops_handoff_storm(cell: MatrixCell, events: int, sites: Sequence[str]) -> List[WorkloadOp]:
    ring_size, _ = shape_for_proxies(cell.num_proxies)
    ops: List[WorkloadOp] = []
    population = min(max(4, events // 2), len(sites), 64)
    attachment = {f"hs-{i:04d}": sites[i % len(sites)] for i in range(population)}
    for index, (member, site) in enumerate(attachment.items()):
        ops.append(WorkloadOp(0.5 * index, "join", member, site))
    storm_start = 0.5 * population + 25.0
    storm = HandoffStorm(
        attachment=attachment,
        neighbor_map=_block_neighbor_map(sites, ring_size),
        handoffs=events,
        locality=0.8,
        duration=max(2.0 * events, 10.0),
        seed=cell.seed,
    )
    for event in storm.generate():
        ops.append(WorkloadOp(storm_start + event.time, "handoff", event.member, event.to_ap))
    return ops


def _ops_partition_merge(cell: MatrixCell, events: int, sites: Sequence[str]) -> List[WorkloadOp]:
    ops: List[WorkloadOp] = []
    joins = min(max(4, events), len(sites), 48)
    for index in range(joins):
        ops.append(WorkloadOp(0.5 * index, "join", f"pm-{index:04d}", sites[index % len(sites)]))
    # The toys have no transient-disconnection notion, so the generic
    # replay crashes two non-adjacent sites of the first block instead —
    # the same victims the harness path disconnects.
    victims = [sites[0], sites[2]] if len(sites) >= 4 else [sites[0]]
    split_at = 0.5 * joins + 40.0
    for victim in victims:
        ops.append(WorkloadOp(split_at, "crash", site=victim))
    spare = [s for s in sites if s not in victims]
    for index in range(min(8, len(spare))):
        ops.append(WorkloadOp(split_at + 10.0 + index, "join", f"pm-mid-{index:02d}", spare[index]))
    return ops


def _ops_mobility_trace(cell: MatrixCell, events: int, sites: Sequence[str]) -> List[WorkloadOp]:
    ring_size, _ = shape_for_proxies(cell.num_proxies)
    ops: List[WorkloadOp] = []
    model = MobilityModel(
        ap_ids=list(sites),
        streams=RandomStreams(cell.seed),
        neighbor_map=_block_neighbor_map(sites, ring_size),
        mean_residency=30.0,
        mean_session=120.0,
        stream_name="mobility.matrix",
    )
    hosts = max(3, events // 6)
    trace = model.generate_population(
        num_hosts=hosts, arrival_rate=0.25, horizon=max(40.0 * hosts, 200.0)
    )
    for event in trace.all_events():
        if isinstance(event, AttachmentEvent):
            kind = "join" if event.attach else "leave"
            ops.append(WorkloadOp(event.time, kind, event.host_id, event.ap_id))
        elif isinstance(event, HandoffEvent):
            ops.append(WorkloadOp(event.time, "handoff", event.host_id, event.to_ap))
    return ops


def script_to_ops(script: FaultScript, sites: Sequence[str]) -> List[WorkloadOp]:
    """Lower a compiled fault script to protocol-neutral workload ops.

    Site indices bind to the driver's site list; ``leave`` and ``failure``
    both lower to a removal (the churn convention); ``disconnect`` lowers to
    a crash (the partition-merge convention — the toys have no transient
    disconnections); interior crashes keep their tier for
    ``fail_internal``-capable drivers.
    """
    sites = list(sites)
    ops: List[WorkloadOp] = []
    for event in script.events:
        if event.kind == "join":
            ops.append(WorkloadOp(event.time, "join", event.member, sites[event.site]))
        elif event.kind in ("leave", "failure"):
            ops.append(WorkloadOp(event.time, "leave", event.member))
        elif event.kind == "handoff":
            ops.append(WorkloadOp(event.time, "handoff", event.member, sites[event.site]))
        elif event.kind == "crash":
            ops.append(WorkloadOp(event.time, "crash", site=sites[event.site], tier=event.tier))
        elif event.kind == "disconnect":
            ops.append(WorkloadOp(event.time, "crash", site=sites[event.site]))
        elif event.kind in ("inject_duplicate", "inject_stale"):
            ops.append(WorkloadOp(event.time, event.kind, event.member))
        else:  # pragma: no cover - ScriptEvent validates kinds
            raise ValueError(f"unknown script event kind {event.kind!r}")
    return ops


def ablation_workload(cell: MatrixCell, events: int, sites: Sequence[str]) -> List[WorkloadOp]:
    """The cell's seeded workload as a time-ordered, protocol-neutral op list.

    The generators draw by *index* into the site list, so two protocols with
    equally sized site populations replay structurally identical traces (same
    members, same site indices, same times) regardless of site naming.
    """
    ops = get_scenario(cell.scenario).ops(cell, events, list(sites))
    ops.sort(key=lambda op: op.time)
    return ops


# The legacy scenarios, registered with their original generators — their
# harness schedules and op lists are bit-identical to the pre-registry
# dispatch (pinned by the golden-trace and ablation golden tests).
register_scenario(ScenarioDefinition("churn", _schedule_churn, _ops_churn))
register_scenario(ScenarioDefinition("handoff_storm", _schedule_handoff_storm, _ops_handoff_storm))
register_scenario(
    ScenarioDefinition("partition_merge", _schedule_partition_merge, _ops_partition_merge)
)
register_scenario(
    ScenarioDefinition("mobility_trace", _schedule_mobility_trace, _ops_mobility_trace)
)


def replay_workload(driver: BaseProtocolDriver, ops: Sequence[WorkloadOp]) -> int:
    """Apply a neutral op list through a protocol driver, in time order."""
    applied = 0
    for op in ops:
        if op.kind == "join":
            report = driver.join(op.site, op.member)
        elif op.kind == "leave":
            report = driver.leave(op.member)
        elif op.kind == "handoff":
            report = driver.handoff(op.member, op.site)
        elif op.kind == "crash":
            if op.tier > 1:
                report = driver.fail_internal(op.site, op.tier)
            else:
                report = driver.fail_site(op.site)
        elif op.kind == "inject_duplicate":
            report = driver.inject_duplicate(op.member)
        elif op.kind == "inject_stale":
            report = driver.inject_stale(op.member)
        else:
            raise ValueError(f"unknown workload op kind {op.kind!r}")
        if report.applied:
            applied += 1
    return applied


def run_ablation_cell(
    cell: MatrixCell, events: int = 24, script: Optional[FaultScript] = None
) -> CellResult:
    """Replay the cell's workload through its protocol driver (any protocol).

    Unlike the harness path, changes apply *sequentially* (each propagates to
    quiescence before the next), so per-change hop/message/round costs are
    well-defined and directly comparable across protocols.  ``script``
    replays a recorded fault script instead of regenerating the workload;
    compiling the cell's spec fresh produces the identical op list, which is
    what makes recorded scripts replay to bit-identical records.
    """
    if events < 1:
        raise ValueError(f"events must be >= 1, got {events}")
    with _gc_paused():
        build_start = time.perf_counter()
        driver = build_protocol(cell.protocol, cell.num_proxies, loss=cell.loss, seed=cell.seed)
        if script is not None:
            ops = script_to_ops(script, driver.sites)
            ops.sort(key=lambda op: op.time)
        else:
            ops = ablation_workload(cell, events, driver.sites)
        # Wall time measures the replay only: construction cost (hierarchy /
        # tree build) would otherwise drown 24 changes at 10k proxies and the
        # column would compare setup, not protocol cost.
        start = time.perf_counter()
        build_seconds = start - build_start
        replay_workload(driver, ops)
        agreement = driver.global_agreement()
        wall = time.perf_counter() - start
    totals = driver.totals

    values: Dict[str, float] = dict(totals.as_values())
    values.update(
        {
            "wall_seconds": wall,
            "build_seconds": build_seconds,
            "workload_events": float(len(ops)),
            "converged": 1.0 if agreement else 0.0,
            "ring_agreement": 1.0 if agreement else 0.0,
            "membership": float(len(driver.members())),
        }
    )
    record = RunRecord(
        name=f"ablation.{cell.scenario}",
        params={
            "scenario": cell.scenario,
            "protocol": cell.protocol,
            "proxies": cell.num_proxies,
            "loss": cell.loss,
            "seed": cell.seed,
        },
        values=values,
        counters=dict(
            getattr(driver, "harness", None).counter_values()
            if cell.protocol == "rgb"
            else {}
        ),
    )
    return CellResult(
        cell=cell,
        record=record,
        wall_seconds=wall,
        workload_events=len(ops),
        dispatched_events=(
            driver.harness.engine.dispatched_events if cell.protocol == "rgb" else totals.messages
        ),
        converged=agreement,
        ring_agreement=agreement,
        membership=len(driver.members()),
    )


# ----------------------------------------------------------------------
# cell execution
# ----------------------------------------------------------------------


def run_matrix_cell(
    cell: MatrixCell,
    events: int = 24,
    trace_enabled: bool = False,
    snapshot: Optional[TopologySnapshot] = None,
    script: Optional[FaultScript] = None,
) -> CellResult:
    """Run one matrix cell.

    ``rgb`` cells drive the full event-driven harness (the original matrix
    semantics); baseline-protocol cells replay the same seeded workload
    through the :class:`repro.baselines.driver.MembershipProtocol` seam.
    With ``snapshot`` the harness rehydrates a pre-built topology instead of
    rebuilding it; the cell's record is bit-identical either way.  With
    ``script`` a recorded fault script is replayed instead of regenerating
    the scenario's workload.
    """
    if cell.protocol != "rgb":
        return run_ablation_cell(cell, events=events, script=script)
    if events < 1:
        raise ValueError(f"events must be >= 1, got {events}")
    definition = get_scenario(cell.scenario)
    with _gc_paused():
        start = time.perf_counter()
        harness = _build_harness(
            cell,
            trace_enabled=trace_enabled,
            snapshot=snapshot,
            record_sends=definition.record_sends,
        )
        partition_counts: List[int] = []
        if script is not None:
            scheduled = schedule_script(harness, script)
        else:
            outcome_sched = definition.schedule(harness, cell, events)
            if isinstance(outcome_sched, tuple):
                scheduled, partition_counts = outcome_sched
            else:
                scheduled = int(outcome_sched)
        outcome = harness.run()
        wall = time.perf_counter() - start

    extra_values: Dict[str, float] = {
        "wall_seconds": wall,
        "workload_events": float(scheduled),
        "events_per_second": (outcome.dispatched_events / wall) if wall > 0 else 0.0,
        "converged": 1.0 if outcome.converged else 0.0,
        "ring_agreement": 1.0 if outcome.ring_agreement else 0.0,
    }
    if partition_counts:
        extra_values["partitions_split"] = float(partition_counts[0])
        extra_values["partitions_healed"] = float(partition_counts[-1])
    record = harness.run_record(
        f"matrix.{cell.scenario}",
        extra_values=extra_values,
        scenario=cell.scenario,
    )
    return CellResult(
        cell=cell,
        record=record,
        wall_seconds=wall,
        workload_events=scheduled,
        dispatched_events=outcome.dispatched_events,
        converged=outcome.converged,
        ring_agreement=outcome.ring_agreement,
        membership=outcome.membership,
    )


def replay_script(
    script: FaultScript, protocol: str = "rgb", backend: str = "object"
) -> CellResult:
    """Replay a recorded fault script through any protocol.

    The replay contract: the cell is reconstructed from the script's
    provenance (the full source spec rides inside), the recorded events are
    scheduled verbatim — no family RNG stream is touched — and the resulting
    :class:`repro.sim.stats.RunRecord` is bit-identical to the run that
    produced the script (``repro.workloads.parallel.record_fingerprint``
    pins this).
    """
    source = ScenarioSpec.from_json(script.provenance["spec"])
    cell = MatrixCell(
        scenario=source.family,
        num_proxies=source.num_proxies,
        loss=source.loss,
        seed=source.seed,
        protocol=protocol,
        backend=backend,
    )
    return run_matrix_cell(cell, events=source.events, script=script)


@dataclass
class ScenarioMatrix:
    """The full sweep; every future scenario or protocol PR composes against this."""

    sizes: Sequence[int] = (1_000,)
    losses: Sequence[float] = LOSS_RATES
    scenarios: Sequence[str] = SCENARIOS
    protocols: Sequence[str] = ("rgb",)
    seed: int = 0
    events_per_cell: int = 24
    backend: str = "object"

    def cells(self) -> List[MatrixCell]:
        return [
            MatrixCell(
                scenario=scenario, num_proxies=size, loss=loss, seed=self.seed,
                protocol=protocol, backend=self.backend,
            )
            for protocol in self.protocols
            for scenario in self.scenarios
            for size in self.sizes
            for loss in self.losses
        ]

    def run(self, progress: bool = False) -> List[CellResult]:
        results = []
        snapshots = TopologySnapshotCache()
        for cell in self.cells():
            result = run_matrix_cell(
                cell, events=self.events_per_cell, snapshot=snapshots.for_cell(cell)
            )
            if progress:
                status = "ok" if (result.converged and result.ring_agreement) else "INCOMPLETE"
                print(
                    f"{cell.label:<52} {result.wall_seconds:7.2f}s "
                    f"{result.dispatched_events:>8} events  {status}",
                    flush=True,
                )
            results.append(result)
            # Identifiers intern per-process; without this a long sweep pins
            # every cell's node/GUID strings for the lifetime of the run.
            # Results hold only plain strings/floats, and snapshot payloads
            # re-intern on rehydration, so the reset is invisible to output.
            clear_intern_tables()
        return results


@dataclass
class AblationSweep:
    """Head-to-head sweep: every protocol replays the same workload traces.

    All protocols — RGB included — run through the sequential driver replay
    (:func:`run_ablation_cell`), so hops/messages/rounds per change are
    directly comparable; ``benchmarks/run_bench.py --ablation`` archives the
    result in ``BENCH_ablation.json``.
    """

    sizes: Sequence[int] = (1_000, 10_000)
    losses: Sequence[float] = (0.0, 0.01)
    scenarios: Sequence[str] = ("churn",)
    protocols: Sequence[str] = PROTOCOLS
    seed: int = 0
    events_per_cell: int = 24

    def cells(self) -> List[MatrixCell]:
        return [
            MatrixCell(
                scenario=scenario, num_proxies=size, loss=loss, seed=self.seed,
                protocol=protocol,
            )
            for scenario in self.scenarios
            for size in self.sizes
            for loss in self.losses
            for protocol in self.protocols
        ]

    def run(self, progress: bool = False) -> List[CellResult]:
        results = []
        for cell in self.cells():
            result = run_ablation_cell(cell, events=self.events_per_cell)
            if progress:
                status = "ok" if result.converged else "DISAGREE"
                print(
                    f"{cell.label:<52} {result.wall_seconds:7.2f}s "
                    f"hops/chg={result.record.value('hops_per_change'):>8.1f} "
                    f"msgs/chg={result.record.value('messages_per_change'):>9.1f}  {status}",
                    flush=True,
                )
            results.append(result)
            clear_intern_tables()  # same per-cell reset as ScenarioMatrix.run
        return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Run the RGB scenario matrix")
    parser.add_argument("--sizes", type=int, nargs="+", default=[1_000])
    parser.add_argument("--losses", type=float, nargs="+", default=list(LOSS_RATES))
    parser.add_argument(
        "--scenarios", nargs="+", default=list(SCENARIOS),
        help=f"scenarios to run (legacy: {', '.join(SCENARIOS)}; "
        "plus any registered adversarial family — see scenario_names())",
    )
    parser.add_argument(
        "--protocols", nargs="+", default=["rgb"], choices=PROTOCOLS,
        help="membership protocols to drive through the matrix",
    )
    parser.add_argument("--events", type=int, default=24, help="workload events per cell")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend", choices=list(KERNEL_BACKENDS), default="object",
        help="kernel backend for rgb cells (records are backend-independent)",
    )
    parser.add_argument("--out", type=str, default=None, help="write records as JSON")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (results are bit-identical to --jobs 1)",
    )
    args = parser.parse_args(argv)

    matrix = ScenarioMatrix(
        sizes=args.sizes,
        losses=args.losses,
        scenarios=args.scenarios,
        protocols=args.protocols,
        seed=args.seed,
        events_per_cell=args.events,
        backend=args.backend,
    )
    if args.jobs > 1:
        from repro.workloads.parallel import run_matrix as run_matrix_parallel

        report = run_matrix_parallel(matrix, jobs=args.jobs, progress=True)
        report.raise_if_failed()
        results = report.results
    else:
        results = matrix.run(progress=True)

    from repro.analysis.tables import render_ablation, render_matrix

    print()
    rgb_records = [r.record for r in results if r.cell.protocol == "rgb"]
    baseline_records = [r.record for r in results if r.cell.protocol != "rgb"]
    if rgb_records:
        print(render_matrix(rgb_records))
    if baseline_records:
        if rgb_records:
            print()
        print(render_ablation(baseline_records))
    if args.out:
        payload = [r.record.to_json() for r in results]
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    failures = [r for r in results if not (r.converged and r.ring_agreement)]
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
