"""Scenario-matrix runner: {scenario} × {scale} × {loss} over the harness.

Sweeps the event-driven :class:`repro.sim.harness.ScenarioHarness` over

* **scenarios** — ``churn`` (Poisson join/leave/failure),
  ``handoff_storm`` (a mobility burst over an attached population),
  ``partition_merge`` (transient disconnections splitting a ring, then
  healing) and ``mobility_trace`` (a full attach/handoff/detach population
  trace);
* **scales** — 1 000 / 10 000 / 100 000 access proxies (the paper's regular
  hierarchies at r=10, h=3/4/5; any ``r**h`` with 2 ≤ r ≤ 16 works);
* **loss rates** — 0 / 1 / 5 % per-link message loss.

Every cell is fully seeded through :class:`repro.sim.rng.RandomStreams`, so
cells are independently reproducible, and emits one
:class:`repro.sim.stats.RunRecord` that :func:`repro.analysis.tables.render_matrix`
renders and ``benchmarks/run_bench.py --matrix`` archives in
``BENCH_matrix.json``.

CLI::

    PYTHONPATH=src python -m repro.workloads.matrix --sizes 1000 --events 24
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.faults import FaultPlan
from repro.sim.harness import HarnessConfig, ScenarioHarness
from repro.sim.mobility import MobilityModel
from repro.sim.stats import RunRecord
from repro.workloads.churn import ChurnKind, ChurnWorkload
from repro.workloads.handoffs import HandoffStorm

SCENARIOS: Tuple[str, ...] = ("churn", "handoff_storm", "partition_merge", "mobility_trace")
SIZES: Tuple[int, ...] = (1_000, 10_000, 100_000)
LOSS_RATES: Tuple[float, ...] = (0.0, 0.01, 0.05)


def shape_for_proxies(num_proxies: int) -> Tuple[int, int]:
    """``(ring_size, height)`` of the regular hierarchy with ``num_proxies`` APs.

    Prefers the shallowest hierarchy whose ring size stays within the paper's
    practical range (2–16): 1 000 → (10, 3), 10 000 → (10, 4),
    100 000 → (10, 5); small test sizes like 16 → (4, 2) also resolve.
    """
    for height in range(2, 7):
        base = round(num_proxies ** (1.0 / height))
        for ring_size in (base - 1, base, base + 1):
            if 2 <= ring_size <= 16 and ring_size**height == num_proxies:
                return ring_size, height
    raise ValueError(
        f"no regular hierarchy shape with 2 <= r <= 16 yields {num_proxies} proxies"
    )


@dataclass(frozen=True)
class MatrixCell:
    """One cell of the scenario matrix."""

    scenario: str
    num_proxies: int
    loss: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r} (have {SCENARIOS})")
        shape_for_proxies(self.num_proxies)  # validates early

    @property
    def label(self) -> str:
        return f"{self.scenario}/n={self.num_proxies}/loss={self.loss:g}/seed={self.seed}"


@dataclass
class CellResult:
    """Outcome of one matrix cell."""

    cell: MatrixCell
    record: RunRecord
    wall_seconds: float
    workload_events: int
    dispatched_events: int
    converged: bool
    ring_agreement: bool
    membership: int

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.dispatched_events / self.wall_seconds


def _build_harness(cell: MatrixCell, trace_enabled: bool = False) -> ScenarioHarness:
    ring_size, height = shape_for_proxies(cell.num_proxies)
    return ScenarioHarness(
        HarnessConfig(
            ring_size=ring_size,
            height=height,
            seed=cell.seed,
            loss=cell.loss,
            trace_enabled=trace_enabled,
        )
    )


# ----------------------------------------------------------------------
# per-scenario workload wiring
# ----------------------------------------------------------------------


def _schedule_churn(harness: ScenarioHarness, cell: MatrixCell, events: int) -> int:
    workload = ChurnWorkload(
        ap_ids=harness.access_proxies(),
        join_rate=1.0,
        leave_rate=0.02,
        failure_rate=0.01,
        horizon=max(4.0 * events, 8.0),
        seed=cell.seed,
    )
    scheduled = 0
    for event in workload.generate():
        if scheduled >= events:
            break
        if event.kind is ChurnKind.JOIN:
            harness.schedule_join(event.time, event.ap, guid=event.member)
        elif event.kind is ChurnKind.LEAVE:
            harness.schedule_leave(event.time, event.member)
        else:
            harness.schedule_failure(event.time, event.member)
        scheduled += 1
    return scheduled


def _schedule_handoff_storm(harness: ScenarioHarness, cell: MatrixCell, events: int) -> int:
    aps = harness.access_proxies()
    population = min(max(4, events // 2), len(aps), 64)
    attachment = {f"hs-{i:04d}": aps[i % len(aps)] for i in range(population)}
    for index, (member, ap) in enumerate(attachment.items()):
        harness.schedule_join(0.5 * index, ap, guid=member)
    storm_start = 0.5 * population + 25.0
    storm = HandoffStorm(
        attachment=attachment,
        neighbor_map=harness.ring_neighbor_map(),
        handoffs=events,
        locality=0.8,
        duration=max(2.0 * events, 10.0),
        seed=cell.seed,
    )
    generated = storm.generate()
    for event in generated:
        harness.schedule_handoff(storm_start + event.time, event.member, event.to_ap)
    return population + len(generated)


def _schedule_partition_merge(
    harness: ScenarioHarness, cell: MatrixCell, events: int
) -> Tuple[int, List[int]]:
    """Split one bottom ring with ≥2 transient disconnections, then heal.

    Returns the scheduled event count and a list the partition counts are
    recorded into at the split and post-heal instants.
    """
    aps = harness.access_proxies()
    joins = min(max(4, events), len(aps), 48)
    for index in range(joins):
        harness.schedule_join(0.5 * index, aps[index % len(aps)], guid=f"pm-{index:04d}")
    victim_ring = harness.hierarchy.bottom_rings()[0]
    # Two *non-adjacent* members: a ring with two faults splits into separate
    # arcs (paper §5.2), which is what makes the partition count exceed one.
    # Rings smaller than 4 cannot split that way (any two members are
    # adjacent), so those shapes get a single disconnection — still a
    # disconnect/heal cycle, just without a guaranteed split.
    members = victim_ring.members
    if len(members) >= 4:
        victims = [members[0].value, members[2].value]
    else:
        victims = [members[0].value]
    split_at = 0.5 * joins + 40.0
    downtime = 120.0
    plan = FaultPlan()
    for victim in victims:
        plan.disconnect(victim, time=split_at, duration=downtime)
    harness.schedule_fault_plan(plan)
    # Joins captured elsewhere while the ring is split keep the rest of the
    # hierarchy moving; they must still converge globally after the heal.
    spare_aps = [ap for ap in aps if ap not in victims]
    for index in range(min(8, len(spare_aps))):
        harness.schedule_join(
            split_at + 10.0 + index, spare_aps[index], guid=f"pm-mid-{index:02d}"
        )
    partition_counts: List[int] = []
    harness.engine.schedule_at(
        split_at + downtime / 2.0,
        lambda _e: partition_counts.append(harness.partition_report().count),
        label="assess:split",
    )
    harness.engine.schedule_at(
        split_at + downtime + 60.0,
        lambda _e: partition_counts.append(harness.partition_report().count),
        label="assess:healed",
    )
    return joins + min(8, len(spare_aps)), partition_counts


def _schedule_mobility_trace(harness: ScenarioHarness, cell: MatrixCell, events: int) -> int:
    model = MobilityModel(
        ap_ids=harness.access_proxies(),
        streams=harness.streams,
        neighbor_map=harness.ring_neighbor_map(),
        mean_residency=30.0,
        mean_session=120.0,
        stream_name="mobility.matrix",
    )
    hosts = max(3, events // 6)
    trace = model.generate_population(
        num_hosts=hosts, arrival_rate=0.25, horizon=max(40.0 * hosts, 200.0)
    )
    return harness.schedule_mobility_trace(trace)


# ----------------------------------------------------------------------
# cell execution
# ----------------------------------------------------------------------


def run_matrix_cell(
    cell: MatrixCell, events: int = 24, trace_enabled: bool = False
) -> CellResult:
    """Build a harness for ``cell``, schedule its workload and run it dry."""
    if events < 1:
        raise ValueError(f"events must be >= 1, got {events}")
    start = time.perf_counter()
    harness = _build_harness(cell, trace_enabled=trace_enabled)
    partition_counts: List[int] = []
    if cell.scenario == "churn":
        scheduled = _schedule_churn(harness, cell, events)
    elif cell.scenario == "handoff_storm":
        scheduled = _schedule_handoff_storm(harness, cell, events)
    elif cell.scenario == "partition_merge":
        scheduled, partition_counts = _schedule_partition_merge(harness, cell, events)
    else:
        scheduled = _schedule_mobility_trace(harness, cell, events)
    outcome = harness.run()
    wall = time.perf_counter() - start

    extra_values: Dict[str, float] = {
        "wall_seconds": wall,
        "workload_events": float(scheduled),
        "events_per_second": (outcome.dispatched_events / wall) if wall > 0 else 0.0,
        "converged": 1.0 if outcome.converged else 0.0,
        "ring_agreement": 1.0 if outcome.ring_agreement else 0.0,
    }
    if partition_counts:
        extra_values["partitions_split"] = float(partition_counts[0])
        extra_values["partitions_healed"] = float(partition_counts[-1])
    record = harness.run_record(
        f"matrix.{cell.scenario}",
        extra_values=extra_values,
        scenario=cell.scenario,
    )
    return CellResult(
        cell=cell,
        record=record,
        wall_seconds=wall,
        workload_events=scheduled,
        dispatched_events=outcome.dispatched_events,
        converged=outcome.converged,
        ring_agreement=outcome.ring_agreement,
        membership=outcome.membership,
    )


@dataclass
class ScenarioMatrix:
    """The full sweep; every future scenario PR composes against this."""

    sizes: Sequence[int] = (1_000,)
    losses: Sequence[float] = LOSS_RATES
    scenarios: Sequence[str] = SCENARIOS
    seed: int = 0
    events_per_cell: int = 24

    def cells(self) -> List[MatrixCell]:
        return [
            MatrixCell(scenario=scenario, num_proxies=size, loss=loss, seed=self.seed)
            for scenario in self.scenarios
            for size in self.sizes
            for loss in self.losses
        ]

    def run(self, progress: bool = False) -> List[CellResult]:
        results = []
        for cell in self.cells():
            result = run_matrix_cell(cell, events=self.events_per_cell)
            if progress:
                status = "ok" if (result.converged and result.ring_agreement) else "INCOMPLETE"
                print(
                    f"{cell.label:<48} {result.wall_seconds:7.2f}s "
                    f"{result.dispatched_events:>8} events  {status}",
                    flush=True,
                )
            results.append(result)
        return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Run the RGB scenario matrix")
    parser.add_argument("--sizes", type=int, nargs="+", default=[1_000])
    parser.add_argument("--losses", type=float, nargs="+", default=list(LOSS_RATES))
    parser.add_argument("--scenarios", nargs="+", default=list(SCENARIOS), choices=SCENARIOS)
    parser.add_argument("--events", type=int, default=24, help="workload events per cell")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None, help="write records as JSON")
    args = parser.parse_args(argv)

    matrix = ScenarioMatrix(
        sizes=args.sizes,
        losses=args.losses,
        scenarios=args.scenarios,
        seed=args.seed,
        events_per_cell=args.events,
    )
    results = matrix.run(progress=True)

    from repro.analysis.tables import render_matrix

    print()
    print(render_matrix([r.record for r in results]))
    if args.out:
        payload = [r.record.to_json() for r in results]
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    failures = [r for r in results if not (r.converged and r.ring_agreement)]
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
