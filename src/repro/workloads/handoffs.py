"""Handoff storms: bursts of mobility over an attached member population.

The paper motivates RGB with the trend towards smaller wireless cells and
therefore more frequent handoffs.  A :class:`HandoffStorm` takes a member →
access-proxy attachment map and generates a burst of handoff events, biased
towards *neighbouring* proxies (same logical ring) with probability
``locality`` — the regime where RGB's ``ListOfNeighborMembers`` fast path
pays off — and towards arbitrary remote proxies otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class HandoffStormEvent:
    """One handoff in the storm."""

    time: float
    member: str
    from_ap: str
    to_ap: str
    local: bool  # True when the destination is a ring neighbour of the origin


@dataclass
class HandoffStorm:
    """Generator of handoff bursts.

    Parameters
    ----------
    attachment:
        Current member → access proxy attachment.
    neighbor_map:
        Access proxy → neighbouring proxies (typically: other members of its
        logical ring).
    handoffs:
        Number of handoff events to generate.
    locality:
        Probability that a handoff targets a neighbouring proxy.
    duration:
        Storm duration; event times are uniform over it.
    """

    attachment: Mapping[str, str]
    neighbor_map: Mapping[str, Sequence[str]]
    handoffs: int = 100
    locality: float = 0.8
    duration: float = 100.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.attachment:
            raise ValueError("handoff storm needs at least one attached member")
        if self.handoffs < 1:
            raise ValueError(f"handoffs must be >= 1, got {self.handoffs}")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError(f"locality must be in [0, 1], got {self.locality}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    def generate(self) -> List[HandoffStormEvent]:
        """Generate the storm, tracking attachment as members move."""
        rng = RandomStreams(self.seed).stream("handoff-storm")
        attachment: Dict[str, str] = dict(self.attachment)
        all_aps = sorted({ap for ap in attachment.values()} | set(self.neighbor_map.keys()))
        members = sorted(attachment)
        events: List[HandoffStormEvent] = []
        times = sorted(float(rng.uniform(0.0, self.duration)) for _ in range(self.handoffs))
        for time in times:
            member = members[int(rng.integers(len(members)))]
            current = attachment[member]
            neighbors = [ap for ap in self.neighbor_map.get(current, []) if ap != current]
            go_local = bool(neighbors) and rng.random() < self.locality
            if go_local:
                destination = neighbors[int(rng.integers(len(neighbors)))]
            else:
                remote = [ap for ap in all_aps if ap != current and ap not in neighbors]
                candidates = remote if remote else [ap for ap in all_aps if ap != current]
                if not candidates:
                    continue
                destination = candidates[int(rng.integers(len(candidates)))]
            events.append(
                HandoffStormEvent(
                    time=time,
                    member=member,
                    from_ap=current,
                    to_ap=destination,
                    local=destination in neighbors,
                )
            )
            attachment[member] = destination
        return events

    @staticmethod
    def locality_ratio(events: Sequence[HandoffStormEvent]) -> float:
        """Fraction of handoffs that stayed within the origin's neighbourhood."""
        if not events:
            return 0.0
        return sum(1 for e in events if e.local) / len(events)
