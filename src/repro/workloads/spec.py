"""Declarative scenario specs compiled to replayable fault scripts.

A :class:`ScenarioSpec` describes one adversarial scenario as *plain data*:
the topology shape (a proxy count resolving to the paper's regular ``r**h``
hierarchy), a master seed, a loss rate, a size knob and a family-specific
parameter dict.  An ordered **pass pipeline** (:data:`PASS_PIPELINE`,
modelled on FireSim's ``topology_with_passes``: topology as data, transformed
by passes) compiles the spec into a :class:`FaultScript` — a timestamped,
JSON-serialisable event list with RNG-substream provenance.  All randomness
happens at *compile* time, drawn from named
:class:`repro.sim.rng.RandomStreams` substreams recorded in the script's
provenance; running a compiled script draws nothing from the family streams,
so a recorded script replays bit-identically (the STS model: fault scripts
are reconstructable artifacts, not side effects).

Scenario families (:mod:`repro.workloads.families`) subclass
:class:`ScenarioFamily` and register themselves; the scenario matrix
(:mod:`repro.workloads.matrix`) exposes every registered family as a matrix
scenario, runnable through the event-driven RGB harness *and* — via the
protocol-neutral op replay — through every baseline behind the
:class:`repro.baselines.driver.MembershipProtocol` seam.

Script events reference capture sites **by index** into the run's site list,
never by name, so one compiled script replays across protocols whose sites
are named differently (RGB node ids, ``site-00000`` toys, tree leaves).
Events the target protocol cannot express (``crash`` with ``tier > 1`` on a
hierarchy-free baseline) are skipped *and counted*, never silently dropped.

CLI::

    PYTHONPATH=src python -m repro.workloads.spec --list
    PYTHONPATH=src python -m repro.workloads.spec --family flash_crowd \\
        --proxies 16 --events 8 --out flash_crowd.script.json
    PYTHONPATH=src python -m repro.workloads.spec --run flash_crowd.script.json \\
        --protocol gossip
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.driver import ring_shape_for_proxies
from repro.sim.rng import RandomStreams

#: Event kinds a fault script may contain.  ``join``/``leave``/``failure``/
#: ``handoff`` are workload events; ``crash``/``disconnect`` are fault events
#: (``crash`` with ``tier > 1`` targets the tier-``tier`` ancestor of AP
#: ``site`` — only hierarchical protocols can honour it); ``inject_duplicate``
#: and ``inject_stale`` re-deliver a member's recorded propagation message at
#: the dispatch seam (most recent / original message respectively).
EVENT_KINDS: Tuple[str, ...] = (
    "join",
    "leave",
    "failure",
    "handoff",
    "crash",
    "disconnect",
    "inject_duplicate",
    "inject_stale",
)

_SCRIPT_VERSION = 1


class SpecError(ValueError):
    """Raised for invalid scenario specs or fault scripts."""


@dataclass(frozen=True)
class ScriptEvent:
    """One timestamped event of a compiled fault script (pure data).

    ``site`` is an *index* into the run's capture-site list (-1 when the
    event has no site); ``tier`` qualifies ``crash`` events (1 = the AP
    itself, ``t`` > 1 = its tier-``t`` ancestor in the ring hierarchy);
    ``duration`` qualifies ``disconnect`` events.
    """

    time: float
    kind: str
    member: str = ""
    site: int = -1
    tier: int = 1
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise SpecError(f"unknown script event kind {self.kind!r} (have {EVENT_KINDS})")
        if not math.isfinite(self.time) or self.time < 0:
            raise SpecError(f"event time must be finite and >= 0, got {self.time}")
        if self.tier < 1:
            raise SpecError(f"event tier must be >= 1, got {self.tier}")
        if self.kind in ("join", "handoff") and self.site < 0:
            raise SpecError(f"{self.kind} event needs a site index")
        if self.kind in ("join", "leave", "failure", "handoff") and not self.member:
            raise SpecError(f"{self.kind} event needs a member id")
        if self.kind in ("inject_duplicate", "inject_stale") and not self.member:
            raise SpecError(f"{self.kind} event needs a member id")

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {"time": float(self.time), "kind": self.kind}
        if self.member:
            out["member"] = self.member
        if self.site >= 0:
            out["site"] = int(self.site)
        if self.tier != 1:
            out["tier"] = int(self.tier)
        if self.duration:
            out["duration"] = float(self.duration)
        return out

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ScriptEvent":
        return cls(
            time=float(data["time"]),
            kind=str(data["kind"]),
            member=str(data.get("member", "")),
            site=int(data.get("site", -1)),
            tier=int(data.get("tier", 1)),
            duration=float(data.get("duration", 0.0)),
        )


@dataclass(frozen=True)
class FaultScript:
    """A compiled, replayable event list with RNG-substream provenance.

    ``provenance`` records everything needed to reproduce the run: the full
    source spec, the resolved family parameters, the hierarchy shape and the
    exact named RNG substreams the compiler drew from.  Replaying the script
    (:func:`schedule_script` / the matrix replay) consumes only the event
    *data* — no family stream is touched at run time — which is what makes a
    recorded script reproduce a bit-identical run fingerprint.
    """

    events: Tuple[ScriptEvent, ...]
    provenance: Mapping[str, object]

    @property
    def family(self) -> str:
        return str(self.provenance.get("family", ""))

    @property
    def num_proxies(self) -> int:
        return int(self.provenance.get("num_proxies", 0))

    def to_json(self) -> Dict[str, object]:
        return {
            "version": _SCRIPT_VERSION,
            "provenance": _plain(self.provenance),
            "events": [event.to_json() for event in self.events],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "FaultScript":
        version = int(data.get("version", 0))
        if version != _SCRIPT_VERSION:
            raise SpecError(f"unsupported fault-script version {version}")
        return cls(
            events=tuple(ScriptEvent.from_json(e) for e in data["events"]),
            provenance=dict(data.get("provenance", {})),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def loads(cls, text: str) -> "FaultScript":
        return cls.from_json(json.loads(text))


def _plain(value: object) -> object:
    """Recursively coerce numpy scalars etc. to JSON-native types."""
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One adversarial scenario as plain JSON-serialisable data."""

    family: str
    num_proxies: int = 16
    loss: float = 0.0
    seed: int = 0
    events: int = 24
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.family:
            raise SpecError("spec needs a family name")
        if self.events < 1:
            raise SpecError(f"events must be >= 1, got {self.events}")
        if not 0.0 <= self.loss < 1.0:
            raise SpecError(f"loss must be in [0, 1), got {self.loss}")
        ring_shape_for_proxies(self.num_proxies)  # validates the shape early
        object.__setattr__(self, "params", dict(self.params))

    def to_json(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "num_proxies": int(self.num_proxies),
            "loss": float(self.loss),
            "seed": int(self.seed),
            "events": int(self.events),
            "params": _plain(dict(self.params)),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        return cls(
            family=str(data["family"]),
            num_proxies=int(data.get("num_proxies", 16)),
            loss=float(data.get("loss", 0.0)),
            seed=int(data.get("seed", 0)),
            events=int(data.get("events", 24)),
            params=dict(data.get("params", {})),
        )


# ----------------------------------------------------------------------
# family registry
# ----------------------------------------------------------------------


class ScenarioFamily:
    """Base class for adversarial scenario families.

    A family contributes events to the compile context in up to three passes
    (workload, faults, injections); each hook is optional.  All randomness
    must go through :meth:`CompileContext.stream` so the substream names land
    in the script's provenance.
    """

    name: str = ""
    title: str = ""
    #: Tunable knobs and their defaults; ``spec.params`` may override any
    #: subset, unknown keys are a compile error.
    defaults: Mapping[str, object] = {}
    #: True when the family needs the harness to record dispatch sends
    #: (duplicate/stale replay injection).
    record_sends: bool = False

    def build_workload(self, ctx: "CompileContext") -> None:  # pragma: no cover
        return None

    def build_faults(self, ctx: "CompileContext") -> None:  # pragma: no cover
        return None

    def build_injections(self, ctx: "CompileContext") -> None:  # pragma: no cover
        return None


_FAMILIES: Dict[str, ScenarioFamily] = {}


def register_family(family: ScenarioFamily) -> ScenarioFamily:
    if not family.name:
        raise SpecError(f"{type(family).__name__} has no family name")
    _FAMILIES[family.name] = family
    return family


def _ensure_families_loaded() -> None:
    # The built-in families live in their own package and self-register on
    # import; imported lazily to keep spec importable from the families
    # package itself without a cycle.
    import repro.workloads.families  # noqa: F401


def available_families() -> Tuple[str, ...]:
    _ensure_families_loaded()
    return tuple(sorted(_FAMILIES))


def get_family(name: str) -> ScenarioFamily:
    _ensure_families_loaded()
    try:
        return _FAMILIES[name]
    except KeyError:
        raise SpecError(
            f"unknown scenario family {name!r} (available: "
            f"{', '.join(sorted(_FAMILIES)) or 'none'})"
        ) from None


# ----------------------------------------------------------------------
# the pass pipeline
# ----------------------------------------------------------------------


@dataclass
class CompileContext:
    """Mutable state threaded through the compile passes, in order."""

    spec: ScenarioSpec
    family: Optional[ScenarioFamily] = None
    ring_size: int = 0
    height: int = 0
    num_sites: int = 0
    params: Dict[str, object] = field(default_factory=dict)
    events: List[ScriptEvent] = field(default_factory=list)
    streams_used: List[str] = field(default_factory=list)
    _streams: Optional[RandomStreams] = None

    def stream(self, label: str) -> np.random.Generator:
        """A named family substream; its name is recorded in the provenance."""
        if self._streams is None:
            self._streams = RandomStreams(self.spec.seed)
        name = f"family.{self.spec.family}.{label}"
        if name not in self.streams_used:
            self.streams_used.append(name)
        return self._streams.stream(name)

    def emit(
        self,
        time: float,
        kind: str,
        member: str = "",
        site: int = -1,
        tier: int = 1,
        duration: float = 0.0,
    ) -> None:
        self.events.append(
            ScriptEvent(
                time=float(time), kind=kind, member=member, site=int(site),
                tier=int(tier), duration=float(duration),
            )
        )


@dataclass(frozen=True)
class CompiledScenario:
    """Output of the pass pipeline: shape + replayable script."""

    spec: ScenarioSpec
    ring_size: int
    height: int
    script: FaultScript


def _validate_pass(ctx: CompileContext) -> None:
    ctx.family = get_family(ctx.spec.family)
    unknown = sorted(set(ctx.spec.params) - set(ctx.family.defaults))
    if unknown:
        raise SpecError(
            f"unknown params {unknown} for family {ctx.spec.family!r} "
            f"(valid: {sorted(ctx.family.defaults)})"
        )
    ctx.params = dict(ctx.family.defaults)
    ctx.params.update(ctx.spec.params)


def _topology_pass(ctx: CompileContext) -> None:
    ctx.ring_size, ctx.height = ring_shape_for_proxies(ctx.spec.num_proxies)
    ctx.num_sites = ctx.spec.num_proxies


def _workload_pass(ctx: CompileContext) -> None:
    ctx.family.build_workload(ctx)


def _fault_pass(ctx: CompileContext) -> None:
    ctx.family.build_faults(ctx)


def _injection_pass(ctx: CompileContext) -> None:
    ctx.family.build_injections(ctx)


def _finalize_pass(ctx: CompileContext) -> None:
    for event in ctx.events:
        if event.site >= ctx.num_sites:
            raise SpecError(
                f"event {event} references site {event.site} "
                f"but the topology has {ctx.num_sites} sites"
            )
        if event.kind == "crash" and event.tier > ctx.height:
            raise SpecError(
                f"event {event} targets tier {event.tier} "
                f"but the hierarchy has height {ctx.height}"
            )
    # Stable sort: ties keep emission order, so the compile is deterministic
    # and the fault ordering a family chose at one instant survives.
    ctx.events.sort(key=lambda e: e.time)


#: The ordered pass pipeline.  Order is part of the contract: families emit
#: workload before faults before injections, and finalize sees everything.
PassFn = Callable[[CompileContext], None]
PASS_PIPELINE: Tuple[Tuple[str, PassFn], ...] = (
    ("validate", _validate_pass),
    ("topology", _topology_pass),
    ("workload", _workload_pass),
    ("faults", _fault_pass),
    ("injections", _injection_pass),
    ("finalize", _finalize_pass),
)


def compile_spec(spec: ScenarioSpec) -> CompiledScenario:
    """Run the pass pipeline; the result's script is pure replayable data."""
    ctx = CompileContext(spec=spec)
    for _name, pass_fn in PASS_PIPELINE:
        pass_fn(ctx)
    provenance = {
        "family": spec.family,
        "num_proxies": spec.num_proxies,
        "loss": spec.loss,
        "seed": spec.seed,
        "events": spec.events,
        "ring_size": ctx.ring_size,
        "height": ctx.height,
        "params": _plain(ctx.params),
        "streams": sorted(ctx.streams_used),
        "spec": spec.to_json(),
    }
    script = FaultScript(events=tuple(ctx.events), provenance=provenance)
    return CompiledScenario(
        spec=spec, ring_size=ctx.ring_size, height=ctx.height, script=script
    )


# ----------------------------------------------------------------------
# the harness-side fault-script driver
# ----------------------------------------------------------------------


def schedule_script(harness, script: FaultScript) -> int:
    """Schedule every script event on a :class:`repro.sim.harness.ScenarioHarness`.

    Site indices bind to ``harness.access_proxies()`` (index order); ``crash``
    events with ``tier > 1`` resolve to the tier-``t`` ancestor of the AP at
    the event's site index.  Returns the number of scheduled events.
    """
    from repro.sim.faults import FaultPlan

    aps = harness.access_proxies()
    count = 0
    for event in script.events:
        if event.kind == "join":
            harness.schedule_join(event.time, aps[event.site], guid=event.member)
        elif event.kind == "leave":
            harness.schedule_leave(event.time, event.member)
        elif event.kind == "failure":
            harness.schedule_failure(event.time, event.member)
        elif event.kind == "handoff":
            harness.schedule_handoff(event.time, event.member, aps[event.site])
        elif event.kind == "crash":
            if event.tier <= 1:
                node = aps[event.site]
            else:
                node = str(harness.hierarchy.ancestry(aps[event.site])[event.tier - 2])
            harness.schedule_crash(event.time, node)
        elif event.kind == "disconnect":
            harness.schedule_fault_plan(
                FaultPlan().disconnect(
                    aps[event.site], time=event.time, duration=event.duration
                )
            )
        elif event.kind == "inject_duplicate":
            harness.schedule_injection(event.time, "duplicate", event.member)
        elif event.kind == "inject_stale":
            harness.schedule_injection(event.time, "stale", event.member)
        else:  # pragma: no cover - ScriptEvent validates kinds
            raise SpecError(f"unknown script event kind {event.kind!r}")
        count += 1
    return count


# ----------------------------------------------------------------------
# CLI: compile a spec to a script file / replay a script file
# ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compile declarative adversarial scenarios to replayable fault scripts"
    )
    parser.add_argument("--list", action="store_true", help="list registered families")
    parser.add_argument("--family", type=str, default=None, help="family to compile")
    parser.add_argument("--proxies", type=int, default=16)
    parser.add_argument("--loss", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--events", type=int, default=24, help="workload size knob")
    parser.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="family parameter override (repeatable; values parsed as JSON)",
    )
    parser.add_argument("--out", type=str, default=None, help="write the compiled script here")
    parser.add_argument("--run", type=str, default=None, help="replay a compiled script file")
    parser.add_argument("--protocol", type=str, default="rgb", help="protocol for --run")
    parser.add_argument("--backend", type=str, default="object", help="kernel backend for --run")
    args = parser.parse_args(argv)

    if args.list:
        for name in available_families():
            family = get_family(name)
            print(f"{name:<22} {family.title}")
        return 0

    if args.run:
        from repro.workloads.matrix import replay_script

        with open(args.run) as fh:
            script = FaultScript.loads(fh.read())
        result = replay_script(script, protocol=args.protocol, backend=args.backend)
        status = "ok" if (result.converged and result.ring_agreement) else "DISAGREE"
        print(
            f"{script.family}/{args.protocol}: events={result.workload_events} "
            f"membership={result.membership} {status}"
        )
        return 0 if status == "ok" else 1

    if not args.family:
        parser.error("--family is required (or use --list / --run)")
    params: Dict[str, object] = {}
    for item in args.param:
        key, _, raw = item.partition("=")
        if not key or not raw:
            parser.error(f"--param expects KEY=VALUE, got {item!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    spec = ScenarioSpec(
        family=args.family, num_proxies=args.proxies, loss=args.loss,
        seed=args.seed, events=args.events, params=params,
    )
    compiled = compile_spec(spec)
    text = compiled.script.dumps()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(
            f"wrote {args.out}: {len(compiled.script.events)} events "
            f"(r={compiled.ring_size}, h={compiled.height})"
        )
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    # Under ``python -m`` runpy executes this file as ``__main__`` while the
    # canonical ``repro.workloads.spec`` module (imported via the package
    # __init__) owns the family registry — delegate to it so both see the
    # same ``_FAMILIES``.
    from repro.workloads.spec import main as _canonical_main

    sys.exit(_canonical_main())
