"""Workload generators driving the experiments and examples.

* :mod:`repro.workloads.churn` — join/leave/failure churn over the member
  population.
* :mod:`repro.workloads.handoffs` — handoff storms (bursts of mobility).
* :mod:`repro.workloads.queries` — membership query mixes for the TMS/BMS/IMS
  comparison.
* :mod:`repro.workloads.scenarios` — packaged end-to-end scenarios combining
  the above (used by the examples and integration tests).
* :mod:`repro.workloads.matrix` — the {protocol} × {scenario} × {scale} ×
  {loss} sweep over the event-driven harness (:mod:`repro.sim.harness`) and
  the protocol-driver ablation replay (:mod:`repro.baselines.driver`).
* :mod:`repro.workloads.spec` — declarative adversarial scenario specs
  compiled by a pass pipeline into replayable fault scripts; the families
  themselves live in :mod:`repro.workloads.families`.
"""

from repro.workloads.churn import ChurnEvent, ChurnKind, ChurnWorkload
from repro.workloads.handoffs import HandoffStorm, HandoffStormEvent
from repro.workloads.matrix import (
    LOSS_RATES,
    PROTOCOLS,
    SCENARIOS,
    SIZES,
    AblationSweep,
    CellResult,
    MatrixCell,
    ScenarioMatrix,
    WorkloadOp,
    ablation_workload,
    replay_workload,
    run_ablation_cell,
    run_matrix_cell,
    replay_script,
    scenario_names,
    shape_for_proxies,
)
from repro.workloads.queries import QueryWorkload, QueryRequest
from repro.workloads.spec import (
    FaultScript,
    ScenarioSpec,
    ScriptEvent,
    available_families,
    compile_spec,
    schedule_script,
)
from repro.workloads.scenarios import ScenarioResult, run_conferencing_scenario, run_churn_scenario

__all__ = [
    "LOSS_RATES",
    "PROTOCOLS",
    "SCENARIOS",
    "SIZES",
    "AblationSweep",
    "CellResult",
    "MatrixCell",
    "ScenarioMatrix",
    "WorkloadOp",
    "ablation_workload",
    "replay_workload",
    "run_ablation_cell",
    "run_matrix_cell",
    "replay_script",
    "scenario_names",
    "shape_for_proxies",
    "FaultScript",
    "ScenarioSpec",
    "ScriptEvent",
    "available_families",
    "compile_spec",
    "schedule_script",
    "ChurnEvent",
    "ChurnKind",
    "ChurnWorkload",
    "HandoffStorm",
    "HandoffStormEvent",
    "QueryWorkload",
    "QueryRequest",
    "ScenarioResult",
    "run_conferencing_scenario",
    "run_churn_scenario",
]
