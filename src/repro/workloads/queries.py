"""Membership query workloads for the TMS / BMS / IMS comparison."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.query import MembershipQueryService, MembershipScheme, QueryResult
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class QueryRequest:
    """One query in the workload: issued at ``time`` from ``entry_point``."""

    time: float
    entry_point: str
    scheme: MembershipScheme


@dataclass
class QueryWorkload:
    """Generates and replays a mix of membership queries.

    Parameters
    ----------
    entry_points:
        Network entities applications contact first (usually access proxies).
    queries:
        Number of queries to generate.
    scheme_mix:
        Relative weight of each scheme in the mix; defaults to uniform.
    duration:
        Workload duration; query times are uniform over it.
    """

    entry_points: Sequence[str]
    queries: int = 50
    scheme_mix: Optional[Mapping[MembershipScheme, float]] = None
    duration: float = 100.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.entry_points:
            raise ValueError("query workload needs at least one entry point")
        if self.queries < 1:
            raise ValueError(f"queries must be >= 1, got {self.queries}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    def generate(self) -> List[QueryRequest]:
        rng = RandomStreams(self.seed).stream("queries")
        mix = dict(self.scheme_mix) if self.scheme_mix else {s: 1.0 for s in MembershipScheme}
        schemes = list(mix)
        total = sum(mix.values())
        weights = [mix[s] / total for s in schemes]
        requests: List[QueryRequest] = []
        times = sorted(float(rng.uniform(0.0, self.duration)) for _ in range(self.queries))
        for time in times:
            scheme = schemes[int(rng.choice(len(schemes), p=weights))]
            entry = self.entry_points[int(rng.integers(len(self.entry_points)))]
            requests.append(QueryRequest(time=time, entry_point=entry, scheme=scheme))
        return requests

    @staticmethod
    def replay(store, requests: Sequence[QueryRequest]) -> Dict[str, Dict[str, float]]:
        """Run every query against a protocol engine; aggregate per scheme.

        Returns ``{scheme: {queries, total_hops, mean_hops, mean_members}}``.
        """
        aggregates: Dict[str, Dict[str, float]] = {}
        for request in requests:
            service = MembershipQueryService(store, entry_point=request.entry_point)
            result: QueryResult = service.query(request.scheme)
            bucket = aggregates.setdefault(
                request.scheme.value,
                {"queries": 0.0, "total_hops": 0.0, "total_members": 0.0},
            )
            bucket["queries"] += 1
            bucket["total_hops"] += result.message_hops
            bucket["total_members"] += len(result)
        for bucket in aggregates.values():
            bucket["mean_hops"] = bucket["total_hops"] / bucket["queries"]
            bucket["mean_members"] = bucket["total_members"] / bucket["queries"]
        return aggregates
