"""Closed-loop query load interleaved with churn.

The serving benchmark's traffic source: query batches are scheduled on the
harness's event wheel *between* the churn workload's joins/leaves/failures,
so reads and writes contend on one simulated timeline — every batch may
land mid-round-sequence and the snapshot layer has to prove its frames are
still coherent.  Closed-loop: the next batch is scheduled only after the
current one drains, so the generator measures sustainable throughput rather
than queueing itself to death.

Two modes share the harness wiring and the measurement path:

``batched``
    The serving front-end — batched submit/drain over epoch-consistent
    snapshot frames with columnar fan-out routing.
``object``
    The pinned reference — one :class:`MembershipQueryService` call per
    query, re-merging leader views every time.  This is what the serving
    layer's speedup is measured against.

Per-query wall-clock latencies are recorded per scheme (the first query
after an invalidation pays the frame capture — tail latencies are honest)
and summarised as qps / p50 / p99 plus the frontend's snapshot counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.core.query import MembershipQueryService, MembershipScheme

__all__ = ["QueryLoadConfig", "QueryLoadGenerator", "run_query_load"]

_SCHEMES = {scheme.name: scheme for scheme in MembershipScheme}


@dataclass(frozen=True)
class QueryLoadConfig:
    """Shape of the interleaved query load."""

    batch_size: int = 24
    batches: int = 8
    interval: float = 2.0
    start: float = 1.0
    schemes: Tuple[str, ...] = ("TMS", "BMS", "IMS")
    mode: str = "batched"  # "batched" (serving frontend) | "object" (reference)
    intermediate_tier: Optional[int] = None
    seed: int = 0

    def scheme_cycle(self) -> List[MembershipScheme]:
        return [_SCHEMES[name] for name in self.schemes]


def _percentile_ms(sorted_seconds: List[float], pct: float) -> float:
    """Nearest-rank percentile, reported in milliseconds."""
    if not sorted_seconds:
        return 0.0
    rank = max(1, -(-int(pct * len(sorted_seconds)) // 100))
    return sorted_seconds[min(rank, len(sorted_seconds)) - 1] * 1e3


class QueryLoadGenerator:
    """Schedules query batches through the harness's interleave seam."""

    def __init__(self, harness, config: Optional[QueryLoadConfig] = None) -> None:
        self.harness = harness
        self.config = config if config is not None else QueryLoadConfig()
        cfg = self.config
        if cfg.mode not in ("batched", "object"):
            raise ValueError(f"unknown query load mode: {cfg.mode!r}")
        rng = random.Random(cfg.seed)
        aps = harness.hierarchy.access_proxies()
        self.entry_point = aps[rng.randrange(len(aps))]
        self.frontend = None
        self.service: Optional[MembershipQueryService] = None
        if cfg.mode == "batched":
            self.frontend = harness.serving_frontend(intermediate_tier=cfg.intermediate_tier)
        else:
            self.service = MembershipQueryService(harness.kernel, entry_point=self.entry_point)
        self._cycle = cfg.scheme_cycle()
        self._batches_fired = 0
        self.latencies: Dict[str, List[float]] = {name: [] for name in cfg.schemes}
        self.member_counts: Dict[str, List[int]] = {name: [] for name in cfg.schemes}

    # -- scheduling ---------------------------------------------------------

    def install(self) -> None:
        """Put the first batch on the event wheel."""
        self.harness.schedule_call(self.config.start, self._fire_batch, label="query-batch")

    def _fire_batch(self) -> None:
        cfg = self.config
        cycle = self._cycle
        plan = [cycle[i % len(cycle)] for i in range(cfg.batch_size)]
        if self.frontend is not None:
            for scheme in plan:
                self.frontend.submit(scheme, self.entry_point)
            timings: List[float] = []
            results = self.frontend.drain(timings=timings)
            for scheme, result, seconds in zip(plan, results, timings):
                self.latencies[scheme.name].append(seconds)
                self.member_counts[scheme.name].append(result.member_count)
        else:
            service = self.service
            for scheme in plan:
                started = perf_counter()
                result = service.query(scheme, intermediate_tier=cfg.intermediate_tier)
                self.latencies[scheme.name].append(perf_counter() - started)
                self.member_counts[scheme.name].append(result.member_count)
        self._batches_fired += 1
        if self._batches_fired < cfg.batches:
            self.harness.schedule_call(
                self.harness.engine.now + cfg.interval, self._fire_batch, label="query-batch"
            )

    # -- results ------------------------------------------------------------

    def results(self) -> Dict[str, object]:
        """Per-scheme qps / p50 / p99 / view sizes plus serving counters."""
        per_scheme: Dict[str, Dict[str, float]] = {}
        total_queries = 0
        total_seconds = 0.0
        for name in self.config.schemes:
            lats = sorted(self.latencies[name])
            counts = self.member_counts[name]
            seconds = sum(lats)
            total_queries += len(lats)
            total_seconds += seconds
            per_scheme[name] = {
                "queries": len(lats),
                "qps": (len(lats) / seconds) if seconds else 0.0,
                "p50_ms": _percentile_ms(lats, 50),
                "p99_ms": _percentile_ms(lats, 99),
                "mean_members": (sum(counts) / len(counts)) if counts else 0.0,
            }
        out: Dict[str, object] = {
            "mode": self.config.mode,
            "batches": self._batches_fired,
            "total_queries": total_queries,
            "total_query_seconds": total_seconds,
            "overall_qps": (total_queries / total_seconds) if total_seconds else 0.0,
            "schemes": per_scheme,
        }
        if self.frontend is not None:
            out["snapshots"] = self.frontend.stats()
        return out


def run_query_load(harness, config: Optional[QueryLoadConfig] = None) -> Dict[str, object]:
    """Install the generator, run the harness to completion, return results."""
    generator = QueryLoadGenerator(harness, config)
    generator.install()
    harness.run()
    return generator.results()


def run_serving_cell(
    num_proxies: int,
    mode: str = "batched",
    backend: str = "columnar",
    events: int = 24,
    seed: int = 0,
    config: Optional[QueryLoadConfig] = None,
) -> Dict[str, object]:
    """One serving measurement: a churn matrix cell with interleaved queries.

    Builds the standard churn cell for ``num_proxies`` (same shapes and
    seeded workload as ``run_matrix_cell``), installs the query load in the
    requested ``mode`` and runs the whole thing to quiescence.  Returns the
    load generator's results plus cell provenance and harness build time —
    the shared cell runner behind ``benchmarks/perf.py``'s serving benches
    and ``run_bench.py --serving``.
    """
    from time import perf_counter

    from repro.workloads.matrix import (
        MatrixCell,
        _build_harness,
        _gc_paused,
        _schedule_churn,
    )

    cell = MatrixCell(
        scenario="churn", num_proxies=num_proxies, loss=0.0, seed=seed, backend=backend
    )
    load = config if config is not None else QueryLoadConfig(mode=mode)
    if load.mode != mode:
        load = replace(load, mode=mode)
    with _gc_paused():
        build_start = perf_counter()
        harness = _build_harness(cell)
        _schedule_churn(harness, cell, events)
        build_seconds = perf_counter() - build_start
        result = run_query_load(harness, load)
    result["num_proxies"] = num_proxies
    result["backend"] = backend
    result["events"] = events
    result["build_seconds"] = build_seconds
    return result
