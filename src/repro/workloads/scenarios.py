"""Packaged end-to-end scenarios used by examples and integration tests."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import ProtocolConfig, SimulationConfig
from repro.core.hierarchy import HierarchyBuilder
from repro.core.one_round import OneRoundEngine
from repro.core.query import MembershipScheme
from repro.core.simulation import RGBSimulation
from repro.workloads.churn import ChurnEvent, ChurnKind, ChurnWorkload
from repro.workloads.handoffs import HandoffStorm


@dataclass
class ScenarioResult:
    """Outcome summary of a packaged scenario run."""

    name: str
    final_membership: int
    events_processed: int
    details: Dict[str, object] = field(default_factory=dict)


def run_churn_scenario(
    num_aps: int = 25,
    ring_size: int = 5,
    horizon: float = 200.0,
    join_rate: float = 0.5,
    seed: int = 0,
) -> ScenarioResult:
    """Members continuously join, leave and fail; RGB tracks the population.

    Returns the final global membership size, which must equal the number of
    joins minus departures the workload produced (checked by the integration
    tests).
    """
    sim = RGBSimulation(
        SimulationConfig(num_aps=num_aps, ring_size=ring_size, hosts_per_ap=0, seed=seed)
    ).build()
    workload = ChurnWorkload(
        ap_ids=sim.access_proxies(), join_rate=join_rate, horizon=horizon, seed=seed
    )
    events = workload.generate()
    joined: Dict[str, str] = {}
    processed = 0
    for event in events:
        if event.kind is ChurnKind.JOIN:
            sim.join_member(ap_id=event.ap, guid=event.member)
            joined[event.member] = event.ap
        elif event.kind is ChurnKind.LEAVE:
            if event.member not in joined:
                continue
            sim.leave_member(event.member)
            joined.pop(event.member)
        else:
            if event.member not in joined:
                continue
            sim.fail_member(event.member)
            joined.pop(event.member)
        processed += 1
        sim.run_until_quiescent()
    view = sim.global_membership()
    return ScenarioResult(
        name="churn",
        final_membership=len(view),
        events_processed=processed,
        details={
            "expected_membership": len(joined),
            "workload": ChurnWorkload.summarize(events),
        },
    )


def run_large_scale_scenario(
    ring_size: int = 10,
    height: int = 5,
    joins: int = 16,
    batched_apply: bool = True,
    disseminate_downward: bool = True,
    verify_rings: int = 25,
) -> ScenarioResult:
    """One full propagation over a regular hierarchy with ``ring_size**height``
    access proxies (100 000 at the defaults) — the ROADMAP's scale direction.

    The scenario builds the paper's regular analytical hierarchy directly
    (skipping the 4-tier topology generator, which is not needed for protocol
    scaling), captures ``joins`` membership joins spread across the proxies in
    one batch, and drives a single :meth:`OneRoundEngine.propagate` so the
    kernel aggregates them into shared token rounds and applies each ring's
    operations as one compiled delta.

    Returns wall-clock build/propagation timings, the round and hop counts,
    and an agreement check over ``verify_rings`` sampled rings.
    """
    if joins < 1:
        raise ValueError(f"joins must be >= 1, got {joins}")
    config = ProtocolConfig(
        aggregation_delay=0.0,
        batched_apply=batched_apply,
        disseminate_downward=disseminate_downward,
    )
    build_start = time.perf_counter()
    hierarchy = HierarchyBuilder("large-scale").regular(ring_size=ring_size, height=height)
    engine = OneRoundEngine(hierarchy, config=config)
    build_seconds = time.perf_counter() - build_start
    aps = hierarchy.access_proxies()
    stride = max(1, len(aps) // joins)
    for index in range(joins):
        engine.member_join(aps[(index * stride) % len(aps)], f"big-{index:06d}")

    propagate_start = time.perf_counter()
    report = engine.propagate()
    propagate_seconds = time.perf_counter() - propagate_start

    ring_ids = sorted(hierarchy.rings)
    sample_stride = max(1, len(ring_ids) // max(1, verify_rings))
    sampled = ring_ids[::sample_stride][:verify_rings]
    agreement = all(engine.ring_agreement(ring_id) for ring_id in sampled)

    membership = len(engine.global_membership())
    return ScenarioResult(
        name="large_scale",
        final_membership=membership,
        events_processed=joins,
        details={
            "access_proxies": len(aps),
            "rings": hierarchy.total_rings,
            "entities": hierarchy.total_nodes(),
            "build_seconds": build_seconds,
            "propagate_seconds": propagate_seconds,
            "rounds": report.round_count,
            "hop_count": report.hop_count,
            "joins_per_second": joins / propagate_seconds if propagate_seconds > 0 else 0.0,
            "sampled_ring_agreement": agreement,
            "batched_apply": batched_apply,
        },
    )


def run_conferencing_scenario(
    num_aps: int = 25,
    ring_size: int = 5,
    participants: int = 30,
    handoffs: int = 60,
    locality: float = 0.8,
    seed: int = 0,
) -> ScenarioResult:
    """A mobile video-conference: members join, then move between cells.

    This is the motivating application class of the paper's introduction
    (video conferencing / distance learning with mobile participants).  The
    scenario joins ``participants`` members spread over the proxies, runs a
    handoff storm with the given locality, and reports the fast-handoff hit
    ratio alongside the query results under each maintenance scheme.
    """
    sim = RGBSimulation(
        SimulationConfig(num_aps=num_aps, ring_size=ring_size, hosts_per_ap=0, seed=seed)
    ).build()
    aps = sim.access_proxies()
    attachment: Dict[str, str] = {}
    for index in range(participants):
        ap = aps[index % len(aps)]
        member = sim.join_member(ap_id=ap, guid=f"conf-{index:04d}")
        attachment[str(member.guid)] = ap
    sim.run_until_quiescent()

    neighbor_map = {}
    for ap in aps:
        ring = sim.ring_of(ap)
        neighbor_map[ap] = [str(n) for n in ring.members if str(n) != ap]
    storm = HandoffStorm(
        attachment=attachment,
        neighbor_map=neighbor_map,
        handoffs=handoffs,
        locality=locality,
        seed=seed,
    )
    events = storm.generate()
    for event in events:
        sim.handoff_member(event.member, event.to_ap)
        sim.run_until_quiescent()

    queries = {
        scheme.value: sim.query(scheme).message_hops for scheme in MembershipScheme
    }
    view = sim.global_membership()
    return ScenarioResult(
        name="conferencing",
        final_membership=len(view),
        events_processed=participants + len(events),
        details={
            "handoff_stats": sim.handoff_statistics(),
            "storm_locality": HandoffStorm.locality_ratio(events),
            "query_hops": queries,
        },
    )
