"""Wire codec for the live runtime's UDP datagrams.

Every datagram is one protocol message: a fixed binary header followed by a
pickled payload dict.  The header carries

* a magic/version pair (foreign or stale datagrams are rejected loudly),
* the message kind (token / notify / ack / heartbeat / control plane),
* the sending shard id,
* a *per-link sequence number*: each sender numbers the datagrams it emits
  towards each destination (unicast peer or the multicast group)
  independently, so every receiver can account duplicates, reordering and
  gaps per link without any cross-link coordination.

The payload is pickled: the runtime runs trusted, co-spawned processes over
loopback (the supervisor forks every peer), so the codec optimises for
fidelity with the in-process message shapes (``TokenOperation`` tuples
travel as-is) rather than for hostile inputs.  The header is still
validated structurally so a stray datagram cannot crash a node.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = [
    "CHANNEL_MULTICAST",
    "CHANNEL_UNICAST",
    "LinkTracker",
    "MSG_BYE",
    "MSG_HEARTBEAT",
    "MSG_HELLO",
    "MSG_HOLDER_ACK",
    "MSG_NOTIFY",
    "MSG_NOTIFY_ACK",
    "MSG_PEERS",
    "MSG_SHUTDOWN",
    "MSG_STATUS",
    "MSG_TOKEN",
    "WireCodec",
    "WireError",
    "WireMessage",
]

#: Datagram magic + codec version.  Bump the version on any header change.
MAGIC = b"RGB1"
VERSION = 1

#: Message kinds.  Data plane (the kernel's three message classes):
MSG_TOKEN = 1
MSG_NOTIFY = 2
MSG_NOTIFY_ACK = 3
MSG_HOLDER_ACK = 4
#: Failure detection:
MSG_HEARTBEAT = 5
#: Control plane (supervisor <-> node):
MSG_HELLO = 16
MSG_PEERS = 17
MSG_STATUS = 18
MSG_SHUTDOWN = 19
MSG_BYE = 20

_KINDS = frozenset(
    (
        MSG_TOKEN,
        MSG_NOTIFY,
        MSG_NOTIFY_ACK,
        MSG_HOLDER_ACK,
        MSG_HEARTBEAT,
        MSG_HELLO,
        MSG_PEERS,
        MSG_STATUS,
        MSG_SHUTDOWN,
        MSG_BYE,
    )
)

#: Link channels: a sender numbers its unicast stream towards each peer and
#: its multicast stream independently, so a receiver seeing both can track
#: them as two links instead of one stream with phantom gaps.
CHANNEL_UNICAST = 0
CHANNEL_MULTICAST = 1

#: magic(4s) version(B) kind(B) channel(B) shard(i) seq(Q)
_HEADER = struct.Struct("!4sBBBiQ")

#: Stay comfortably under the UDP datagram ceiling (65507 bytes of payload
#: on loopback); a notify batch approaching this indicates a logic error.
MAX_DATAGRAM = 60_000


class WireError(RuntimeError):
    """A datagram failed header validation or exceeded the size budget."""


@dataclass(frozen=True)
class WireMessage:
    """One decoded datagram."""

    kind: int
    sender_shard: int
    seq: int
    channel: int
    payload: dict


class WireCodec:
    """Encode/decode datagrams for one shard, numbering each link's stream."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self._next_seq: Dict[Tuple[object, int], int] = {}

    def encode(self, kind: int, payload: dict, dest_key: object, channel: int = CHANNEL_UNICAST) -> bytes:
        """Build one datagram towards ``dest_key`` (assigns the link seq)."""
        if kind not in _KINDS:
            raise WireError(f"unknown message kind {kind}")
        link = (dest_key, channel)
        seq = self._next_seq.get(link, 0) + 1
        self._next_seq[link] = seq
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        data = _HEADER.pack(MAGIC, VERSION, kind, channel, self.shard_id, seq) + body
        if len(data) > MAX_DATAGRAM:
            raise WireError(
                f"datagram of kind {kind} is {len(data)} bytes "
                f"(limit {MAX_DATAGRAM}); split the batch"
            )
        return data

    @staticmethod
    def decode(data: bytes) -> WireMessage:
        """Parse one datagram; raises :class:`WireError` on a bad header."""
        if len(data) < _HEADER.size:
            raise WireError(f"short datagram ({len(data)} bytes)")
        magic, version, kind, channel, shard, seq = _HEADER.unpack_from(data)
        if magic != MAGIC:
            raise WireError(f"bad magic {magic!r}")
        if version != VERSION:
            raise WireError(f"unsupported wire version {version}")
        if kind not in _KINDS:
            raise WireError(f"unknown message kind {kind}")
        try:
            payload = pickle.loads(data[_HEADER.size :])
        except Exception as exc:  # pickle raises a zoo of types
            raise WireError(f"undecodable payload: {exc}") from exc
        if not isinstance(payload, dict):
            raise WireError(f"payload must be a dict, got {type(payload).__name__}")
        return WireMessage(kind=kind, sender_shard=shard, seq=seq, channel=channel, payload=payload)


@dataclass
class LinkStats:
    """Per-link receive accounting."""

    received: int = 0
    duplicates: int = 0
    reordered: int = 0
    gaps: int = 0
    highest: int = 0


class LinkTracker:
    """Receiver-side per-link sequence accounting.

    Keyed by ``(sender_shard, channel)``.  UDP over loopback essentially
    never loses or reorders, but the accounting is what turns "essentially
    never" into a measured claim — the live reports carry these counters.
    """

    def __init__(self) -> None:
        self._links: Dict[Tuple[int, int], LinkStats] = {}
        self._seen: Dict[Tuple[int, int], set] = {}

    def observe(self, message: WireMessage) -> str:
        """Record one arrival; returns 'new', 'duplicate' or 'reordered'."""
        link = (message.sender_shard, message.channel)
        stats = self._links.get(link)
        if stats is None:
            stats = self._links[link] = LinkStats()
            self._seen[link] = set()
        seen = self._seen[link]
        seq = message.seq
        stats.received += 1
        if seq in seen:
            stats.duplicates += 1
            return "duplicate"
        seen.add(seq)
        if seq > stats.highest:
            if seq > stats.highest + 1:
                stats.gaps += seq - stats.highest - 1
            stats.highest = seq
            # Keep the seen-set bounded: everything at or below the
            # contiguous frontier can be forgotten.
            while len(seen) > 4096:
                seen.pop()
            return "new"
        stats.reordered += 1
        # A gap previously counted is being filled in late.
        stats.gaps = max(0, stats.gaps - 1)
        return "reordered"

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Counters per link, keyed ``"shard:channel"``."""
        return {
            f"{shard}:{channel}": {
                "received": s.received,
                "duplicates": s.duplicates,
                "reordered": s.reordered,
                "gaps": s.gaps,
                "highest": s.highest,
            }
            for (shard, channel), s in sorted(self._links.items())
        }
