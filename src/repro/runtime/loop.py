"""Single-threaded event loop for the live runtime's node processes.

One ``selectors``-based loop multiplexes every socket read and a monotonic
timer heap — no thread per socket, no locks, no shared mutable state
between concurrent handlers.  The event-driven interpreter argument applies
directly: with exactly one logical thread of control, a node's behaviour is
a deterministic function of the sequence of datagram arrivals and timer
firings, which is what makes a live run *checkable* against the simulator
(the sim engine is the same shape: one queue, one clock, handlers run to
completion).

Handlers run to completion; a slow handler delays timers (as in any
single-threaded reactor).  Timer callbacks take no arguments; reader
callbacks receive the ready socket.
"""

from __future__ import annotations

import heapq
import itertools
import selectors
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["EventLoop", "TimerHandle"]


class TimerHandle:
    """Cancellation handle for a scheduled callback."""

    __slots__ = ("when", "callback", "cancelled")

    def __init__(self, when: float, callback: Callable[[], None]) -> None:
        self.when = when
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """Selector + timer-heap reactor (one per node process)."""

    #: Upper bound on one ``select`` wait so ``stop()`` from a signal-free
    #: context (e.g. a handler that set a flag) is honoured promptly.
    MAX_POLL = 0.5

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock
        self._selector = selectors.DefaultSelector()
        self._timers: List[Tuple[float, int, TimerHandle]] = []
        self._tie = itertools.count()
        self._readers: Dict[int, object] = {}
        self._running = False

    # -- readers ------------------------------------------------------------

    def add_reader(self, sock, callback: Callable[[object], None]) -> None:
        """Invoke ``callback(sock)`` whenever ``sock`` is readable."""
        self._selector.register(sock, selectors.EVENT_READ, callback)
        self._readers[sock.fileno()] = sock

    def remove_reader(self, sock) -> None:
        try:
            self._selector.unregister(sock)
        except KeyError:
            return
        self._readers.pop(sock.fileno(), None)

    # -- timers -------------------------------------------------------------

    def call_later(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        return self.call_at(self.clock() + max(0.0, delay), callback)

    def call_at(self, when: float, callback: Callable[[], None]) -> TimerHandle:
        handle = TimerHandle(when, callback)
        heapq.heappush(self._timers, (when, next(self._tie), handle))
        return handle

    def timers_pending(self) -> int:
        """Live (uncancelled) timers currently scheduled."""
        return sum(1 for _, _, h in self._timers if not h.cancelled)

    # -- run ----------------------------------------------------------------

    def _fire_due(self) -> None:
        now = self.clock()
        while self._timers and self._timers[0][0] <= now:
            _, _, handle = heapq.heappop(self._timers)
            if handle.cancelled:
                continue
            handle.callback()
            if not self._running:
                return

    def _next_timeout(self) -> float:
        while self._timers and self._timers[0][2].cancelled:
            heapq.heappop(self._timers)
        if not self._timers:
            return self.MAX_POLL
        return min(self.MAX_POLL, max(0.0, self._timers[0][0] - self.clock()))

    def run(self) -> None:
        """Dispatch readers and timers until :meth:`stop` is called."""
        self._running = True
        try:
            while self._running:
                self._fire_due()
                if not self._running:
                    break
                timeout = self._next_timeout()
                if self._selector.get_map():
                    ready = self._selector.select(timeout)
                else:
                    time.sleep(timeout)
                    ready = []
                for key, _events in ready:
                    key.data(key.fileobj)
                    if not self._running:
                        break
        finally:
            self._running = False

    def run_until(self, predicate: Callable[[], bool], timeout: float) -> bool:
        """Run until ``predicate()`` holds (checked after every dispatch).

        Test helper; returns False if ``timeout`` elapsed first.
        """
        deadline = self.clock() + timeout
        poll: Optional[TimerHandle] = None

        def check() -> None:
            nonlocal poll
            if predicate() or self.clock() >= deadline:
                self.stop()
                return
            poll = self.call_later(0.005, check)

        check()
        if self._running:
            return predicate()
        self.run()
        if poll is not None:
            poll.cancel()
        return predicate()

    def stop(self) -> None:
        self._running = False

    def close(self) -> None:
        self._selector.close()
        self._timers.clear()
        self._readers.clear()
