"""``SocketDispatch``: the kernel's message seam over real UDP datagrams.

Third driver of the :class:`repro.core.kernel.MessageDispatch` seam (after
``DirectDispatch`` and the sim's ``TransportDispatch``).  A node process
owns whole rings; its kernel replica runs rounds only for those rings, and
this dispatch routes the round's outbound messages:

* **Notifications** are reliable within a budget, mirroring the sim's
  ``TransportDispatch`` semantics message for message: every send is
  tracked, re-sent with backoff until the receiving shard acknowledges
  insertion, re-routed through the kernel's repair logic when the target
  crashed in the meantime, abandoned (with a counter, un-marking the
  seen-set) only after ``resend_limit`` attempts at a live-but-unreachable
  target.  Receivers dedup by notify id (a resend after a lost ack must
  not double-insert) and apply the same staleness filter the sim harness
  applies.
* **Holder-acks** are fire-and-forget datagrams when the acked child sender
  lives on another shard (no receiver-side state, as in the sim).
* **Token hops** circulate between members of one ring — always one shard —
  so the datagram is a self-addressed loopback send: the hop still crosses
  the wire codec and socket (the sim's fire-and-forget ``MSG_TOKEN`` lane,
  made physical) without inventing a phantom remote receiver.

The same dead-letter semantics as the (fixed) sim harness apply: a reroute
with no usable fallback accounts the operations under
``harness.notify_dead_lettered`` and stashes them for re-injection when a
later repair (coverage epoch change) restores a fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.identifiers import NodeId, coerce_node
from repro.core.kernel import MessageDispatch, TokenRoundKernel, stale_for
from repro.core.token import TokenOperation
from repro.runtime import wire

__all__ = ["LiveNotification", "SocketDispatch"]


@dataclass
class LiveNotification:
    """An in-flight reliable notification (live analogue of the sim's
    ``_PendingNotification``; ``target_ring_id`` serves the same
    un-mark-on-reroute purpose)."""

    sender: NodeId
    target: NodeId
    operations: Tuple[TokenOperation, ...]
    target_ring_id: str
    attempts: int = 1
    #: Ring the sender belonged to at send time — a dead sender's in-flight
    #: notifications are taken over by a surviving member of this ring (the
    #: operations are ring-applied state, not the messenger's private data).
    sender_ring_id: Optional[str] = None


class SocketDispatch(MessageDispatch):
    """Routes kernel messages between shard processes over UDP.

    ``node`` is the owning :class:`repro.runtime.node.NodeRuntime` (or any
    duck-type with its routing surface: ``kernel``, ``loop``, ``plan``,
    ``shard_id``, ``metrics``, ``config``, ``send_to_shard``,
    ``send_to_self``, ``vnow`` and ``schedule_round``).
    """

    emits_token_messages = True

    def __init__(self, node) -> None:
        self.node = node
        self._pending: Dict[int, LiveNotification] = {}
        self._timers: Dict[int, object] = {}
        self._next_id = 1
        #: (sender_shard, notify_id) pairs already inserted (resend dedup).
        self._delivered: Set[Tuple[int, int]] = set()
        self._dead_letters: List[LiveNotification] = []
        self._dead_letter_epoch: Optional[int] = None

    # -- MessageDispatch interface ------------------------------------------

    def deliver_notification(
        self,
        kernel: TokenRoundKernel,
        sender: NodeId,
        target: NodeId,
        operations: Sequence[TokenOperation],
        now: float,
    ) -> None:
        ring_id = kernel.hierarchy.ring_of(target).ring_id
        entry = LiveNotification(
            sender,
            target,
            tuple(operations),
            ring_id,
            sender_ring_id=kernel.hierarchy.ring_of_node.get(sender),
        )
        owner = self.node.plan.owner_of_ring(ring_id)
        if owner == self.node.shard_id:
            self._deliver_local(entry)
        else:
            self._transmit(entry, self._take_id())

    def deliver_holder_ack(
        self, kernel: TokenRoundKernel, holder: NodeId, target: NodeId, now: float
    ) -> None:
        ring_id = kernel.hierarchy.ring_of_node.get(target)
        owner = self.node.plan.owner_of_ring(ring_id) if ring_id is not None else None
        if owner is not None and owner != self.node.shard_id:
            self.node.send_to_shard(
                owner,
                wire.MSG_HOLDER_ACK,
                {"holder": holder.value, "target": target.value},
            )

    def token_hop(
        self, kernel: TokenRoundKernel, sender: NodeId, receiver: NodeId, now: float
    ) -> None:
        # Ring-local by construction (one owner per ring): a physical
        # loopback self-send keeps the token lane on the wire.
        self.node.send_to_self(
            wire.MSG_TOKEN, {"sender": sender.value, "receiver": receiver.value}
        )

    # -- reliable notification plumbing -------------------------------------

    def _take_id(self) -> int:
        notify_id = self._next_id
        self._next_id += 1
        return notify_id

    def pending_count(self) -> int:
        return len(self._pending)

    def dead_letter_count(self) -> int:
        return len(self._dead_letters)

    def _transmit(self, entry: LiveNotification, notify_id: int) -> None:
        node = self.node
        ring_id = entry.target_ring_id
        owner = node.plan.owner_of_ring(ring_id)
        self._pending[notify_id] = entry
        node.send_to_shard(
            owner,
            wire.MSG_NOTIFY,
            {
                "id": notify_id,
                "sender": entry.sender.value,
                "target": entry.target.value,
                "ring": ring_id,
                "ops": entry.operations,
            },
        )
        self._timers[notify_id] = node.loop.call_later(
            node.config.resend_backoff, lambda: self._check(notify_id)
        )

    def _check(self, notify_id: int) -> None:
        entry = self._pending.pop(notify_id, None)
        self._timers.pop(notify_id, None)
        if entry is None:
            return  # acked
        node = self.node
        kernel = node.kernel
        if (
            entry.target in kernel.failed
            or not kernel.hierarchy.has_node(entry.target)
            or entry.sender in kernel.failed
            or not kernel.hierarchy.has_node(entry.sender)
        ):
            # Heartbeat eviction marked an endpoint dead while the message
            # was in flight: re-route through the repair logic (a dead
            # sender is succeeded by a surviving member of its ring).
            self._reroute(entry)
            return
        if entry.attempts > node.config.resend_limit:
            node.metrics.counter("harness.notify_abandoned").increment()
            seen = kernel.ring_seen.get(entry.target_ring_id)
            if seen is not None:
                seen.difference_update(op.sequence for op in entry.operations)
            return
        node.metrics.counter("harness.notify_resends").increment()
        entry.attempts += 1
        self._transmit(entry, notify_id)

    def _deliver_local(self, entry: LiveNotification) -> None:
        """Same-shard delivery: the sim's ``_accept_notification`` inline."""
        node = self.node
        kernel = node.kernel
        target = entry.target
        if target in kernel.failed or not kernel.hierarchy.has_node(target):
            self._reroute(entry)
            return
        entity = kernel.entity(target)
        ring_id = kernel.hierarchy.ring_of(target).ring_id
        now = node.vnow()
        inserted = False
        applied = kernel.ring_applied_seq.get(ring_id)
        for op in entry.operations:
            if stale_for(applied, op):
                node.metrics.counter("harness.stale_ops_dropped").increment()
                continue
            entity.mq.insert(op, sender=entry.sender, now=now)
            inserted = True
        node.metrics.counter("harness.notifications_delivered").increment()
        if inserted:
            node.schedule_round(ring_id)

    # -- receiver side (wired from the node's datagram handlers) ------------

    def on_notify(self, message: wire.WireMessage) -> None:
        node = self.node
        payload = message.payload
        notify_id = int(payload["id"])
        # Always ack: the sender retries until it hears us, and a duplicate
        # means exactly that a previous ack was lost (or is still in flight).
        node.send_to_shard(message.sender_shard, wire.MSG_NOTIFY_ACK, {"id": notify_id})
        key = (message.sender_shard, notify_id)
        if key in self._delivered:
            node.metrics.counter("runtime.notify_duplicates").increment()
            return
        self._delivered.add(key)
        entry = LiveNotification(
            sender=coerce_node(payload["sender"]),
            target=coerce_node(payload["target"]),
            operations=tuple(payload["ops"]),
            target_ring_id=payload["ring"],
        )
        self._deliver_local(entry)

    def on_notify_ack(self, message: wire.WireMessage) -> None:
        notify_id = int(message.payload["id"])
        if self._pending.pop(notify_id, None) is not None:
            timer = self._timers.pop(notify_id, None)
            if timer is not None:
                timer.cancel()

    # -- reroute + dead letters (sim-harness semantics) ----------------------

    def _reroute(self, entry: LiveNotification) -> None:
        node = self.node
        kernel = node.kernel
        target = entry.target
        sender = self._live_sender(entry)
        node.metrics.counter("harness.notify_rerouted").increment()
        seen = kernel.ring_seen.get(entry.target_ring_id)
        if seen is not None:
            seen.difference_update(op.sequence for op in entry.operations)
        if sender is None:
            node.metrics.counter("harness.notify_dead_lettered").increment()
            self._dead_letters.append(entry)
            return
        if kernel.hierarchy.has_node(target) and target != sender:
            kernel.forward_notification(sender, target, entry.operations, node.vnow())
            return
        fallback = self._fallback(sender, target, entry.target_ring_id)
        if fallback is not None:
            kernel.forward_notification(sender, fallback, entry.operations, node.vnow())
            return
        node.metrics.counter("harness.notify_dead_lettered").increment()
        self._dead_letters.append(entry)

    def _live_sender(self, entry: LiveNotification) -> Optional[NodeId]:
        """The entry's sender if alive, else a surviving member of the
        sender's ring, else None (sim-harness mirror)."""
        kernel = self.node.kernel
        hierarchy = kernel.hierarchy
        sender = entry.sender
        if sender not in kernel.failed and hierarchy.has_node(sender):
            return sender
        ring_id = entry.sender_ring_id or hierarchy.ring_of_node.get(sender)
        ring = hierarchy.rings.get(ring_id) if ring_id else None
        if ring is None:
            return None
        candidates = [ring.leader] + list(ring.members)
        for candidate in candidates:
            if (
                candidate is not None
                and candidate not in kernel.failed
                and hierarchy.has_node(candidate)
            ):
                return candidate
        return None

    def _fallback(self, sender: NodeId, target: NodeId, target_ring_id: str):
        """Surviving counterpart for an excised target (sim-harness mirror):
        the sender's re-attached parent slot for upward notifications, the
        target ring's post-repair leader for downward dissemination."""
        kernel = self.node.kernel
        hierarchy = kernel.hierarchy
        candidates = []
        if sender in kernel.entities:
            candidates.append(kernel.entities[sender].parent)
            ring_id = hierarchy.ring_of_node.get(sender)
            candidates.append(hierarchy.parent_node.get(ring_id) if ring_id else None)
        ring = hierarchy.rings.get(target_ring_id)
        candidates.append(ring.leader if ring is not None else None)
        for candidate in candidates:
            if (
                candidate is not None
                and candidate != target
                and candidate not in kernel.failed
                and hierarchy.has_node(candidate)
            ):
                return candidate
        return None

    def retry_dead_letters(self) -> bool:
        """Re-offer dead letters after repair surgery (coverage epoch moved)."""
        if not self._dead_letters:
            return False
        node = self.node
        kernel = node.kernel
        epoch = kernel.coverage_epoch
        if epoch == self._dead_letter_epoch:
            return False
        self._dead_letter_epoch = epoch
        kept: List[LiveNotification] = []
        reinjected = False
        for entry in self._dead_letters:
            sender = self._live_sender(entry)
            fallback = None
            if sender is not None:
                fallback = self._fallback(sender, entry.target, entry.target_ring_id)
            if fallback is None or fallback == sender:
                kept.append(entry)
                continue
            node.metrics.counter("harness.notify_reinjected").increment()
            kernel.forward_notification(sender, fallback, entry.operations, node.vnow())
            reinjected = True
        self._dead_letters = kept
        return reinjected
