"""Live UDP runtime: the token-round kernel over real OS processes and sockets.

The ``sim`` layer runs the whole hierarchy inside one process on a virtual
clock.  This package is the third :class:`repro.core.kernel.MessageDispatch`
driver: each *shard* of the hierarchy is a real OS process
(:mod:`repro.runtime.node`) owning a set of whole rings, multiplexing UDP
unicast + loopback-multicast sockets on a single-threaded event loop
(:mod:`repro.runtime.loop`), and driving the *same* kernel rounds the
simulator drives — notifications, holder-acks and token hops travel as real
datagrams through :class:`repro.runtime.dispatch.SocketDispatch`, and
failure detection is heartbeat-based (:mod:`repro.runtime.heartbeat`)
feeding the kernel's existing ``fail_entity``/repair path instead of the
sim's ``FaultEvent``.

A :class:`repro.runtime.supervisor.Supervisor` spawns/handshakes/tears down
the shard processes (crash injection is a real ``SIGKILL``), and
:mod:`repro.runtime.runner` replays the same scenario scripts on both the
live runtime and the simulator and checks golden-trace conformance: the two
runs must produce equivalent membership traces.
"""

from repro.runtime.heartbeat import HeartbeatConfig, HeartbeatMonitor, PeerHealth
from repro.runtime.loop import EventLoop
from repro.runtime.scenario import ScenarioScript, ScriptOp, ShardPlan, build_churn_script
from repro.runtime.wire import WireCodec, WireError, WireMessage

__all__ = [
    "EventLoop",
    "HeartbeatConfig",
    "HeartbeatMonitor",
    "PeerHealth",
    "ScenarioScript",
    "ScriptOp",
    "ShardPlan",
    "WireCodec",
    "WireError",
    "WireMessage",
    "build_churn_script",
]
