"""Scenario scripts and shard plans shared by the live runtime and the sim.

Golden-trace conformance needs both drivers to replay *the same* scenario.
The script is generated centrally (the same :class:`ChurnWorkload` the
scenario matrix uses) and then:

* the simulator replays it through :class:`repro.sim.harness.ScenarioHarness`
  (``apply_script_to_harness``) where the shared kernel draws its own
  sequence numbers, and
* each live shard process replays the slice routed to its rings, using the
  *pre-assigned* sequence/epoch carried by each :class:`ScriptOp` — shard
  replicas cannot share a sequence counter over UDP, so the script assigns
  sequences 1..K in time order at generation time and every replica seeds
  its post-scenario (repair) stream above K with a per-shard stride
  (:meth:`repro.core.kernel.TokenRoundKernel.set_sequence_stream`).

The :class:`ShardPlan` maps every ring to exactly one owning shard: rounds
for a ring run only at its owner (single writer per ring), cross-ring
notifications travel to the target ring's owner, and a killed shard takes
whole rings down atomically — which is what makes a live ``SIGKILL``
equivalent to the sim crashing all of that shard's entities at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.hierarchy import RingHierarchy
from repro.workloads.churn import ChurnKind, ChurnWorkload

__all__ = [
    "ScenarioScript",
    "ScriptOp",
    "ShardPlan",
    "apply_script_to_harness",
    "build_churn_script",
]

#: Script op kinds (ChurnKind values plus the handoff pair).
KIND_JOIN = "join"
KIND_LEAVE = "leave"
KIND_FAILURE = "failure"
KIND_HANDOFF = "handoff"
#: Companion directive for a cross-shard handoff: the *old* AP's owner must
#: drop the member from its local list (the Mobile-IP style binding update
#: ``make_handoff_op`` performs directly when everything is one process).
KIND_HANDOFF_UNREGISTER = "handoff-unregister"


@dataclass(frozen=True)
class ScriptOp:
    """One scripted membership event with pre-assigned protocol identity."""

    time: float
    kind: str
    member: str
    ap: str
    to_ap: Optional[str] = None
    sequence: int = 0
    epoch: int = 0


@dataclass(frozen=True)
class ScenarioScript:
    """A replayable scenario: ordered ops plus the sequence-space watermark."""

    ops: Tuple[ScriptOp, ...]
    horizon: float
    #: First sequence number *not* used by the script; live replicas seed
    #: their repair-op streams at ``next_sequence + shard_id`` with stride
    #: ``num_shards``.
    next_sequence: int

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for op in self.ops:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        counts["total"] = len(self.ops)
        return counts


def build_churn_script(
    ap_ids: Sequence[str],
    *,
    events: int,
    seed: int,
    join_rate: float = 1.0,
    leave_rate: float = 0.02,
    failure_rate: float = 0.01,
) -> ScenarioScript:
    """The scenario matrix's churn cell as a portable script.

    Same workload parameters as ``repro.workloads.matrix._schedule_churn``:
    joins dominate, departures (leave/failure) route to the member's join
    AP (the churn generator records it), so a script needs no runtime
    member-location tracking to route departures — which is exactly what
    lets a live shard replay its slice independently.
    """
    horizon = max(4.0 * events, 8.0)
    workload = ChurnWorkload(
        ap_ids=list(ap_ids),
        join_rate=join_rate,
        leave_rate=leave_rate,
        failure_rate=failure_rate,
        horizon=horizon,
        seed=seed,
    )
    ops: List[ScriptOp] = []
    epochs: Dict[str, int] = {}
    sequence = 0
    for event in workload.generate():
        sequence += 1
        epoch = 0
        if event.kind is ChurnKind.JOIN:
            epoch = epochs.get(event.member, 0) + 1
            epochs[event.member] = epoch
        ops.append(
            ScriptOp(
                time=event.time,
                kind=event.kind.value,
                member=event.member,
                ap=event.ap,
                sequence=sequence,
                epoch=epoch,
            )
        )
    return ScenarioScript(ops=tuple(ops), horizon=horizon, next_sequence=sequence + 1)


@dataclass(frozen=True)
class ShardPlan:
    """Ring -> owning shard assignment for one live run."""

    num_shards: int
    ring_owner: Mapping[str, int]
    #: Shard owning the topmost ring (the global view lives in its replica).
    top_shard: int

    @classmethod
    def build(cls, hierarchy: RingHierarchy, num_shards: int) -> "ShardPlan":
        """Deterministic assignment: top ring to shard 0, the rest
        round-robin (by tier, then ring id) over the remaining shards.

        With ``num_shards > 1`` the top ring's shard takes no other ring
        until every other shard has one, so there is always at least one
        shard owning only bottom rings — the natural ``SIGKILL`` victim for
        conformance runs (its rings die atomically, the global view
        survives at shard 0).
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        rings = sorted(hierarchy.rings.values(), key=lambda r: (-r.tier, r.ring_id))
        top_ring_id = hierarchy.topmost_ring().ring_id
        owner: Dict[str, int] = {top_ring_id: 0}
        others = [r.ring_id for r in rings if r.ring_id != top_ring_id]
        if num_shards == 1:
            for ring_id in others:
                owner[ring_id] = 0
        else:
            for index, ring_id in enumerate(others):
                owner[ring_id] = 1 + index % (num_shards - 1)
        return cls(num_shards=num_shards, ring_owner=dict(owner), top_shard=0)

    def rings_of(self, shard: int) -> List[str]:
        return sorted(rid for rid, s in self.ring_owner.items() if s == shard)

    def owner_of_ring(self, ring_id: str) -> int:
        return self.ring_owner[ring_id]

    def bottom_only_shards(self, hierarchy: RingHierarchy) -> List[int]:
        """Shards owning only bottom-tier rings (safe SIGKILL victims)."""
        bottom = hierarchy.bottom_tier()
        out = []
        for shard in range(self.num_shards):
            rings = self.rings_of(shard)
            if rings and all(hierarchy.ring(rid).tier == bottom for rid in rings):
                out.append(shard)
        return out

    def entities_of(self, hierarchy: RingHierarchy, shard: int) -> List[str]:
        """Every entity (node id string) living in the shard's rings."""
        out: List[str] = []
        for ring_id in self.rings_of(shard):
            out.extend(node.value for node in hierarchy.ring(ring_id).members)
        return sorted(out)


def quiet_crash_time(
    op_times: Sequence[float],
    requested: float,
    *,
    margin: float = 4.0,
    headroom: float = 0.5,
) -> float:
    """Shift a requested crash instant into a quiet window of the victim's
    op schedule.

    An op captured on a victim ring less than ``margin`` virtual units
    before the kill may or may not escape the dying ring: rounds drain one
    holder queue per ``round_delay`` and the holder choice depends on
    message-arrival interleaving, which legitimately differs between the
    simulator (modelled latency) and real datagrams (microseconds).  The
    crash *boundary* is therefore inherently racy in any real system — so
    conformance runs pin it down by killing inside a gap: at least
    ``margin`` units after the previous victim-ring op and ``headroom``
    before the next.  Returns the viable instant closest to ``requested``
    (there is always one after the victim's last op).
    """
    best: Optional[float] = None
    prev = 0.0
    for t in sorted(op_times) + [float("inf")]:
        candidate = prev + margin
        if candidate <= t - headroom:
            if best is None or abs(candidate - requested) < abs(best - requested):
                best = candidate
        prev = max(prev, t)
    assert best is not None
    return best


def apply_script_to_harness(script: ScenarioScript, harness) -> None:
    """Replay the script on a :class:`~repro.sim.harness.ScenarioHarness`.

    The sim side of conformance: the shared kernel draws its own sequences
    (the pre-assigned ones are a live-runtime necessity, not part of the
    protocol), so the script routes events through the harness's ordinary
    ``schedule_*`` entry points.
    """
    for op in script.ops:
        if op.kind == KIND_JOIN:
            harness.schedule_join(op.time, op.ap, guid=op.member)
        elif op.kind == KIND_LEAVE:
            harness.schedule_leave(op.time, op.member)
        elif op.kind == KIND_FAILURE:
            harness.schedule_failure(op.time, op.member)
        elif op.kind == KIND_HANDOFF:
            harness.schedule_handoff(op.time, op.member, op.to_ap)
        elif op.kind == KIND_HANDOFF_UNREGISTER:
            continue  # implicit in the shared-state handoff capture
        else:
            raise ValueError(f"unknown script op kind {op.kind!r}")
