"""One live shard: a kernel replica over real sockets, run as an OS process.

``python -m repro.runtime.node <config.pkl>`` starts one node.  The node

* rehydrates the shared hierarchy and builds a full kernel replica, but
  *owns* only the rings its :class:`~repro.runtime.scenario.ShardPlan`
  assigns it: token rounds run here only for owned rings (single writer
  per ring), and every view mutation for an owned ring happens in this
  process.  Unowned state exists as a routing/lookup replica that other
  shards' notifications keep current.
* binds a UDP unicast socket (and joins the loopback multicast heartbeat
  group, falling back to unicast fan-out where multicast is unavailable),
  multiplexed by the single-threaded :class:`~repro.runtime.loop.EventLoop`
  together with round timers, heartbeat timers and the scenario script.
* replays its slice of the scenario script with the script's pre-assigned
  sequence/epoch identities, mirroring the sim harness's capture handlers.
* detects peer-shard death by heartbeat silence and feeds every entity the
  dead shard owned into the kernel's existing ``fail_entity``/repair path —
  the same entry point the simulator's ``FaultEvent`` uses.

Crash determinism: a shard scheduled to die (``crash_at``) *wedges* at that
exact virtual instant — stops heartbeating, drops all I/O — and the
supervisor's real ``SIGKILL`` lands a beat later.  The process genuinely
dies by signal and peers genuinely detect it by heartbeat silence, but the
death *instant* is deterministic in virtual time, which is what lets the
sim schedule the equivalent crash at the same scenario time and the
membership traces line up.

Time: the node's virtual clock is ``(monotonic() - t0) / time_scale`` with
``t0`` agreed in the supervisor's PEERS handshake, so kernel calls and
trace records share the sim's time axis.
"""

from __future__ import annotations

import pickle
import socket
import struct
import sys
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import ProtocolConfig
from repro.core.events import MembershipEventBus
from repro.core.identifiers import NodeId, coerce_guid, coerce_node
from repro.core.kernel import create_kernel
from repro.core.member import MemberInfo, MemberStatus
from repro.core.token import TokenOperation, TokenOperationType
from repro.runtime import wire
from repro.runtime.dispatch import SocketDispatch
from repro.runtime.heartbeat import HeartbeatConfig, HeartbeatMonitor
from repro.runtime.loop import EventLoop
from repro.runtime.scenario import (
    KIND_FAILURE,
    KIND_HANDOFF,
    KIND_HANDOFF_UNREGISTER,
    KIND_JOIN,
    KIND_LEAVE,
    ScenarioScript,
    ScriptOp,
    ShardPlan,
)
from repro.sim.stats import MetricRegistry
from repro.sim.trace import TraceRecorder

__all__ = ["NodeConfig", "NodeRuntime", "main"]

LOOPBACK = "127.0.0.1"


@dataclass(frozen=True)
class NodeConfig:
    """Everything one node process needs, shipped as a pickle file."""

    shard_id: int
    plan: ShardPlan
    ring_size: int
    height: int
    hierarchy_payload: bytes
    script: ScenarioScript
    supervisor_port: int
    result_path: str
    #: Virtual instant this shard wedges ahead of its SIGKILL (None = lives).
    crash_at: Optional[float] = None
    #: Real seconds per virtual time unit.
    time_scale: float = 0.06
    #: Virtual delays, mirroring HarnessConfig.
    round_delay: float = 1.0
    crash_detection_delay: float = 5.0
    #: Reliable-notify budget (backoff in real seconds).
    resend_backoff: float = 0.08
    resend_limit: int = 80
    heartbeat: HeartbeatConfig = field(default_factory=HeartbeatConfig)
    multicast: bool = True
    mcast_group: str = "239.255.101.77"
    mcast_port: int = 0
    trace_enabled: bool = False
    status_interval: float = 0.15
    hello_interval: float = 0.2
    #: Handshake grace credited to peers before heartbeat silence counts.
    startup_grace: float = 0.6


class NodeRuntime:
    """The event-loop state machine of one live shard process."""

    def __init__(self, config: NodeConfig) -> None:
        self.config = config
        self.shard_id = config.shard_id
        self.plan = config.plan
        self.loop = EventLoop()
        self.codec = wire.WireCodec(config.shard_id)
        self.tracker = wire.LinkTracker()
        self.metrics = MetricRegistry()
        self.trace = TraceRecorder(enabled=config.trace_enabled)

        self.hierarchy = pickle.loads(config.hierarchy_payload)
        states = self.hierarchy.build_entity_states()
        self.dispatch = SocketDispatch(self)
        self.kernel = create_kernel(
            self.hierarchy,
            backend="object",
            config=ProtocolConfig(aggregation_delay=0.0),
            metrics=self.metrics,
            event_bus=MembershipEventBus(),
            trace=self.trace,
            dispatch=self.dispatch,
            entities=states,
            entities_pristine=True,
        )
        # Disjoint per-shard repair-op sequence stream above the script's.
        self.kernel.set_sequence_stream(
            config.script.next_sequence + config.shard_id, self.plan.num_shards
        )
        self.owned_rings: Set[str] = set(self.plan.rings_of(config.shard_id))
        ring_of = self.hierarchy.ring_of
        self._my_ops: List[ScriptOp] = [
            op
            for op in config.script.ops
            if self.plan.owner_of_ring(ring_of(coerce_node(self._route_ap(op))).ring_id)
            == config.shard_id
        ]
        self._script_remaining = len(self._my_ops)

        self.sock: Optional[socket.socket] = None
        self.mcast_sock: Optional[socket.socket] = None
        self.mcast_mode = False
        self.peers: Dict[int, Tuple[str, int]] = {}
        self.monitor: Optional[HeartbeatMonitor] = None
        self.t0: Optional[float] = None
        self.started = False
        self.halted = False
        self.finalized = False
        self._round_scheduled: Set[str] = set()
        self._member_location: Dict[str, NodeId] = {}

        self._handlers = {
            wire.MSG_PEERS: self._on_peers,
            wire.MSG_NOTIFY: self.dispatch.on_notify,
            wire.MSG_NOTIFY_ACK: self.dispatch.on_notify_ack,
            wire.MSG_TOKEN: self._on_token,
            wire.MSG_HOLDER_ACK: self._on_holder_ack,
            wire.MSG_HEARTBEAT: self._on_heartbeat,
            wire.MSG_SHUTDOWN: self._on_shutdown,
        }

    # -- routing ------------------------------------------------------------

    @staticmethod
    def _route_ap(op: ScriptOp) -> str:
        """The AP whose ring owner executes this scripted op (joins at the
        join AP, departures at the member's recorded AP, handoffs at the
        new AP, unregister directives at the old AP)."""
        if op.kind == KIND_HANDOFF:
            return op.to_ap or op.ap
        return op.ap

    def vnow(self) -> float:
        if self.t0 is None:
            return 0.0
        return max(0.0, (self.loop.clock() - self.t0) / self.config.time_scale)

    # -- sockets ------------------------------------------------------------

    def _bind(self) -> None:
        cfg = self.config
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1 << 20)
        self.sock.bind((LOOPBACK, 0))
        self.sock.setblocking(False)
        self.loop.add_reader(self.sock, self._on_datagram)
        if cfg.multicast and cfg.mcast_port:
            try:
                mcast = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                mcast.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                if hasattr(socket, "SO_REUSEPORT"):
                    mcast.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                mcast.bind(("", cfg.mcast_port))
                mreq = struct.pack(
                    "4s4s",
                    socket.inet_aton(cfg.mcast_group),
                    socket.inet_aton(LOOPBACK),
                )
                mcast.setsockopt(socket.IPPROTO_IP, socket.IP_ADD_MEMBERSHIP, mreq)
                mcast.setblocking(False)
                self.sock.setsockopt(
                    socket.IPPROTO_IP, socket.IP_MULTICAST_IF, socket.inet_aton(LOOPBACK)
                )
                self.sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP, 1)
                self.mcast_sock = mcast
                self.loop.add_reader(mcast, self._on_datagram)
                self.mcast_mode = True
            except OSError:
                # Restricted environment (no multicast on loopback): fall
                # back to unicast heartbeat fan-out.
                self.mcast_sock = None
                self.mcast_mode = False

    def _close(self) -> None:
        for sock in (self.sock, self.mcast_sock):
            if sock is not None:
                try:
                    self.loop.remove_reader(sock)
                except Exception:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
        self.sock = None
        self.mcast_sock = None
        self.loop.close()

    # -- send helpers --------------------------------------------------------

    def _sendto(self, data: bytes, addr: Tuple[str, int]) -> None:
        if self.sock is None:
            return
        try:
            self.sock.sendto(data, addr)
        except OSError:
            self.metrics.counter("runtime.send_errors").increment()

    def send_to_shard(self, shard: int, kind: int, payload: dict) -> None:
        if self.halted:
            return
        addr = self.peers.get(shard)
        if addr is None:
            return  # unknown yet (or dead); the reliable layer retries
        self._sendto(self.codec.encode(kind, payload, dest_key=shard), addr)

    def send_to_self(self, kind: int, payload: dict) -> None:
        if self.halted or self.sock is None:
            return
        self._sendto(
            self.codec.encode(kind, payload, dest_key=self.shard_id),
            self.sock.getsockname(),
        )

    def send_to_supervisor(self, kind: int, payload: dict) -> None:
        self._sendto(
            self.codec.encode(kind, payload, dest_key="supervisor"),
            (LOOPBACK, self.config.supervisor_port),
        )

    # -- datagram pump -------------------------------------------------------

    def _on_datagram(self, sock) -> None:
        while True:
            try:
                data, _addr = sock.recvfrom(65536)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            if self.halted:
                continue  # wedged ahead of SIGKILL: drop everything
            try:
                message = wire.WireCodec.decode(data)
            except wire.WireError:
                self.metrics.counter("runtime.wire_errors").increment()
                continue
            if message.sender_shard == self.shard_id and message.kind == wire.MSG_HEARTBEAT:
                continue  # own multicast loopback echo
            if message.sender_shard >= 0:
                self.tracker.observe(message)
            handler = self._handlers.get(message.kind)
            if handler is not None:
                handler(message)

    def _on_token(self, message: wire.WireMessage) -> None:
        self.metrics.counter("runtime.token_datagrams").increment()

    def _on_holder_ack(self, message: wire.WireMessage) -> None:
        self.metrics.counter("runtime.holder_ack_datagrams").increment()

    def _on_heartbeat(self, message: wire.WireMessage) -> None:
        if self.monitor is not None:
            self.monitor.heartbeat_received(int(message.payload["shard"]))

    # -- handshake -----------------------------------------------------------

    def _say_hello(self) -> None:
        if self.started or self.finalized:
            return
        assert self.sock is not None
        port = self.sock.getsockname()[1]
        self.send_to_supervisor(wire.MSG_HELLO, {"shard": self.shard_id, "port": port})
        self.loop.call_later(self.config.hello_interval, self._say_hello)

    def _on_peers(self, message: wire.WireMessage) -> None:
        if self.started:
            return
        cfg = self.config
        payload = message.payload
        self.peers = {
            int(shard): (host, int(port))
            for shard, (host, port) in payload["peers"].items()
            if int(shard) != self.shard_id
        }
        self.t0 = float(payload["t0"])
        self.monitor = HeartbeatMonitor(
            peers=sorted(self.peers),
            config=cfg.heartbeat,
            clock=self.loop.clock,
            on_readmit=self._on_peer_readmitted,
            on_evict=self._on_peer_evicted,
            initial_grace=max(cfg.startup_grace, self.t0 - self.loop.clock()),
        )
        scale = cfg.time_scale
        for op in self._my_ops:
            self.loop.call_at(self.t0 + op.time * scale, self._make_op_thunk(op))
        if cfg.crash_at is not None:
            self.loop.call_at(self.t0 + cfg.crash_at * scale, self._halt)
        self.started = True
        self._emit_heartbeat()
        self._poll_monitor()
        self._housekeeping()

    def _make_op_thunk(self, op: ScriptOp):
        def thunk() -> None:
            self._script_remaining -= 1
            self._exec_op(op)

        return thunk

    # -- heartbeats ----------------------------------------------------------

    def _emit_heartbeat(self) -> None:
        if self.halted or self.finalized:
            return
        cfg = self.config
        payload = {"shard": self.shard_id}
        if self.mcast_mode:
            data = self.codec.encode(
                wire.MSG_HEARTBEAT,
                payload,
                dest_key="mcast",
                channel=wire.CHANNEL_MULTICAST,
            )
            try:
                assert self.sock is not None
                self.sock.sendto(data, (cfg.mcast_group, cfg.mcast_port))
            except OSError:
                self.mcast_mode = False  # fall back to unicast fan-out
        if not self.mcast_mode:
            for shard in self.peers:
                self.send_to_shard(shard, wire.MSG_HEARTBEAT, payload)
        self.loop.call_later(cfg.heartbeat.interval, self._emit_heartbeat)

    def _poll_monitor(self) -> None:
        if self.halted or self.finalized:
            return
        assert self.monitor is not None
        self.monitor.poll()
        self.loop.call_later(self.config.heartbeat.interval / 2, self._poll_monitor)

    def _on_peer_readmitted(self, peer: int, silence: float) -> None:
        self.metrics.counter("runtime.peer_readmitted").increment()

    def _on_peer_evicted(self, peer: int, silence: float) -> None:
        """Heartbeat silence crossed the eviction window: the peer's rings
        are dead.  Feed its entities into the kernel's fail/repair path —
        the live analogue of the sim harness's ``_on_fault``."""
        self.metrics.counter("runtime.peer_evicted").increment()
        kernel = self.kernel
        now = self.vnow()
        for node_id in self.plan.entities_of(self.hierarchy, peer):
            key = coerce_node(node_id)
            if key in kernel.entities and key not in kernel.failed:
                if not self.hierarchy.has_node(key):
                    continue
                kernel.fail_entity(key, now=now)
        # The circulating token notices within a circulation: probe rounds
        # on owned rings (no-ops unless there is repair or queued work).
        for ring_id in self.owned_rings:
            self.schedule_round(ring_id, delay=self.config.crash_detection_delay)

    # -- scripted captures (the sim harness's handlers, pre-assigned ids) ----

    def _capturable(self, ap) -> Optional[NodeId]:
        key = coerce_node(ap)
        if key in self.kernel.failed or not self.hierarchy.has_node(key):
            self.metrics.counter("harness.captures_skipped").increment()
            return None
        return key

    def _exec_op(self, op: ScriptOp) -> None:
        if self.halted:
            return
        kernel = self.kernel
        now = self.vnow()
        if op.kind == KIND_JOIN:
            key = self._capturable(op.ap)
            if key is None:
                return
            member = MemberInfo(
                guid=coerce_guid(op.member),
                group=self.hierarchy.group,
                ap=key,
                status=MemberStatus.OPERATIONAL,
                epoch=op.epoch,
            )
            top = TokenOperation(
                op_type=TokenOperationType.MEMBER_JOIN,
                origin=key,
                member=member,
                sequence=op.sequence,
            )
            kernel.capture(key, top, now)
            self._member_location[op.member] = key
            self.schedule_round(self.hierarchy.ring_of(key).ring_id)
        elif op.kind in (KIND_LEAVE, KIND_FAILURE):
            location = self._member_location.get(op.member)
            key = self._capturable(location) if location is not None else None
            if key is None:
                return
            record = kernel.lookup_member(key, coerce_guid(op.member))
            if op.kind == KIND_LEAVE:
                op_type, status = TokenOperationType.MEMBER_LEAVE, MemberStatus.LEFT
            else:
                op_type, status = TokenOperationType.MEMBER_FAILURE, MemberStatus.FAILED
            top = TokenOperation(
                op_type=op_type,
                origin=key,
                member=record.with_status(status),
                sequence=op.sequence,
            )
            kernel.capture(key, top, now)
            self._member_location.pop(op.member, None)
            self.schedule_round(self.hierarchy.ring_of(key).ring_id)
        elif op.kind == KIND_HANDOFF:
            old = self._member_location.get(op.member)
            new = self._capturable(op.to_ap)
            if old is None or new is None or old == new:
                self.metrics.counter("harness.captures_skipped").increment()
                return
            guid = coerce_guid(op.member)
            record = kernel.lookup_member(old, guid)
            moved = record.handed_off_to(new, op.epoch)
            if old in kernel.entities:
                kernel.entities[old].unregister_local_member(str(guid))
            top = TokenOperation(
                op_type=TokenOperationType.MEMBER_HANDOFF,
                origin=new,
                member=moved,
                previous_ap=old,
                sequence=op.sequence,
            )
            kernel.capture(new, top, now)
            self._member_location[op.member] = new
            self.schedule_round(self.hierarchy.ring_of(new).ring_id)
        elif op.kind == KIND_HANDOFF_UNREGISTER:
            key = coerce_node(op.ap)
            if key in kernel.entities:
                kernel.entities[key].unregister_local_member(op.member)
        else:
            self.metrics.counter("runtime.unknown_script_ops").increment()

    # -- rounds (the sim harness's scheduling, on real timers) ---------------

    def schedule_round(self, ring_id: str, delay: Optional[float] = None) -> None:
        if ring_id not in self.owned_rings:
            return
        if ring_id in self._round_scheduled:
            return
        self._round_scheduled.add(ring_id)
        virtual = self.config.round_delay if delay is None else delay
        self.loop.call_later(
            max(virtual * self.config.time_scale, 0.001),
            lambda: self._run_ring_round(ring_id),
        )

    def _run_ring_round(self, ring_id: str) -> None:
        self._round_scheduled.discard(ring_id)
        if self.halted or self.finalized:
            return
        kernel = self.kernel
        ring = self.hierarchy.rings.get(ring_id)
        if ring is None or ring.is_empty:
            return
        failed = kernel.failed
        entities = kernel.entities
        has_work = False
        operational = 0
        for n in ring.members:
            if n in failed:
                continue
            operational += 1
            if not has_work and entities[n].has_queued_work():
                has_work = True
        if operational == 0:
            return
        needs_repair = operational != len(ring.members)
        if not has_work and not needs_repair:
            return
        kernel.run_round(ring_id, now=self.vnow())
        self.metrics.counter("harness.rounds").increment()
        self.dispatch.retry_dead_letters()
        failed = kernel.failed
        for n in ring.members:
            if n not in failed and entities[n].has_queued_work():
                self.schedule_round(ring_id)
                break

    # -- liveness / status ----------------------------------------------------

    def _owned_pending(self) -> bool:
        return any(rid in self.owned_rings for rid in self.kernel.pending_rings())

    def idle(self) -> bool:
        """Quiescent: script replayed, no armed rounds, no unacked sends."""
        return (
            self.started
            and self._script_remaining == 0
            and not self._round_scheduled
            and self.dispatch.pending_count() == 0
            and not self._owned_pending()
        )

    def _housekeeping(self) -> None:
        if self.halted or self.finalized:
            return
        for ring_id in self.kernel.pending_rings():
            if ring_id in self.owned_rings:
                self.schedule_round(ring_id)
        self.dispatch.retry_dead_letters()
        assert self.monitor is not None
        self.send_to_supervisor(
            wire.MSG_STATUS,
            {
                "shard": self.shard_id,
                "idle": self.idle(),
                "vnow": self.vnow(),
                "evicted": self.monitor.evicted_peers(),
                "readmissions": self.monitor.readmissions,
            },
        )
        self.loop.call_later(self.config.status_interval, self._housekeeping)

    def _halt(self) -> None:
        """Wedge: the deterministic death instant ahead of the SIGKILL."""
        self.halted = True

    # -- shutdown + results ---------------------------------------------------

    def _on_shutdown(self, message: wire.WireMessage) -> None:
        if self.finalized:
            self.send_to_supervisor(wire.MSG_BYE, {"shard": self.shard_id})
            return
        self.finalized = True
        self._write_result()
        self.send_to_supervisor(wire.MSG_BYE, {"shard": self.shard_id})
        self.loop.stop()

    def _owned_ring_agreement(self) -> bool:
        failed = self.kernel.failed
        for ring_id in sorted(self.owned_rings):
            ring = self.hierarchy.rings.get(ring_id)
            if ring is None:
                continue
            views = [
                self.kernel.entity(node).ring_members
                for node in ring.members
                if node not in failed
            ]
            if len(views) <= 1:
                continue
            first = views[0]
            if not all(first.agrees_with(view) for view in views[1:]):
                return False
        return True

    def _global_membership(self) -> Optional[List[Tuple[str, str, str]]]:
        top = self.hierarchy.topmost_ring()
        if self.plan.owner_of_ring(top.ring_id) != self.shard_id:
            return None
        leader = top.leader
        if leader is None:
            return None
        return [
            (str(m.guid), str(m.ap), m.status.value)
            for m in self.kernel.entity(leader).ring_members.members()
        ]

    def result(self) -> dict:
        monitor = self.monitor
        return {
            "shard": self.shard_id,
            "owned_rings": sorted(self.owned_rings),
            "idle": self.idle(),
            "vnow": self.vnow(),
            "counters": {name: c.value for name, c in sorted(self.metrics.counters.items())},
            "ring_agreement": self._owned_ring_agreement(),
            "membership": self._global_membership(),
            "heartbeat": monitor.counters() if monitor is not None else {},
            "eviction_silence": dict(monitor.eviction_silence) if monitor is not None else {},
            "evicted_peers": monitor.evicted_peers() if monitor is not None else [],
            "heartbeat_mode": "multicast" if self.mcast_mode else "unicast",
            "link_stats": self.tracker.summary(),
            "dead_letters": self.dispatch.dead_letter_count(),
            "trace": self.trace.canonical_lines() if self.trace.enabled else [],
        }

    def _write_result(self) -> None:
        path = self.config.result_path
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(self.result(), handle, protocol=pickle.HIGHEST_PROTOCOL)
        import os

        os.replace(tmp, path)

    # -- entry ----------------------------------------------------------------

    def start(self) -> None:
        self._bind()
        try:
            self._say_hello()
            self.loop.run()
        finally:
            self._close()


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv if argv is None else argv)
    if len(argv) != 2:
        print("usage: python -m repro.runtime.node <config.pkl>", file=sys.stderr)
        return 2
    with open(argv[1], "rb") as handle:
        config: NodeConfig = pickle.load(handle)
    runtime = NodeRuntime(config)
    try:
        runtime.start()
    except Exception:
        with open(config.result_path + ".err", "w") as handle:
            handle.write(traceback.format_exc())
        raise
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
