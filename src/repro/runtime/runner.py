"""``LiveScenarioRunner``: the same scenario through both drivers.

Golden-trace conformance for the live runtime: generate one churn script,
replay it once over real UDP processes (``Supervisor`` + ``NodeRuntime``)
and once through the event-driven simulator (``ScenarioHarness``), then
compare the *membership trace* — the canonical ``guid|ap|status`` lines of
the global view at the top-ring leader, plus convergence and per-ring
agreement.  Counter-for-counter equality is deliberately **not** the bar:
the live run's cross-shard echo-back and retry timing legitimately perturb
delivery counters, while the membership state machine (what the paper's
protocol is *about*) must not diverge.

The scripted ``SIGKILL`` closes the loop: the sim schedules the equivalent
entity crashes at the same virtual instant the victim shard wedges, so a
real process death — detected by real heartbeat silence — must drive the
survivors to the same membership the simulator's fault injector produces.

Also usable as a CLI (``python -m repro.runtime.runner``) for the README
quickstart and the CI live-smoke job; exits non-zero on any mismatch and
writes a line-diff artifact for the failure upload.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import socket
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.hierarchy import HierarchyBuilder, RingHierarchy
from repro.runtime.heartbeat import HeartbeatConfig
from repro.runtime.node import LOOPBACK, NodeConfig
from repro.runtime.scenario import (
    ScenarioScript,
    ShardPlan,
    apply_script_to_harness,
    build_churn_script,
    quiet_crash_time,
)
from repro.runtime.supervisor import (
    KillSpec,
    LiveRunReport,
    StopSpec,
    Supervisor,
    scratch_dir,
)
from repro.sim.harness import HarnessConfig, ScenarioHarness

__all__ = ["ConformanceResult", "LiveScenarioConfig", "LiveScenarioRunner"]


@dataclass(frozen=True)
class LiveScenarioConfig:
    """One live-vs-sim conformance scenario."""

    ring_size: int = 4
    height: int = 2
    num_shards: int = 4
    events: int = 12
    seed: int = 7
    #: Real seconds per virtual time unit (speed of the live replay).
    time_scale: float = 0.05
    #: Virtual instant the victim shard dies; None = no crash injection.
    crash_at: Optional[float] = None
    #: Which shard to SIGKILL; None picks the first bottom-only shard.
    kill_shard: Optional[int] = None
    heartbeat: HeartbeatConfig = field(default_factory=HeartbeatConfig)
    round_delay: float = 1.0
    crash_detection_delay: float = 5.0
    deadline: float = 90.0
    multicast: bool = True
    trace_enabled: bool = False
    workdir: Optional[str] = None


@dataclass
class ConformanceResult:
    """Outcome of one live-vs-sim comparison."""

    equal: bool
    live_lines: List[str]
    sim_lines: List[str]
    live_report: LiveRunReport
    sim_converged: bool
    live_ring_agreement: bool
    sim_ring_agreement: bool
    diff: List[str] = field(default_factory=list)
    artifact_path: Optional[str] = None

    def summary(self) -> Dict[str, object]:
        return {
            "equal": self.equal,
            "members_live": len(self.live_lines),
            "members_sim": len(self.sim_lines),
            "sim_converged": self.sim_converged,
            "live_ring_agreement": self.live_ring_agreement,
            "sim_ring_agreement": self.sim_ring_agreement,
            "killed_shards": self.live_report.killed_shards,
            "clean_shutdown": self.live_report.clean_shutdown,
            "errors": self.live_report.errors,
            "wall_seconds": round(self.live_report.wall_seconds, 2),
        }


def membership_lines(triples) -> List[str]:
    """Canonical, order-independent membership trace lines."""
    return sorted(f"{guid}|{ap}|{status}" for guid, ap, status in triples)


def _free_udp_port() -> int:
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    probe.bind((LOOPBACK, 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class LiveScenarioRunner:
    """Runs one scenario live, once in the sim, and compares the traces."""

    def __init__(self, config: LiveScenarioConfig) -> None:
        self.config = config
        self.hierarchy: RingHierarchy = HierarchyBuilder("live").regular(
            ring_size=config.ring_size, height=config.height
        )
        self.plan = ShardPlan.build(self.hierarchy, config.num_shards)
        bottom = self.hierarchy.bottom_tier()
        aps = sorted(
            node.value
            for ring in self.hierarchy.rings.values()
            if ring.tier == bottom
            for node in ring.members
        )
        self.script: ScenarioScript = build_churn_script(
            aps, events=config.events, seed=config.seed
        )
        self.victim: Optional[int] = None
        self.crash_at: Optional[float] = None
        if config.crash_at is not None:
            if config.kill_shard is not None:
                self.victim = config.kill_shard
            else:
                candidates = self.plan.bottom_only_shards(self.hierarchy)
                if not candidates:
                    raise ValueError(
                        "no bottom-only shard to kill; pass kill_shard explicitly"
                    )
                self.victim = candidates[0]
            # Pin the kill inside a quiet window of the victim's op schedule
            # so the crash boundary is deterministic (see quiet_crash_time).
            victim_rings = set(self.plan.rings_of(self.victim))
            victim_times = [
                op.time
                for op in self.script.ops
                if self.hierarchy.ring_of(op.to_ap or op.ap).ring_id in victim_rings
            ]
            self.crash_at = quiet_crash_time(
                victim_times, config.crash_at, margin=4.0 * config.round_delay
            )

    # -- live side -----------------------------------------------------------

    def build_configs(self, workdir: str) -> Dict[int, NodeConfig]:
        cfg = self.config
        import pickle

        payload = pickle.dumps(self.hierarchy, protocol=pickle.HIGHEST_PROTOCOL)
        mcast_port = _free_udp_port() if cfg.multicast else 0
        configs: Dict[int, NodeConfig] = {}
        for shard in range(self.plan.num_shards):
            configs[shard] = NodeConfig(
                shard_id=shard,
                plan=self.plan,
                ring_size=cfg.ring_size,
                height=cfg.height,
                hierarchy_payload=payload,
                script=self.script,
                supervisor_port=0,  # stamped by the supervisor at spawn
                result_path=os.path.join(workdir, f"shard-{shard}.result"),
                crash_at=self.crash_at if shard == self.victim else None,
                time_scale=cfg.time_scale,
                round_delay=cfg.round_delay,
                crash_detection_delay=cfg.crash_detection_delay,
                heartbeat=cfg.heartbeat,
                multicast=cfg.multicast,
                mcast_port=mcast_port,
                trace_enabled=cfg.trace_enabled,
            )
        return configs

    def run_live(
        self, workdir: str, stops: Tuple[StopSpec, ...] = ()
    ) -> Tuple[LiveRunReport, Supervisor]:
        cfg = self.config
        kills: Tuple[KillSpec, ...] = ()
        if self.victim is not None and self.crash_at is not None:
            kills = (KillSpec(shard=self.victim, at=self.crash_at),)
        supervisor = Supervisor(
            self.build_configs(workdir),
            kills=kills,
            stops=stops,
            deadline=cfg.deadline,
        )
        report = supervisor.run()
        return report, supervisor

    # -- sim side ------------------------------------------------------------

    def run_sim_reference(self) -> ScenarioHarness:
        cfg = self.config
        harness = ScenarioHarness(
            HarnessConfig(
                ring_size=cfg.ring_size,
                height=cfg.height,
                seed=cfg.seed,
                round_delay=cfg.round_delay,
                crash_detection_delay=cfg.crash_detection_delay,
                trace_enabled=cfg.trace_enabled,
            )
        )
        apply_script_to_harness(self.script, harness)
        if self.victim is not None and self.crash_at is not None:
            # The sim's image of the SIGKILL: every entity the victim shard
            # owned crashes at the instant the live victim wedges.
            for node_id in self.plan.entities_of(self.hierarchy, self.victim):
                harness.schedule_crash(self.crash_at, node_id)
        harness.run()
        return harness

    # -- comparison ----------------------------------------------------------

    def compare(
        self, report: LiveRunReport, harness: ScenarioHarness
    ) -> ConformanceResult:
        top_result = report.results.get(self.plan.top_shard)
        live_triples = (top_result or {}).get("membership") or []
        live_lines = membership_lines(live_triples)
        sim_lines = membership_lines(
            (str(m.guid), str(m.ap), m.status.value)
            for m in harness.global_membership()
        )
        live_agreement = all(
            r.get("ring_agreement", False)
            for s, r in report.results.items()
            if s not in report.killed_shards
        ) and bool(report.surviving_results())
        equal = (
            live_lines == sim_lines
            and not report.errors
            and report.clean_shutdown
        )
        diff: List[str] = []
        if live_lines != sim_lines:
            live_set, sim_set = set(live_lines), set(sim_lines)
            diff.extend(f"-sim-only  {line}" for line in sorted(sim_set - live_set))
            diff.extend(f"+live-only {line}" for line in sorted(live_set - sim_set))
        return ConformanceResult(
            equal=equal,
            live_lines=live_lines,
            sim_lines=sim_lines,
            live_report=report,
            sim_converged=harness.converged(),
            live_ring_agreement=live_agreement,
            sim_ring_agreement=harness.ring_agreement(),
            diff=diff,
        )

    # -- one-call entry point ------------------------------------------------

    def run(self) -> ConformanceResult:
        cfg = self.config
        workdir = cfg.workdir or scratch_dir()
        owns_workdir = cfg.workdir is None
        os.makedirs(workdir, exist_ok=True)
        try:
            report, supervisor = self.run_live(workdir)
            supervisor.ensure_torn_down()
            harness = self.run_sim_reference()
            result = self.compare(report, harness)
            if not result.equal:
                result.artifact_path = self.write_artifact(workdir, result)
            return result
        finally:
            if owns_workdir and os.path.isdir(workdir):
                keep = any(
                    name.endswith(".diff") for name in os.listdir(workdir)
                )
                if not keep:
                    shutil.rmtree(workdir, ignore_errors=True)

    def write_artifact(self, workdir: str, result: ConformanceResult) -> str:
        """Persist the live-vs-sim divergence for post-mortem upload."""
        path = os.path.join(workdir, "live-vs-sim.diff")
        with open(path, "w") as handle:
            handle.write(json.dumps(result.summary(), indent=2, default=str))
            handle.write("\n\n")
            for line in result.diff:
                handle.write(line + "\n")
            handle.write("\n--- sim membership ---\n")
            handle.writelines(line + "\n" for line in result.sim_lines)
            handle.write("\n--- live membership ---\n")
            handle.writelines(line + "\n" for line in result.live_lines)
        return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.runner",
        description="Run one churn scenario over real UDP processes and "
        "check membership conformance against the simulator.",
    )
    parser.add_argument("--ring-size", type=int, default=4)
    parser.add_argument("--height", type=int, default=2)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--events", type=int, default=12)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--time-scale", type=float, default=0.05)
    parser.add_argument(
        "--crash-at",
        type=float,
        default=None,
        help="virtual instant to SIGKILL a bottom-only shard (omit: no crash)",
    )
    parser.add_argument("--deadline", type=float, default=90.0)
    parser.add_argument("--no-multicast", action="store_true")
    parser.add_argument(
        "--workdir",
        default=None,
        help="keep run artifacts (configs, results, failure diff) here",
    )
    options = parser.parse_args(argv)
    runner = LiveScenarioRunner(
        LiveScenarioConfig(
            ring_size=options.ring_size,
            height=options.height,
            num_shards=options.shards,
            events=options.events,
            seed=options.seed,
            time_scale=options.time_scale,
            crash_at=options.crash_at,
            deadline=options.deadline,
            multicast=not options.no_multicast,
            workdir=options.workdir,
        )
    )
    print(
        f"live run: {options.shards} shard processes, "
        f"script {runner.script.summary()}, "
        f"kill={runner.victim if options.crash_at is not None else 'none'}"
        + (f" at t={runner.crash_at:.2f}" if runner.crash_at is not None else "")
    )
    result = runner.run()
    for key, value in result.summary().items():
        print(f"  {key}: {value}")
    if result.equal:
        print("CONFORMANCE OK: live and sim membership traces are equivalent")
        return 0
    print("CONFORMANCE FAILED")
    for line in result.diff[:40]:
        print(" ", line)
    if result.artifact_path:
        print(f"  artifact: {result.artifact_path}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
