"""Heartbeat-based failure detection for the live runtime.

Each node process multicasts (or unicast-fans-out) a small heartbeat every
``interval`` seconds and runs one :class:`HeartbeatMonitor` over its peers.
The monitor is a three-state machine per peer:

* ``ALIVE`` — heard from recently.
* ``SUSPECT`` — silent for ``suspect_after`` seconds.  A heartbeat arriving
  now *re-admits* the peer (slow-but-alive: GC pause, scheduler stall,
  ``SIGSTOP``); re-admissions are counted, no repair runs.
* ``EVICTED`` — silent for ``evict_after`` seconds.  Terminal: the node
  feeds every entity the dead shard owned into the kernel's existing
  ``fail_entity``/repair path, exactly where the simulator's ``FaultEvent``
  hook feeds it.  A late heartbeat after eviction is ignored — the repair
  surgery is not reversible, which is why the SUSPECT grace band exists.

The monitor is clock-injectable and performs no I/O: production drives it
from loop timers and socket reads, tests drive it with a fake clock.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

__all__ = ["HeartbeatConfig", "HeartbeatMonitor", "PeerHealth"]


class PeerHealth(enum.Enum):
    ALIVE = "alive"
    SUSPECT = "suspect"
    EVICTED = "evicted"


@dataclass(frozen=True)
class HeartbeatConfig:
    """Timing of the failure detector (all real seconds).

    ``interval < suspect_after < evict_after`` is enforced: a peer must be
    allowed to miss several heartbeats before suspicion, and suspicion must
    precede eviction so a slow-but-alive peer has a re-admission window.
    """

    interval: float = 0.06
    suspect_after: float = 0.3
    evict_after: float = 0.9

    def __post_init__(self) -> None:
        if not 0 < self.interval < self.suspect_after < self.evict_after:
            raise ValueError(
                "heartbeat config must satisfy 0 < interval < suspect_after "
                f"< evict_after, got interval={self.interval} "
                f"suspect_after={self.suspect_after} evict_after={self.evict_after}"
            )


class HeartbeatMonitor:
    """Per-peer ALIVE → SUSPECT → EVICTED state machine."""

    def __init__(
        self,
        peers: Iterable[int],
        config: HeartbeatConfig,
        clock: Callable[[], float] = time.monotonic,
        on_suspect: Optional[Callable[[int, float], None]] = None,
        on_readmit: Optional[Callable[[int, float], None]] = None,
        on_evict: Optional[Callable[[int, float], None]] = None,
        initial_grace: float = 0.0,
    ) -> None:
        self.config = config
        self.clock = clock
        self._on_suspect = on_suspect
        self._on_readmit = on_readmit
        self._on_evict = on_evict
        # ``initial_grace`` credits every peer as heard slightly in the
        # future: peers start heartbeating only once the supervisor's PEERS
        # broadcast reaches them, and that skew must not read as silence.
        now = clock() + max(0.0, initial_grace)
        self._last_heard: Dict[int, float] = {peer: now for peer in peers}
        self._state: Dict[int, PeerHealth] = {peer: PeerHealth.ALIVE for peer in self._last_heard}
        self.suspicions = 0
        self.readmissions = 0
        self.evictions = 0
        #: Silence duration observed at each eviction (peer -> seconds).
        self.eviction_silence: Dict[int, float] = {}

    # -- inputs -------------------------------------------------------------

    def heartbeat_received(self, peer: int, now: Optional[float] = None) -> None:
        """A heartbeat from ``peer`` arrived."""
        state = self._state.get(peer)
        if state is None or state is PeerHealth.EVICTED:
            # Unknown peers are ignored; eviction is terminal — the repair
            # surgery already ran and cannot be un-run.
            return
        if now is None:
            now = self.clock()
        self._last_heard[peer] = now
        if state is PeerHealth.SUSPECT:
            self._state[peer] = PeerHealth.ALIVE
            self.readmissions += 1
            if self._on_readmit is not None:
                self._on_readmit(peer, now)

    def poll(self, now: Optional[float] = None) -> List[int]:
        """Advance timeouts; returns peers evicted by this poll."""
        if now is None:
            now = self.clock()
        cfg = self.config
        evicted: List[int] = []
        for peer, state in self._state.items():
            if state is PeerHealth.EVICTED:
                continue
            silence = now - self._last_heard[peer]
            if silence >= cfg.evict_after:
                if state is PeerHealth.ALIVE:
                    # A long stall can jump straight past the suspect band
                    # (e.g. the *observer* was descheduled); count the
                    # suspicion it implies so the accounting stays honest.
                    self.suspicions += 1
                self._state[peer] = PeerHealth.EVICTED
                self.evictions += 1
                self.eviction_silence[peer] = silence
                evicted.append(peer)
                if self._on_evict is not None:
                    self._on_evict(peer, silence)
            elif silence >= cfg.suspect_after and state is PeerHealth.ALIVE:
                self._state[peer] = PeerHealth.SUSPECT
                self.suspicions += 1
                if self._on_suspect is not None:
                    self._on_suspect(peer, silence)
        return evicted

    # -- queries ------------------------------------------------------------

    def state(self, peer: int) -> PeerHealth:
        return self._state[peer]

    def silence(self, peer: int, now: Optional[float] = None) -> float:
        if now is None:
            now = self.clock()
        return now - self._last_heard[peer]

    def evicted_peers(self) -> List[int]:
        return sorted(p for p, s in self._state.items() if s is PeerHealth.EVICTED)

    def counters(self) -> Dict[str, int]:
        return {
            "suspicions": self.suspicions,
            "readmissions": self.readmissions,
            "evictions": self.evictions,
        }
