"""Process supervisor for the live runtime.

Spawns one OS process per shard (``python -m repro.runtime.node``), runs the
control-plane handshake over its own UDP socket, injects faults with real
signals, decides completion, and tears everything down hard enough that a
test suite can assert nothing leaked.

Lifecycle::

    spawn all shards            (config pickles on disk, PYTHONPATH inherited)
      <- HELLO{shard, port}     (each node repeats until answered)
      -> PEERS{peers, t0}       (broadcast once all shards reported;
                                 re-sent to any shard that repeats HELLO)
    ... scenario runs on the nodes' own timers, anchored at t0 ...
      signal injection          (SIGKILL at t0 + crash_at*scale + epsilon —
                                 the victim has already wedged itself at the
                                 exact virtual instant; SIGSTOP/SIGCONT for
                                 slow-but-alive experiments)
      <- STATUS{idle, ...}      (periodic pushes; completion = wall clock
                                 past the script horizon and every surviving
                                 node idle in two consecutive pushes)
      -> SHUTDOWN               (repeated until BYE or process exit)
      <- BYE                    (node has written its result pickle)
    reap                        (terminate -> kill escalation, then asserts)

Faults are injected *by the supervisor with real signals*, not by asking the
node to exit: the point of the live runtime is that peers detect the death
by heartbeat silence on a real socket, not by being told.
"""

from __future__ import annotations

import os
import pickle
import signal
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import repro
from repro.runtime import wire
from repro.runtime.node import LOOPBACK, NodeConfig

__all__ = ["KillSpec", "LiveRunReport", "StopSpec", "Supervisor", "SupervisorError"]

#: Shard id the supervisor stamps on its own control datagrams.  Negative so
#: node-side link trackers (which only watch real shards) ignore it.
SUPERVISOR_SHARD = -1


class SupervisorError(RuntimeError):
    """A live run failed at the supervision layer (handshake, timeout, ...)."""


@dataclass(frozen=True)
class KillSpec:
    """SIGKILL ``shard`` just after its virtual ``at`` instant.

    The node wedges itself at ``at`` (its config carries the same value as
    ``crash_at``), so the signal only has to land *eventually soon*; the
    death instant in virtual time is exact either way.
    """

    shard: int
    at: float


@dataclass(frozen=True)
class StopSpec:
    """SIGSTOP ``shard`` at virtual ``at``, SIGCONT it ``duration`` real
    seconds later — a genuinely silent but alive peer."""

    shard: int
    at: float
    duration: float


@dataclass
class _ShardProc:
    shard: int
    process: subprocess.Popen
    config: NodeConfig
    port: Optional[int] = None
    bye: bool = False
    #: Consecutive idle=True STATUS pushes.
    idle_streak: int = 0
    last_status: Optional[dict] = None
    killed: bool = False
    stopped: bool = False


@dataclass
class LiveRunReport:
    """Everything the harness layer needs from one supervised run."""

    results: Dict[int, dict]
    exit_codes: Dict[int, Optional[int]]
    killed_shards: List[int]
    clean_shutdown: bool
    wall_seconds: float
    errors: List[str] = field(default_factory=list)

    def surviving_results(self) -> Dict[int, dict]:
        return {s: r for s, r in self.results.items() if s not in self.killed_shards}


class Supervisor:
    """Owns the shard processes and the control socket for one live run."""

    def __init__(
        self,
        configs: Dict[int, NodeConfig],
        *,
        kills: Tuple[KillSpec, ...] = (),
        stops: Tuple[StopSpec, ...] = (),
        deadline: float = 60.0,
        handshake_timeout: float = 15.0,
        kill_epsilon: float = 0.05,
    ) -> None:
        self.configs = configs
        self.kills = kills
        self.stops = stops
        self.deadline = deadline
        self.handshake_timeout = handshake_timeout
        self.kill_epsilon = kill_epsilon
        self.codec = wire.WireCodec(SUPERVISOR_SHARD)
        self.sock: Optional[socket.socket] = None
        self.procs: Dict[int, _ShardProc] = {}
        self.t0: Optional[float] = None
        self._torn_down = False

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> LiveRunReport:
        start = time.monotonic()
        errors: List[str] = []
        try:
            self._spawn()
            self._handshake()
            self._main_loop()
            clean = self._shutdown()
        except Exception as exc:  # noqa: BLE001 - recorded, teardown still runs
            errors.append(f"{type(exc).__name__}: {exc}")
            clean = False
        finally:
            self._teardown()
        results = self._collect_results(errors)
        return LiveRunReport(
            results=results,
            exit_codes={s: p.process.returncode for s, p in self.procs.items()},
            killed_shards=sorted(s for s, p in self.procs.items() if p.killed),
            clean_shutdown=clean and not errors,
            wall_seconds=time.monotonic() - start,
            errors=errors,
        )

    def _spawn(self) -> None:
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind((LOOPBACK, 0))
        self.sock.settimeout(0.05)
        port = self.sock.getsockname()[1]
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not existing else src_root + os.pathsep + existing
        for shard, config in sorted(self.configs.items()):
            if config.supervisor_port != port:
                config = _with_port(config, port)
                self.configs[shard] = config
            cfg_path = config.result_path + ".cfg"
            with open(cfg_path, "wb") as handle:
                pickle.dump(config, handle, protocol=pickle.HIGHEST_PROTOCOL)
            process = subprocess.Popen(
                [sys.executable, "-m", "repro.runtime.node", cfg_path],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                start_new_session=True,
            )
            self.procs[shard] = _ShardProc(shard=shard, process=process, config=config)

    def _send(self, proc: _ShardProc, kind: int, payload: dict) -> None:
        if self.sock is None or proc.port is None:
            return
        try:
            self.sock.sendto(
                self.codec.encode(kind, payload, dest_key=proc.shard),
                (LOOPBACK, proc.port),
            )
        except OSError:
            pass

    def _broadcast_peers(self, proc: _ShardProc) -> None:
        assert self.t0 is not None
        peers = {p.shard: (LOOPBACK, p.port) for p in self.procs.values()}
        self._send(proc, wire.MSG_PEERS, {"peers": peers, "t0": self.t0})

    def _drain(self) -> List[wire.WireMessage]:
        """Non-blocking-ish read of every pending control datagram."""
        assert self.sock is not None
        messages: List[wire.WireMessage] = []
        while True:
            try:
                data, _addr = self.sock.recvfrom(65536)
            except socket.timeout:
                return messages
            except OSError:
                return messages
            try:
                messages.append(wire.WireCodec.decode(data))
            except wire.WireError:
                continue

    def _handle(self, message: wire.WireMessage) -> None:
        proc = self.procs.get(message.sender_shard)
        if proc is None:
            return
        if message.kind == wire.MSG_HELLO:
            proc.port = int(message.payload["port"])
            if self.t0 is not None:
                # Late or repeated HELLO after the broadcast: the PEERS
                # datagram was lost — resend it.
                self._broadcast_peers(proc)
        elif message.kind == wire.MSG_STATUS:
            payload = message.payload
            proc.last_status = payload
            proc.idle_streak = proc.idle_streak + 1 if payload.get("idle") else 0
        elif message.kind == wire.MSG_BYE:
            proc.bye = True

    def _handshake(self) -> None:
        deadline = time.monotonic() + self.handshake_timeout
        while any(p.port is None for p in self.procs.values()):
            if time.monotonic() > deadline:
                missing = sorted(s for s, p in self.procs.items() if p.port is None)
                raise SupervisorError(f"shards {missing} never said HELLO")
            self._reap_crashed_during_handshake()
            for message in self._drain():
                self._handle(message)
        # Anchor virtual time far enough out that the PEERS broadcast (and
        # any resend round) lands on every node before the scenario starts.
        self.t0 = time.monotonic() + 0.6
        for proc in self.procs.values():
            self._broadcast_peers(proc)

    def _reap_crashed_during_handshake(self) -> None:
        for proc in self.procs.values():
            if proc.port is None and proc.process.poll() is not None:
                err = _read_error(proc.config.result_path)
                raise SupervisorError(
                    f"shard {proc.shard} exited rc={proc.process.returncode} "
                    f"before HELLO{': ' + err if err else ''}"
                )

    # -- scenario phase ------------------------------------------------------

    def _scenario_end(self) -> float:
        assert self.t0 is not None
        horizon = max(
            (cfg.script.ops[-1].time if cfg.script.ops else 0.0)
            for cfg in self.configs.values()
        )
        scale = next(iter(self.configs.values())).time_scale
        return self.t0 + horizon * scale

    def _main_loop(self) -> None:
        assert self.t0 is not None
        scale = next(iter(self.configs.values())).time_scale
        kill_at = {
            spec.shard: self.t0 + spec.at * scale + self.kill_epsilon
            for spec in self.kills
        }
        stop_at = {spec.shard: self.t0 + spec.at * scale for spec in self.stops}
        cont_at: Dict[int, float] = {}
        scenario_end = self._scenario_end()
        hard_deadline = time.monotonic() + self.deadline
        while True:
            now = time.monotonic()
            if now > hard_deadline:
                raise SupervisorError(
                    f"live run exceeded deadline ({self.deadline}s); statuses: "
                    f"{ {s: p.last_status for s, p in self.procs.items()} }"
                )
            for shard, when in list(kill_at.items()):
                if now >= when:
                    del kill_at[shard]
                    self._kill(shard)
            for shard, when in list(stop_at.items()):
                if now >= when:
                    del stop_at[shard]
                    spec = next(s for s in self.stops if s.shard == shard)
                    self._signal(shard, signal.SIGSTOP)
                    self.procs[shard].stopped = True
                    cont_at[shard] = now + spec.duration
            for shard, when in list(cont_at.items()):
                if now >= when:
                    del cont_at[shard]
                    self._signal(shard, signal.SIGCONT)
                    self.procs[shard].stopped = False
            for message in self._drain():
                self._handle(message)
            self._check_unexpected_exits()
            if (
                now >= scenario_end
                and not kill_at
                and not stop_at
                and not cont_at
                and self._survivors_settled()
            ):
                return

    def _survivors_settled(self) -> bool:
        """Every survivor idle twice in a row *and* aware of every kill.

        The eviction requirement closes a race: right after a SIGKILL the
        survivors can be momentarily idle (heartbeat silence still inside
        the suspect window) — completing then would shut the run down before
        failure detection and repair ever happened.
        """
        killed = {s for s, p in self.procs.items() if p.killed}
        for proc in self.procs.values():
            if proc.killed or proc.stopped:
                continue
            if proc.idle_streak < 2 or proc.last_status is None:
                return False
            if not killed <= set(proc.last_status.get("evicted", ())):
                return False
        return True

    def _kill(self, shard: int) -> None:
        proc = self.procs[shard]
        proc.killed = True
        self._signal(shard, signal.SIGKILL)

    def _signal(self, shard: int, sig: int) -> None:
        process = self.procs[shard].process
        if process.poll() is None:
            try:
                process.send_signal(sig)
            except ProcessLookupError:
                pass

    def _check_unexpected_exits(self) -> None:
        for proc in self.procs.values():
            if not proc.killed and proc.process.poll() is not None:
                err = _read_error(proc.config.result_path)
                raise SupervisorError(
                    f"shard {proc.shard} exited unexpectedly "
                    f"rc={proc.process.returncode}{': ' + err if err else ''}"
                )

    # -- shutdown + teardown -------------------------------------------------

    def _shutdown(self) -> bool:
        """SHUTDOWN each survivor until it writes results and says BYE."""
        live = [p for p in self.procs.values() if not p.killed]
        deadline = time.monotonic() + 10.0
        next_send = 0.0
        while time.monotonic() < deadline:
            pending = [p for p in live if not p.bye and p.process.poll() is None]
            if not pending:
                break
            if time.monotonic() >= next_send:
                for proc in pending:
                    self._send(proc, wire.MSG_SHUTDOWN, {})
                next_send = time.monotonic() + 0.2
            for message in self._drain():
                self._handle(message)
        return all(p.bye or p.killed for p in self.procs.values())

    def _teardown(self) -> None:
        for proc in self.procs.values():
            process = proc.process
            if process.poll() is None:
                if proc.stopped:
                    self._signal(proc.shard, signal.SIGCONT)
                process.terminate()
        deadline = time.monotonic() + 3.0
        for proc in self.procs.values():
            process = proc.process
            while process.poll() is None and time.monotonic() < deadline:
                time.sleep(0.02)
            if process.poll() is None:
                process.kill()
            process.wait(timeout=5.0)
        if self.sock is not None:
            self.sock.close()
            self.sock = None
        self._torn_down = True

    def ensure_torn_down(self) -> None:
        """Assert no shard process or socket survived the run (for tests)."""
        if not self._torn_down:
            raise SupervisorError("teardown never ran")
        if self.sock is not None:
            raise SupervisorError("control socket still open after teardown")
        leaked = [
            proc.shard
            for proc in self.procs.values()
            if proc.process.poll() is None
        ]
        if leaked:
            raise SupervisorError(f"shard processes leaked: {leaked}")

    def _collect_results(self, errors: List[str]) -> Dict[int, dict]:
        results: Dict[int, dict] = {}
        for shard, proc in self.procs.items():
            path = proc.config.result_path
            if os.path.exists(path):
                try:
                    with open(path, "rb") as handle:
                        results[shard] = pickle.load(handle)
                except Exception as exc:  # noqa: BLE001
                    errors.append(f"shard {shard} result unreadable: {exc}")
            elif not proc.killed:
                err = _read_error(path)
                errors.append(
                    f"shard {shard} wrote no result"
                    f"{': ' + err if err else ''}"
                )
        return results


def _with_port(config: NodeConfig, port: int) -> NodeConfig:
    """Frozen-dataclass copy with the freshly bound supervisor port."""
    from dataclasses import replace

    return replace(config, supervisor_port=port)


def _read_error(result_path: str) -> str:
    err_path = result_path + ".err"
    if os.path.exists(err_path):
        try:
            with open(err_path) as handle:
                return handle.read().strip().splitlines()[-1]
        except OSError:
            return ""
    return ""


def scratch_dir(prefix: str = "repro-live-") -> str:
    """A per-run scratch directory for config/result pickles."""
    return tempfile.mkdtemp(prefix=prefix)
