"""Tests for the Membership-Query algorithm, handoff management and partitions."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig
from repro.core.handoff import HandoffManager
from repro.core.hierarchy import HierarchyBuilder
from repro.core.identifiers import NodeId
from repro.core.one_round import OneRoundEngine
from repro.core.partition import PartitionManager, detect_partitions
from repro.core.query import MembershipQueryService, MembershipScheme


@pytest.fixture
def populated_engine() -> OneRoundEngine:
    hierarchy = HierarchyBuilder("g").regular(ring_size=3, height=3)
    engine = OneRoundEngine(hierarchy, config=ProtocolConfig(aggregation_delay=0.0))
    for index, ap in enumerate(hierarchy.access_proxies()):
        if index % 3 == 0:
            engine.member_join(ap, f"member-{index:03d}")
    engine.propagate()
    return engine


class TestMembershipQuery:
    def test_tms_returns_global_view(self, populated_engine):
        service = MembershipQueryService(populated_engine)
        result = service.query(MembershipScheme.TMS)
        assert len(result) == 9
        assert result.answered_by_tier == populated_engine.hierarchy.top_tier()

    def test_bms_merges_per_ring_views_into_same_answer(self, populated_engine):
        service = MembershipQueryService(populated_engine)
        tms = service.query(MembershipScheme.TMS)
        bms = service.query(MembershipScheme.BMS)
        assert tms.guids == bms.guids

    def test_ims_matches_too(self, populated_engine):
        service = MembershipQueryService(populated_engine)
        ims = service.query(MembershipScheme.IMS)
        assert ims.guids == service.query(MembershipScheme.TMS).guids

    def test_bms_costs_more_hops_than_tms(self, populated_engine):
        service = MembershipQueryService(populated_engine)
        assert (
            service.query(MembershipScheme.BMS).message_hops
            > service.query(MembershipScheme.TMS).message_hops
        )

    def test_bms_contacts_every_bottom_ring_leader(self, populated_engine):
        service = MembershipQueryService(populated_engine)
        result = service.query(MembershipScheme.BMS)
        assert len(result.entities_contacted) == len(
            populated_engine.hierarchy.rings_in_tier(populated_engine.hierarchy.bottom_tier())
        )

    def test_locate_member(self, populated_engine):
        service = MembershipQueryService(populated_engine)
        record = service.locate_member("member-000")
        assert record is not None
        assert service.locate_member("ghost") is None

    def test_maintenance_cost_tradeoff(self, populated_engine):
        service = MembershipQueryService(populated_engine)
        tms_cost = service.maintenance_cost(MembershipScheme.TMS)
        bms_cost = service.maintenance_cost(MembershipScheme.BMS)
        # TMS stores the full view at few (topmost) entities, BMS spreads
        # smaller views over many bottom entities.
        assert tms_cost["entities"] < bms_cost["entities"]
        assert tms_cost["records"] >= 9 * tms_cost["entities"]

    def test_invalid_entry_point_rejected(self, populated_engine):
        with pytest.raises(ValueError):
            MembershipQueryService(populated_engine, entry_point="nope")

    def test_invalid_intermediate_tier_rejected(self, populated_engine):
        service = MembershipQueryService(populated_engine)
        with pytest.raises(ValueError):
            service.query_intermediate(tier=99)


class TestHandoffManager:
    def test_intra_ring_handoff_hits_fast_path(self):
        hierarchy = HierarchyBuilder("g").regular(ring_size=3, height=2)
        engine = OneRoundEngine(hierarchy, config=ProtocolConfig(aggregation_delay=0.0))
        manager = HandoffManager(engine)
        ring = hierarchy.bottom_rings()[0]
        a, b = ring.members[0], ring.members[1]
        engine.member_join(a, "alice")
        engine.propagate()
        record = manager.handoff("alice", a, b)
        engine.propagate()
        assert record.fast_path
        assert record.same_ring
        assert manager.fast_path_ratio() == 1.0

    def test_inter_ring_handoff_misses_fast_path(self):
        hierarchy = HierarchyBuilder("g").regular(ring_size=3, height=2)
        engine = OneRoundEngine(hierarchy, config=ProtocolConfig(aggregation_delay=0.0))
        manager = HandoffManager(engine)
        aps = hierarchy.access_proxies()
        engine.member_join(aps[0], "alice")
        engine.propagate()
        record = manager.handoff("alice", aps[0], aps[-1])
        engine.propagate()
        assert not record.same_ring
        assert not record.fast_path

    def test_handoff_and_propagate_returns_report(self):
        hierarchy = HierarchyBuilder("g").regular(ring_size=3, height=2)
        engine = OneRoundEngine(hierarchy, config=ProtocolConfig(aggregation_delay=0.0))
        manager = HandoffManager(engine)
        aps = hierarchy.access_proxies()
        engine.member_join(aps[0], "alice")
        engine.propagate()
        report = manager.handoff_and_propagate("alice", aps[0], aps[1])
        assert report is not None and report.round_count > 0
        summary = manager.summary()
        assert summary["handoffs"] == 1.0


class TestPartitionDetection:
    def test_fault_free_hierarchy_is_one_partition(self, deep_hierarchy):
        report = detect_partitions(deep_hierarchy, deep_hierarchy.ring_of_node.keys())
        assert report.count == 1
        assert report.function_well(1)
        assert report.primary() is not None

    def test_single_fault_per_ring_keeps_one_partition(self, deep_hierarchy):
        victims = {ring.members[1] for ring in deep_hierarchy.rings.values()}
        operational = [n for n in deep_hierarchy.ring_of_node if n not in victims]
        report = detect_partitions(deep_hierarchy, operational)
        assert report.count == 1
        assert not report.split_rings

    def test_two_faults_in_one_bottom_ring_split_it(self):
        hierarchy = HierarchyBuilder("g").regular(ring_size=4, height=2)
        ring = hierarchy.bottom_rings()[0]
        # Non-adjacent faults leave two disjoint arcs of the ring.
        victims = {ring.members[0], ring.members[2]}
        operational = [n for n in hierarchy.ring_of_node if n not in victims]
        report = detect_partitions(hierarchy, operational)
        assert ring.ring_id in report.split_rings
        assert report.count == 2
        assert report.function_well(2) and not report.function_well(1)

    def test_failed_parent_does_not_orphan_child_ring(self, deep_hierarchy):
        # A middle-tier node with children fails; its child ring re-attaches to
        # the parent ring's surviving leader, so the hierarchy stays whole.
        middle_ring = deep_hierarchy.rings_in_tier(2)[0]
        victim = next(
            node for node in middle_ring.members if deep_hierarchy.children_of_node(node)
        )
        operational = [n for n in deep_hierarchy.ring_of_node if n != victim]
        report = detect_partitions(deep_hierarchy, operational)
        assert report.count == 1

    def test_faulty_entities_listed(self, deep_hierarchy):
        victim = deep_hierarchy.bottom_rings()[0].members[0]
        operational = [n for n in deep_hierarchy.ring_of_node if n != victim]
        report = detect_partitions(deep_hierarchy, operational)
        assert str(victim) in report.faulty_entities

    def test_partition_manager_history_and_merge(self):
        hierarchy = HierarchyBuilder("g").regular(ring_size=4, height=2)
        manager = PartitionManager(hierarchy)
        all_nodes = list(hierarchy.ring_of_node)
        manager.assess(all_nodes, now=0.0)
        ring = hierarchy.bottom_rings()[0]
        operational = [n for n in all_nodes if n not in {ring.members[0], ring.members[2]}]
        report = manager.assess(operational, now=1.0)
        assert manager.max_partitions_seen() == report.count == 2

        from repro.core.identifiers import GroupId
        from repro.core.membership import MembershipView
        from tests.test_core_datastructures import make_member

        primary = MembershipView("global", NodeId("x"), GroupId("g"))
        detached = MembershipView("detached", NodeId("y"), GroupId("g"))
        primary.add(make_member("a"))
        detached.add(make_member("b"))
        gained = PartitionManager.merge_views(primary, [detached])
        assert gained == 1 and primary.guids() == ["a", "b"]

    def test_reattach_ring_validates_tier(self, deep_hierarchy):
        manager = PartitionManager(deep_hierarchy)
        bottom_ring = deep_hierarchy.bottom_rings()[0]
        other_parent = next(
            node
            for node in deep_hierarchy.rings_in_tier(2)[1].members
        )
        manager.reattach_ring(bottom_ring.ring_id, other_parent)
        assert deep_hierarchy.parent_of_ring(bottom_ring.ring_id) == other_parent
        with pytest.raises(ValueError):
            manager.reattach_ring(bottom_ring.ring_id, deep_hierarchy.topmost_ring().members[0])
