"""Object-vs-columnar kernel backend equivalence.

The contract under test (``repro.core.columnar``): the columnar backend is a
pure execution-strategy change.  Every observable — membership views, ring
seen-sets, applied-sequence maps, holder pointers, hop/round counters, the
full :class:`RunRecord` of a harness run — is bit-identical to the object
kernel, across scenarios, loss rates, failures/repairs, and parallel
sharding.  The fast path may only ever *decline* (fall back to the object
round); it must never change state.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.columnar import ColumnarKernel, ColumnarStore
from repro.core.hierarchy import HierarchyBuilder
from repro.core.identifiers import clear_intern_tables
from repro.core.one_round import OneRoundEngine
from repro.sim.harness import HarnessConfig, ScenarioHarness, build_topology_snapshot
from repro.workloads.matrix import MatrixCell, run_matrix_cell
from repro.workloads.parallel import record_fingerprint, result_fingerprint, run_cells

SCENARIOS = ("churn", "handoff_storm", "partition_merge", "mobility_trace")
LOSSES = (0.0, 0.01, 0.05)


# ---------------------------------------------------------------------------
# structural engine: full protocol state must match
# ---------------------------------------------------------------------------


def _engine_state(engine: OneRoundEngine, reports) -> dict:
    """Everything observable about an engine run, in comparable form."""
    kernel = engine.kernel
    return {
        "guids": sorted(engine.global_guids()),
        "rounds": [
            (
                len(rep.rounds),
                sum(r.token_hops for r in rep.rounds),
                sum(r.notify_hops for r in rep.rounds),
                sum(r.ack_hops for r in rep.rounds),
                sum(r.retransmissions for r in rep.rounds),
                [
                    str(n)
                    for r in rep.rounds
                    for n in ([r.ring_id, r.holder] + list(r.visited))
                ],
            )
            for rep in reports
        ],
        "counters": {name: c.value for name, c in sorted(engine.metrics.counters.items())},
        "applied": {
            rid: dict(sorted(m.items()))
            for rid, m in sorted(kernel.ring_applied_seq.items())
        },
        "seen": {rid: sorted(s) for rid, s in sorted(kernel.ring_seen.items())},
        "holders": {rid: str(n) for rid, n in sorted(kernel._ring_holder.items())},
        "views": {
            str(node): (
                sorted(str(m.guid) for m in e.ring_members.members())
                if e.ring_live
                else None,
                sorted(str(m.guid) for m in e.local_members.members())
                if e.local_live
                else None,
            )
            for node, e in sorted(engine.entities.items(), key=lambda kv: str(kv[0]))
        },
    }


def _run_structural_workout(backend: str) -> dict:
    """Joins, handoffs, leaves, a failure, a repair, and post-repair traffic."""
    clear_intern_tables()
    hierarchy = HierarchyBuilder().regular(ring_size=4, height=3)
    engine = OneRoundEngine(hierarchy, backend=backend)
    bottom = [r for r in hierarchy.rings.values() if r.tier == hierarchy.bottom_tier()]
    aps = [r.members[0] for r in bottom]
    reports = []
    for i, ap in enumerate(aps[:6]):
        engine.member_join(ap, f"guid-{i}")
    reports.append(engine.propagate())
    engine.member_handoff("guid-0", aps[0], aps[3])
    engine.member_leave(aps[1], "guid-1")
    engine.member_join(aps[4], "guid-late")
    reports.append(engine.propagate())
    victim = bottom[2].members[1]
    engine.fail_entity(victim, now=1.0)
    engine.member_join(aps[2], "guid-post-fail")
    reports.append(engine.propagate(now=1.0))
    engine.detect_and_repair(victim, now=2.0)
    reports.append(engine.propagate(now=2.0))
    engine.member_join(aps[5], "guid-after-repair")
    engine.member_handoff("guid-late", aps[4], aps[0])
    reports.append(engine.propagate(now=3.0))
    return _engine_state(engine, reports)


def test_structural_workout_identical():
    assert _run_structural_workout("object") == _run_structural_workout("columnar")


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ring_size=st.sampled_from((3, 4)),
    height=st.sampled_from((2, 3)),
    trace=st.lists(
        st.tuples(
            st.sampled_from(("join", "leave", "failure", "handoff", "crash", "wave")),
            st.integers(min_value=0, max_value=10_000),
        ),
        min_size=3,
        max_size=14,
    ),
)
def test_random_op_traces_identical(ring_size, height, trace):
    """Random capture/failure traces produce identical state on both backends."""

    def run(backend: str) -> dict:
        clear_intern_tables()
        hierarchy = HierarchyBuilder().regular(ring_size=ring_size, height=height)
        engine = OneRoundEngine(hierarchy, backend=backend)
        aps = hierarchy.access_proxies()
        guids: list = []
        crashed: set = set()
        reports = []
        counter = 0
        for kind, pick in trace:
            if kind == "join":
                guid = f"m-{counter}"
                counter += 1
                ap = aps[pick % len(aps)]
                engine.member_join(ap, guid)
                guids.append((guid, ap))
            elif kind == "leave" and guids:
                guid, ap = guids.pop(pick % len(guids))
                engine.member_leave(ap, guid)
            elif kind == "failure" and guids:
                guid, ap = guids.pop(pick % len(guids))
                engine.member_failure(ap, guid)
            elif kind == "handoff" and guids:
                index = pick % len(guids)
                guid, old_ap = guids[index]
                new_ap = aps[(pick // 7) % len(aps)]
                if new_ap != old_ap:
                    engine.member_handoff(guid, old_ap, new_ap)
                    guids[index] = (guid, new_ap)
            elif kind == "crash":
                # Crash a non-AP entity and repair it (exercises the
                # object-path fallback and the structure_dirty gate).
                upper = [
                    ring
                    for ring in hierarchy.rings.values()
                    if ring.tier != hierarchy.bottom_tier() and len(ring.members) > 2
                ]
                if upper:
                    ring = upper[pick % len(upper)]
                    victim = ring.members[pick % len(ring.members)]
                    if victim not in crashed and victim != ring.leader:
                        engine.fail_entity(victim, now=1.0)
                        crashed.add(victim)
                        engine.detect_and_repair(victim, now=1.0)
            elif kind == "wave":
                reports.append(engine.propagate())
        reports.append(engine.propagate())
        return _engine_state(engine, reports)

    assert run("object") == run("columnar")


# ---------------------------------------------------------------------------
# harness matrix cells: full RunRecord fingerprints must match
# ---------------------------------------------------------------------------


def _cell_fingerprint(scenario: str, size: int, loss: float, backend: str, events: int):
    clear_intern_tables()
    cell = MatrixCell(
        scenario=scenario, num_proxies=size, loss=loss, seed=0, backend=backend
    )
    result = run_matrix_cell(cell, events=events)
    fp = record_fingerprint(result.record)
    assert "backend" not in fp["params"], "backend must stay out of the fingerprint"
    return fp


@pytest.mark.parametrize("loss", LOSSES)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_matrix_cell_fingerprints_identical_1k(scenario, loss):
    assert _cell_fingerprint(scenario, 1_000, loss, "object", 10) == _cell_fingerprint(
        scenario, 1_000, loss, "columnar", 10
    )


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("RUN_SLOW_BENCHES"),
    reason="10k-proxy cross-backend sweep: run with RUN_SLOW_BENCHES=1 (slow CI tier)",
)
@pytest.mark.parametrize("loss", LOSSES)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_matrix_cell_fingerprints_identical_10k(scenario, loss):
    assert _cell_fingerprint(scenario, 10_000, loss, "object", 12) == _cell_fingerprint(
        scenario, 10_000, loss, "columnar", 12
    )


def test_columnar_cells_shard_bit_identically():
    """jobs=1 == jobs=4 for columnar cells (the parallel-runner contract)."""
    cells = [
        MatrixCell(
            scenario=scenario, num_proxies=16, loss=loss, seed=3, backend="columnar"
        )
        for scenario in ("churn", "mobility_trace")
        for loss in (0.0, 0.05)
    ]
    sequential = run_cells(cells, events=8, jobs=1)
    parallel = run_cells(cells, events=8, jobs=4)
    assert sequential.ok and parallel.ok
    assert [result_fingerprint(r) for r in sequential.results] == [
        result_fingerprint(r) for r in parallel.results
    ]


# ---------------------------------------------------------------------------
# columnar store plumbing
# ---------------------------------------------------------------------------


def test_store_payload_roundtrip():
    hierarchy = HierarchyBuilder().regular(ring_size=4, height=3)
    store = ColumnarStore.from_hierarchy(hierarchy)
    clone = ColumnarStore.from_payload(hierarchy, store.to_payload())
    assert clone.ring_ids == store.ring_ids
    assert clone.ring_start_i == store.ring_start_i
    assert clone.ring_tier.tolist() == store.ring_tier.tolist()
    assert clone.ring_parent_ring_i == store.ring_parent_ring_i
    assert clone.ring_parent_pos_i == store.ring_parent_pos_i
    assert clone.ring_leader_pos_i == store.ring_leader_pos_i
    assert clone.ring_version0_i == store.ring_version0_i
    assert clone.ring_child_total_i == store.ring_child_total_i
    assert clone.bottom_tier == store.bottom_tier


def test_store_payload_shape_mismatch_warns_and_rebuilds():
    small = HierarchyBuilder().regular(ring_size=3, height=2)
    big = HierarchyBuilder().regular(ring_size=4, height=2)
    payload = ColumnarStore.from_hierarchy(small).to_payload()
    # Shape mismatch: rebuilt from the hierarchy (never mispaired) — and
    # loudly, because a stale snapshot pairing silently throwing away the
    # shipped arrays hides real bugs at the call site.
    with pytest.warns(RuntimeWarning, match="does not match the hierarchy shape"):
        rebuilt = ColumnarStore.from_payload(big, payload)
    assert rebuilt.rebuilt_from_mismatch
    assert len(rebuilt.ring_ids) == len(big.rings)
    assert rebuilt.ring_start_i[-1] == sum(len(r.members) for r in big.rings.values())


def test_store_payload_match_is_silent():
    import warnings

    hierarchy = HierarchyBuilder().regular(ring_size=3, height=2)
    payload = ColumnarStore.from_hierarchy(hierarchy).to_payload()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        clone = ColumnarStore.from_payload(hierarchy, payload)
    assert not clone.rebuilt_from_mismatch


def test_kernel_counts_snapshot_rebuilds():
    from repro.core.config import ProtocolConfig
    from repro.core.events import MembershipEventBus
    from repro.sim.stats import MetricRegistry
    from repro.sim.trace import TraceRecorder

    mismatched = HierarchyBuilder().regular(ring_size=3, height=2)
    target = HierarchyBuilder().regular(ring_size=4, height=2)
    payload = ColumnarStore.from_hierarchy(mismatched).to_payload()
    metrics = MetricRegistry()
    with pytest.warns(RuntimeWarning, match="does not match the hierarchy shape"):
        ColumnarKernel(
            target,
            config=ProtocolConfig(),
            metrics=metrics,
            event_bus=MembershipEventBus(),
            trace=TraceRecorder(enabled=False),
            store_payload=payload,
        )
    assert metrics.counter("harness.columnar_snapshot_rebuilt").value == 1


def test_snapshot_ships_columnar_arrays_and_matches_fresh_build():
    snapshot = build_topology_snapshot(ring_size=4, height=2)
    assert snapshot.columnar is not None

    def run(with_snapshot):
        clear_intern_tables()
        config = HarnessConfig(ring_size=4, height=2, backend="columnar")
        harness = ScenarioHarness(
            config, snapshot=build_topology_snapshot(4, 2) if with_snapshot else None
        )
        assert isinstance(harness.kernel, ColumnarKernel)
        harness.schedule_join(0.1, ap=harness.access_proxies()[0], guid="m-0")
        harness.schedule_join(0.2, ap=harness.access_proxies()[5], guid="m-1")
        outcome = harness.run()
        return record_fingerprint(harness.run_record("snap", scenario="snap")), outcome

    (fresh_record, fresh_outcome) = run(False)
    (snap_record, snap_outcome) = run(True)
    assert fresh_record == snap_record
    assert fresh_outcome.converged and snap_outcome.converged


def test_harness_config_rejects_unknown_backend():
    with pytest.raises(Exception):
        HarnessConfig(backend="vectorised")
    with pytest.raises(ValueError):
        MatrixCell(scenario="churn", num_proxies=16, loss=0.0, backend="vectorised")
